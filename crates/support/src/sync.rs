//! Synchronization primitives: a poison-ignoring `RwLock`, a bounded
//! lock-free MPMC [`ArrayQueue`] (Vyukov's bounded queue, the shape of
//! `crossbeam::queue::ArrayQueue` and of a DPDK descriptor ring), a
//! true single-producer single-consumer [`spsc`] ring for the multicore
//! callback dispatcher, and a bounded MPMC [`channel`].

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A reader-writer lock that ignores poisoning.
///
/// Wraps [`std::sync::RwLock`] with the `parking_lot` calling convention:
/// `read()`/`write()` return guards directly. A panic while holding the
/// lock does not poison it for later users — packet-path state (RETA,
/// flow rules) must stay accessible after a worker dies.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A mutex that ignores poisoning, mirroring [`RwLock`].
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poison.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

struct Slot<T> {
    /// Ticket sequence number (Vyukov's scheme): equals the slot index
    /// when empty and ready for the `index`-th push, `index + 1` when
    /// full and ready for the matching pop.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded lock-free multi-producer multi-consumer queue.
///
/// This is Vyukov's bounded MPMC queue: one atomic ticket per slot, no
/// locks anywhere on the push/pop paths. It models a NIC descriptor
/// ring: `push` fails (returning the rejected element) when the ring is
/// full, which the device counts as `rx_missed`.
pub struct ArrayQueue<T> {
    slots: Box<[Slot<T>]>,
    capacity: usize,
    /// Next push ticket.
    tail: AtomicUsize,
    /// Next pop ticket.
    head: AtomicUsize,
}

// SAFETY: every slot is guarded by its `seq` ticket. A value is written
// exactly once by the producer that won the tail CAS and read exactly once
// by the consumer that won the head CAS; the Release store on `seq` after a
// write happens-before the Acquire load that lets the reader in, so no two
// threads ever touch the same `UnsafeCell` concurrently. Moving values
// across threads only needs `T: Send`.
unsafe impl<T: Send> Send for ArrayQueue<T> {}
// SAFETY: see the `Send` impl above — shared access is mediated entirely by
// the per-slot atomic tickets, so `&ArrayQueue<T>` is safe to share.
unsafe impl<T: Send> Sync for ArrayQueue<T> {}

impl<T> ArrayQueue<T> {
    /// Creates a queue holding at most `capacity` elements.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ArrayQueue capacity must be non-zero");
        let slots = (0..capacity)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        ArrayQueue {
            slots,
            capacity,
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
        }
    }

    /// Maximum number of elements.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Approximate number of queued elements.
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::SeqCst);
        let head = self.head.load(Ordering::SeqCst);
        tail.saturating_sub(head)
    }

    /// True when the queue is (approximately) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to push; on a full queue the element is handed back.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut tail = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[tail % self.capacity];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == tail {
                // Slot is free for this ticket: claim it.
                match self.tail.compare_exchange_weak(
                    tail,
                    tail.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the tail CAS just succeeded, so this
                        // thread exclusively owns the slot for ticket
                        // `tail`; no reader is admitted until the Release
                        // store of `tail + 1` to `seq` below.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(tail.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(t) => tail = t,
                }
            } else if seq < tail {
                // The slot still holds an element a lap behind: full.
                return Err(value);
            } else {
                // Another producer advanced past us; retry with a fresh
                // ticket.
                tail = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Attempts to pop the oldest element.
    pub fn pop(&self) -> Option<T> {
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[head % self.capacity];
            let seq = slot.seq.load(Ordering::Acquire);
            let expected = head.wrapping_add(1);
            if seq == expected {
                match self.head.compare_exchange_weak(
                    head,
                    head.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: `seq == head + 1` (Acquire) proves the
                        // producer's `write` is visible and complete, and
                        // the head CAS gave this thread exclusive ownership
                        // of the slot, so the value is initialized and read
                        // exactly once.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        // Mark the slot free for the push one lap ahead.
                        slot.seq
                            .store(head.wrapping_add(self.capacity), Ordering::Release);
                        return Some(value);
                    }
                    Err(h) => head = h,
                }
            } else if seq < expected {
                // Slot not yet published: empty.
                return None;
            } else {
                head = self.head.load(Ordering::Relaxed);
            }
        }
    }
}

impl<T> Drop for ArrayQueue<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

impl<T> std::fmt::Debug for ArrayQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArrayQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

/// Bounded channels, mirroring `crossbeam::channel` over
/// [`std::sync::mpsc`].
pub mod channel {
    /// The sending half of a bounded channel (cloneable).
    pub type Sender<T> = std::sync::mpsc::SyncSender<T>;
    /// The receiving half of a bounded channel.
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;
    /// Error returned by `Sender::send` when the receiver is gone: the
    /// unsent value is handed back in `.0`.
    pub type SendError<T> = std::sync::mpsc::SendError<T>;

    /// Creates a bounded channel of the given capacity. `send` blocks
    /// when the channel is full (backpressure) and returns
    /// [`SendError`] — carrying the rejected value — once the receiver
    /// has been dropped. Callers own that error: a delivery layer must
    /// count or surface it, never `let _ =` it away (each such value is
    /// an analysis result that silently vanished). `recv` returns
    /// `Err` once every sender is dropped.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(capacity.max(1))
    }
}

pub mod spsc {
    //! A true bounded single-producer single-consumer ring.
    //!
    //! Unlike [`super::channel`] (an MPMC `sync_channel` wrapper, with a
    //! mutex under the hood) and [`super::ArrayQueue`] (Vyukov MPMC, one
    //! CAS per operation), this ring exploits the single-producer
    //! single-consumer contract for a wait-free fast path with **no
    //! atomic RMW at all**: each side owns its index outright and keeps
    //! a *cached* copy of the other side's, refreshed only when the ring
    //! looks full/empty. On the common path a `push` or `pop` touches
    //! one local `Cell` and one `Release` store — the cache-conscious
    //! cross-core queueing discipline the multicore callback dispatcher
    //! needs (one ring per (RX core, subscription) pair).
    //!
    //! Disconnect is explicit in both directions: `try_send` reports a
    //! dropped consumer (handing the value back), `try_recv` reports a
    //! dropped producer once the ring is drained. Nothing is ever
    //! silently discarded.

    use std::cell::{Cell, UnsafeCell};
    use std::mem::MaybeUninit;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Error from [`Producer::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// Ring full; the value is handed back.
        Full(T),
        /// Consumer dropped; the value is handed back.
        Disconnected(T),
    }

    /// Error from [`Producer::send`]: the consumer is gone and the
    /// value is handed back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error from [`Consumer::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Ring currently empty (producer still alive).
        Empty,
        /// Producer dropped and the ring is drained: no value will ever
        /// arrive again.
        Disconnected,
    }

    /// Shared ring storage. `head` is owned by the consumer, `tail` by
    /// the producer; each side publishes its index with a `Release`
    /// store and the other side reads it with `Acquire` only when its
    /// cached copy runs out.
    struct Shared<T> {
        slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
        capacity: usize,
        /// Next slot the consumer will read (published by the consumer).
        head: AtomicUsize,
        /// Next slot the producer will write (published by the producer).
        tail: AtomicUsize,
        producer_alive: AtomicBool,
        consumer_alive: AtomicBool,
    }

    // SAFETY: slot `i % capacity` is written only by the producer while
    // `head <= i < head + capacity` and read only by the consumer while
    // `i < tail`, each gated on the peer's published index. The Release
    // store of `tail`/`head` after each write/read happens-before the
    // Acquire load that admits the other side, so no two threads ever
    // touch the same `UnsafeCell` concurrently; moving values across
    // the ring then needs only `T: Send`.
    unsafe impl<T: Send> Send for Shared<T> {}
    // SAFETY: see the `Send` impl above — shared access is mediated by
    // the published head/tail indices and the SPSC ownership contract
    // (`Producer`/`Consumer` are each `!Sync` and not cloneable).
    unsafe impl<T: Send> Sync for Shared<T> {}

    impl<T> Drop for Shared<T> {
        fn drop(&mut self) {
            // Both endpoints are gone (Arc refcount hit zero), so the
            // indices are quiescent: drop whatever is still queued.
            let head = self.head.load(Ordering::Relaxed);
            let tail = self.tail.load(Ordering::Relaxed);
            for i in head..tail {
                // SAFETY: `[head, tail)` are exactly the initialized,
                // unconsumed slots, and no other thread can exist here.
                unsafe {
                    (*self.slots[i % self.capacity].get()).assume_init_drop();
                }
            }
        }
    }

    /// The sending half (single producer; `Send`, not `Sync`, not
    /// cloneable).
    pub struct Producer<T> {
        shared: Arc<Shared<T>>,
        /// Authoritative next-write index (mirrored into `shared.tail`).
        tail: Cell<usize>,
        /// Last head observed from the consumer.
        cached_head: Cell<usize>,
    }

    /// The receiving half (single consumer; `Send`, not `Sync`, not
    /// cloneable).
    pub struct Consumer<T> {
        shared: Arc<Shared<T>>,
        /// Authoritative next-read index (mirrored into `shared.head`).
        head: Cell<usize>,
        /// Last tail observed from the producer.
        cached_tail: Cell<usize>,
    }

    /// Creates a ring holding at most `capacity` in-flight elements.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn ring<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
        assert!(capacity > 0, "spsc ring capacity must be non-zero");
        let shared = Arc::new(Shared {
            slots: (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            capacity,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            producer_alive: AtomicBool::new(true),
            consumer_alive: AtomicBool::new(true),
        });
        (
            Producer {
                shared: Arc::clone(&shared),
                tail: Cell::new(0),
                cached_head: Cell::new(0),
            },
            Consumer {
                shared,
                head: Cell::new(0),
                cached_tail: Cell::new(0),
            },
        )
    }

    impl<T: Send> Producer<T> {
        /// Attempts to enqueue without blocking. On failure the value is
        /// always handed back — a full ring and a dropped consumer are
        /// distinct, so callers can count drops by reason.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            if !self.shared.consumer_alive.load(Ordering::Acquire) {
                return Err(TrySendError::Disconnected(value));
            }
            let tail = self.tail.get();
            if tail - self.cached_head.get() == self.shared.capacity {
                self.cached_head
                    .set(self.shared.head.load(Ordering::Acquire));
                if tail - self.cached_head.get() == self.shared.capacity {
                    return Err(TrySendError::Full(value));
                }
            }
            // SAFETY: `tail - head < capacity` (head re-checked above),
            // so this slot's previous value has been consumed; only this
            // producer writes, and the Release store below publishes the
            // write before the consumer can read it.
            unsafe {
                (*self.shared.slots[tail % self.shared.capacity].get()).write(value);
            }
            self.tail.set(tail + 1);
            self.shared.tail.store(tail + 1, Ordering::Release);
            Ok(())
        }

        /// Enqueues, spinning (with yields) while the ring is full.
        /// Returns the value in [`SendError`] if the consumer is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut value = value;
            let mut spins = 0u32;
            loop {
                match self.try_send(value) {
                    Ok(()) => return Ok(()),
                    Err(TrySendError::Disconnected(v)) => return Err(SendError(v)),
                    Err(TrySendError::Full(v)) => {
                        value = v;
                        spins += 1;
                        if spins < 64 {
                            std::hint::spin_loop();
                        } else {
                            std::thread::yield_now();
                        }
                    }
                }
            }
        }

        /// In-flight elements (approximate from the producer side).
        pub fn len(&self) -> usize {
            self.tail.get() - self.shared.head.load(Ordering::Acquire)
        }

        /// True when nothing is in flight.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Ring capacity.
        pub fn capacity(&self) -> usize {
            self.shared.capacity
        }
    }

    impl<T> Drop for Producer<T> {
        fn drop(&mut self) {
            self.shared.producer_alive.store(false, Ordering::Release);
        }
    }

    impl<T: Send> Consumer<T> {
        /// Attempts to dequeue without blocking. `Disconnected` is only
        /// reported once the ring is fully drained, so no queued value
        /// is ever lost to a producer dropping.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let head = self.head.get();
            if self.cached_tail.get() == head {
                self.cached_tail
                    .set(self.shared.tail.load(Ordering::Acquire));
                if self.cached_tail.get() == head {
                    // Order matters: check liveness first, then re-read
                    // the tail. A producer pushes (Release) before its
                    // Drop flips `producer_alive`, so if we see it dead
                    // here, the re-read below observes its final push.
                    if !self.shared.producer_alive.load(Ordering::Acquire) {
                        self.cached_tail
                            .set(self.shared.tail.load(Ordering::Acquire));
                        if self.cached_tail.get() == head {
                            return Err(TryRecvError::Disconnected);
                        }
                    } else {
                        return Err(TryRecvError::Empty);
                    }
                }
            }
            // SAFETY: `head < tail` (tail just observed with Acquire),
            // so the producer's write of this slot is published and
            // complete; only this consumer reads, and the Release store
            // of `head + 1` below frees the slot for reuse.
            let value = unsafe {
                (*self.shared.slots[head % self.shared.capacity].get()).assume_init_read()
            };
            self.head.set(head + 1);
            self.shared.head.store(head + 1, Ordering::Release);
            Ok(value)
        }

        /// Dequeues, spinning (with yields) while the ring is empty.
        /// Returns `Err(())` once the producer is gone and the ring is
        /// drained.
        pub fn recv(&self) -> Result<T, TryRecvError> {
            let mut spins = 0u32;
            loop {
                match self.try_recv() {
                    Ok(v) => return Ok(v),
                    Err(TryRecvError::Disconnected) => return Err(TryRecvError::Disconnected),
                    Err(TryRecvError::Empty) => {
                        spins += 1;
                        if spins < 64 {
                            std::hint::spin_loop();
                        } else {
                            std::thread::yield_now();
                        }
                    }
                }
            }
        }

        /// True when the producer has been dropped **and** every queued
        /// element has been consumed — the worker-exit condition.
        pub fn is_finished(&self) -> bool {
            matches!(self.try_peek_state(), TryRecvError::Disconnected)
        }

        /// Classifies the ring without consuming: `Empty` (producer
        /// alive, nothing queued) or `Disconnected` (producer gone,
        /// drained). Panics never; returns `Empty` when a value is
        /// available (callers use `try_recv` for data).
        fn try_peek_state(&self) -> TryRecvError {
            let head = self.head.get();
            let tail = self.shared.tail.load(Ordering::Acquire);
            if tail != head {
                return TryRecvError::Empty;
            }
            if !self.shared.producer_alive.load(Ordering::Acquire)
                && self.shared.tail.load(Ordering::Acquire) == head
            {
                return TryRecvError::Disconnected;
            }
            TryRecvError::Empty
        }

        /// In-flight elements (approximate from the consumer side).
        pub fn len(&self) -> usize {
            self.shared.tail.load(Ordering::Acquire) - self.head.get()
        }

        /// True when nothing is queued right now.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Ring capacity.
        pub fn capacity(&self) -> usize {
            self.shared.capacity
        }
    }

    impl<T> Drop for Consumer<T> {
        fn drop(&mut self) {
            self.shared.consumer_alive.store(false, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn queue_fifo_and_capacity() {
        let q = ArrayQueue::new(2);
        assert_eq!(q.push(1), Ok(()));
        assert_eq!(q.push(2), Ok(()));
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.push(3), Ok(()));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn queue_wraps_many_laps() {
        let q = ArrayQueue::new(3);
        for i in 0..1000 {
            q.push(i).unwrap();
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn queue_mpmc_stress() {
        const PRODUCERS: usize = 4;
        const PER: u64 = 5_000;
        let q = Arc::new(ArrayQueue::new(64));
        let mut handles = Vec::new();
        for p in 0..PRODUCERS as u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER {
                    let mut v = p * PER + i;
                    loop {
                        match q.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..2 {
            let q = Arc::clone(&q);
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match q.pop() {
                        Some(v) => got.push(v),
                        None => {
                            if got.len() as u64 >= PRODUCERS as u64 * PER {
                                break;
                            }
                            std::thread::yield_now();
                            // Exit once producers are done and queue drained.
                            if Arc::strong_count(&q) <= 3 && q.is_empty() {
                                break;
                            }
                        }
                    }
                }
                got
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut all: Vec<u64> = Vec::new();
        for c in consumers {
            all.extend(c.join().unwrap());
        }
        while let Some(v) = q.pop() {
            all.push(v);
        }
        all.sort_unstable();
        let expect: Vec<u64> = (0..PRODUCERS as u64 * PER).collect();
        assert_eq!(all, expect, "every element delivered exactly once");
    }

    #[test]
    fn queue_drops_remaining() {
        let q = ArrayQueue::new(8);
        let item = Arc::new(());
        q.push(Arc::clone(&item)).unwrap();
        q.push(Arc::clone(&item)).unwrap();
        drop(q);
        assert_eq!(Arc::strong_count(&item), 1);
    }

    #[test]
    fn rwlock_ignores_poison() {
        let lock = Arc::new(RwLock::new(7u32));
        let l2 = Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*lock.read(), 7);
        *lock.write() = 8;
        assert_eq!(*lock.read(), 8);
    }

    #[test]
    fn channel_bounded_backpressure() {
        let (tx, rx) = channel::bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(tx.try_send(3).is_err(), "channel should be full");
        assert_eq!(rx.recv().unwrap(), 1);
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 2);
        assert!(rx.recv().is_err(), "all senders dropped");
    }

    /// Regression for the doc/behavior mismatch: `send` on a channel
    /// whose receiver is gone must surface an error carrying the value,
    /// so no delivery layer can lose data without noticing.
    #[test]
    fn channel_send_after_receiver_drop_errors_with_value() {
        let (tx, rx) = channel::bounded::<u32>(4);
        drop(rx);
        let err = tx.send(42).expect_err("receiver gone must error");
        assert_eq!(err.0, 42, "the rejected value is handed back");
    }

    #[test]
    fn spsc_fifo_and_capacity() {
        let (tx, rx) = spsc::ring::<u32>(2);
        assert_eq!(tx.capacity(), 2);
        assert!(tx.is_empty() && rx.is_empty());
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.len(), 2);
        assert_eq!(
            tx.try_send(3),
            Err(spsc::TrySendError::Full(3)),
            "full ring hands the value back"
        );
        assert_eq!(rx.try_recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Ok(3));
        assert_eq!(rx.try_recv(), Err(spsc::TryRecvError::Empty));
    }

    #[test]
    fn spsc_disconnect_both_directions() {
        // Consumer gone: producer sees Disconnected with the value back.
        let (tx, rx) = spsc::ring::<u32>(4);
        drop(rx);
        assert_eq!(tx.try_send(9), Err(spsc::TrySendError::Disconnected(9)));
        assert_eq!(tx.send(9), Err(spsc::SendError(9)));

        // Producer gone: consumer drains the backlog, then Disconnected.
        let (tx, rx) = spsc::ring::<u32>(4);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        drop(tx);
        assert!(!rx.is_finished(), "backlog still pending");
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(spsc::TryRecvError::Disconnected));
        assert!(rx.is_finished());
    }

    #[test]
    fn spsc_drop_releases_queued_elements() {
        let (tx, rx) = spsc::ring::<Arc<()>>(8);
        let item = Arc::new(());
        tx.try_send(Arc::clone(&item)).unwrap();
        tx.try_send(Arc::clone(&item)).unwrap();
        assert_eq!(rx.try_recv().map(|_| ()), Ok(()));
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&item), 1, "queued element leaked");
    }

    /// Cross-thread stress: a small ring forces constant wrap-around and
    /// full/empty transitions; every element must arrive once, in order.
    #[test]
    fn spsc_cross_thread_order_preserved() {
        const N: u64 = 100_000;
        let (tx, rx) = spsc::ring::<u64>(4);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                tx.send(i).expect("consumer alive until drained");
            }
        });
        for expect in 0..N {
            assert_eq!(rx.recv(), Ok(expect), "out of order at {expect}");
        }
        producer.join().unwrap();
        assert_eq!(rx.recv(), Err(spsc::TryRecvError::Disconnected));
    }
}
