//! Exporter robustness against hostile metric names.
//!
//! Counter/gauge/stage names are open-ended strings (subscriptions and
//! parsers register their own), so the exporters must stay
//! machine-readable no matter what lands in a name:
//!
//! * the JSON exporter must escape quotes, backslashes, and control
//!   characters so its output still parses and round-trips the exact
//!   name;
//! * the Prometheus exposition must only ever emit metric names in
//!   `[a-zA-Z_:][a-zA-Z0-9_:]*`, label names in
//!   `[a-zA-Z_][a-zA-Z0-9_]*`, and label values free of unescaped
//!   quotes, backslashes, and newlines.

use retina_telemetry::json;
use retina_telemetry::{
    DropBreakdown, DropReason, JsonSink, LogHistogram, MetricSink, SharedBuf, StageSummary,
    TelemetrySnapshot,
};

/// Names chosen to break naive renderers: quotes, backslashes, JSON
/// syntax, control characters, spaces, unicode, leading digits.
const HOSTILE_NAMES: &[&str] = &[
    "plain.name",
    "with\"quote",
    "back\\slash",
    "brace{inner=\"x\"}",
    "new\nline",
    "tab\there",
    "carriage\rreturn",
    "null\u{0}byte",
    "spaced out name",
    "0starts_with_digit",
    "unicode-δλ→name",
    "",
];

fn hostile_snapshot() -> TelemetrySnapshot {
    let mut hist = LogHistogram::new();
    hist.record_n(10, 9);
    hist.record(1000);
    let mut drops = DropBreakdown::new();
    drops.add(DropReason::HwRule, 3);
    TelemetrySnapshot {
        counters: HOSTILE_NAMES
            .iter()
            .enumerate()
            .map(|(i, n)| ((*n).to_string(), i as u64))
            .collect(),
        gauges: vec![("gauge\"with\\quote".to_string(), 7)],
        stages: HOSTILE_NAMES
            .iter()
            .map(|n| {
                (
                    (*n).to_string(),
                    StageSummary {
                        runs: 10,
                        cycles: 1090,
                        hist,
                    },
                )
            })
            .collect(),
        drops,
    }
}

#[test]
fn json_escape_round_trips_hostile_strings() {
    for name in HOSTILE_NAMES {
        let escaped = json::escape(name);
        let doc = format!("{{{escaped}: 1}}");
        let parsed = json::parse(&doc)
            .unwrap_or_else(|e| panic!("escaped {name:?} does not parse as a key: {e}"));
        assert_eq!(
            parsed.get(name).and_then(json::Json::as_u64),
            Some(1),
            "escaped key {name:?} must round-trip exactly"
        );
    }
}

#[test]
fn snapshot_json_survives_hostile_names() {
    let snap = hostile_snapshot();
    let doc = snap.to_json();
    let v = json::parse(&doc).expect("snapshot JSON with hostile names must parse");
    for (i, name) in HOSTILE_NAMES.iter().enumerate() {
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get(name)
                .and_then(json::Json::as_u64),
            Some(i as u64),
            "counter {name:?} must round-trip"
        );
        assert_eq!(
            v.get("stages")
                .unwrap()
                .get(name)
                .and_then(|s| s.get("runs"))
                .and_then(json::Json::as_u64),
            Some(10),
            "stage {name:?} must round-trip"
        );
    }
}

#[test]
fn json_sink_document_survives_hostile_names() {
    let buf = SharedBuf::new();
    let mut sink = JsonSink::new(buf.clone());
    sink.on_snapshot(&hostile_snapshot());
    sink.close();
    let v = json::parse(&buf.contents()).expect("JsonSink output must parse");
    let final_ = v.get("final").expect("document carries the snapshot");
    assert!(final_.get("counters").unwrap().get("with\"quote").is_some());
}

fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[test]
fn prometheus_exposition_stays_valid_under_hostile_names() {
    let text = hostile_snapshot().to_prometheus();
    assert!(!text.is_empty());
    for line in text
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (series, value) = line.rsplit_once(' ').expect("line must be `series value`");
        assert!(
            value.parse::<f64>().is_ok(),
            "non-numeric value in {line:?}"
        );
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => {
                let labels = rest.strip_suffix('}').expect("unclosed label set");
                (name, Some(labels))
            }
            None => (series, None),
        };
        assert!(
            is_valid_metric_name(name),
            "invalid Prometheus metric name {name:?} in {line:?}"
        );
        if let Some(labels) = labels {
            for pair in labels.split(',') {
                let (label, quoted) = pair.split_once('=').expect("label=\"value\"");
                assert!(
                    is_valid_label_name(label),
                    "invalid label name {label:?} in {line:?}"
                );
                let inner = quoted
                    .strip_prefix('"')
                    .and_then(|q| q.strip_suffix('"'))
                    .expect("label value must be quoted");
                assert!(
                    !inner.contains(['"', '\\', '\n']),
                    "label value needs escaping in {line:?}"
                );
            }
        }
    }
    // The sanitizer must not conflate distinctness away entirely: the
    // exposition still carries one series per counter.
    let counter_lines = text
        .lines()
        .filter(|l| !l.starts_with('#') && l.starts_with("retina_"))
        .count();
    assert!(counter_lines >= HOSTILE_NAMES.len());
}

#[test]
fn type_comments_match_emitted_series() {
    // Every `# TYPE <name> <kind>` comment must name a valid metric;
    // a hostile stage name must not leak into the TYPE line either.
    let text = hostile_snapshot().to_prometheus();
    for line in text.lines().filter(|l| l.starts_with("# TYPE ")) {
        let mut parts = line["# TYPE ".len()..].split(' ');
        let name = parts.next().expect("TYPE line names a metric");
        assert!(
            is_valid_metric_name(name),
            "invalid metric name {name:?} in TYPE comment {line:?}"
        );
        let kind = parts.next().expect("TYPE line carries a kind");
        assert!(matches!(kind, "counter" | "gauge" | "summary"));
    }
}
