//! The §6.1 connection-record workload: subscribe to all TCP connection
//! records and log them (the callback the paper measures at ~12K cycles
//! when writing to a shared file).
//!
//! Writes JSON-lines records to `/tmp/retina_conns.jsonl` via a buffered
//! writer — the mitigation §5.3 suggests for expensive callbacks.

// Narrowing casts in this file are intentional: synthetic traffic narrows seeded PRNG draws into ports, lengths, and header bytes.
#![allow(clippy::cast_possible_truncation)]

use std::io::Write;
use std::sync::{Arc, Mutex};

use retina_core::subscribables::ConnRecord;
use retina_core::{Runtime, RuntimeConfig};
use retina_examples::cli_args;
use retina_filtergen::filter;
use retina_trafficgen::campus::{campus_source, CampusConfig};

filter!(AllTcp, "tcp");

fn main() {
    let args = cli_args();
    let path = "/tmp/retina_conns.jsonl";
    let file = std::fs::File::create(path).expect("create log file");
    let writer = Arc::new(Mutex::new(std::io::BufWriter::new(file)));
    let sink = Arc::clone(&writer);

    let callback = move |rec: ConnRecord| {
        // Hand-rolled JSON keeps the dependency budget; records are flat.
        let line = format!(
            "{{\"orig\":\"{}\",\"resp\":\"{}\",\"duration_ms\":{},\"pkts_up\":{},\"pkts_down\":{},\"bytes_up\":{},\"bytes_down\":{},\"established\":{},\"terminated\":{},\"single_syn\":{},\"service\":{}}}\n",
            rec.tuple.orig,
            rec.tuple.resp,
            rec.duration_ns() / 1_000_000,
            rec.pkts_up,
            rec.pkts_down,
            rec.bytes_up,
            rec.bytes_down,
            rec.established,
            rec.terminated,
            rec.single_syn,
            rec.service.as_deref().map_or("null".into(), |s| format!("\"{s}\"")),
        );
        let _ = sink.lock().unwrap().write_all(line.as_bytes());
    };

    let mut runtime = Runtime::new(
        RuntimeConfig::with_cores(args.cores as u16),
        AllTcp,
        callback,
    )
    .expect("runtime");
    let source = campus_source(&CampusConfig {
        seed: args.seed,
        target_packets: args.packets as usize,
        ..CampusConfig::default()
    });
    let report = runtime.run(source);
    writer.lock().unwrap().flush().expect("flush");

    println!(
        "logged {} connection records to {} ({:.2} Gbps, zero loss: {})",
        report.cores.callbacks.runs,
        path,
        report.gbps(),
        report.zero_loss()
    );
    println!(
        "connections: {} created, {} terminated, {} expired, {} still open at end",
        report.cores.conns_created,
        report.cores.conns_terminated,
        report.cores.conns_expired,
        report.cores.conns_drained
    );
}
