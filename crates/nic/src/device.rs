//! The virtual multi-queue port.
//!
//! [`VirtualNic`] ties the flow-rule engine, RSS hasher, and redirection
//! table together into a device with bounded per-queue descriptor rings.
//! A traffic source calls [`VirtualNic::ingest`]; worker cores poll their
//! queue with [`VirtualNic::rx_burst`]. When a ring overflows or the
//! mempool is exhausted the packet is lost and counted, which is exactly
//! the signal the paper's zero-loss throughput methodology keys off.

// Narrowing casts in this file are intentional: tick, index, and counter arithmetic narrows to compact fields by design.
#![allow(clippy::cast_possible_truncation)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use retina_support::bytes::Bytes;
use retina_support::sync::ArrayQueue;
use retina_support::sync::RwLock;
use retina_telemetry::{
    trace::{TraceDropCode, TraceHwAction},
    DropBreakdown, DropReason, TraceKind, Tracer,
};
use retina_wire::ParsedPacket;

use crate::faults::FaultHooks;
use crate::flow::{DeviceCaps, FlowAction, FlowRule, FlowRuleEngine};
use crate::mbuf::{Mbuf, Mempool};
use crate::reta::{RedirectionTable, SINK_QUEUE};
use crate::rss::RssHasher;

/// Device configuration.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Number of RX queues (one per worker core).
    pub num_queues: u16,
    /// Descriptors per RX ring.
    pub ring_capacity: usize,
    /// Mempool capacity in buffers.
    pub mempool_capacity: usize,
    /// Redirection table size.
    pub reta_size: usize,
    /// Flow-engine capability profile.
    pub caps: DeviceCaps,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            num_queues: 1,
            ring_capacity: 4096,
            mempool_capacity: 1 << 20,
            reta_size: RedirectionTable::DEFAULT_SIZE,
            caps: DeviceCaps::connectx5(),
        }
    }
}

/// Port statistics, all monotonically increasing.
#[derive(Debug, Default)]
pub struct PortStats {
    /// Frames offered to the port.
    pub rx_offered: AtomicU64,
    /// Frames delivered into an RX ring.
    pub rx_delivered: AtomicU64,
    /// Bytes delivered into RX rings.
    pub rx_bytes: AtomicU64,
    /// Frames dropped by hardware flow rules (intentional).
    pub hw_dropped: AtomicU64,
    /// Frames sampled out via sink RETA entries (intentional, §6.1).
    pub sunk: AtomicU64,
    /// Frames lost to full descriptor rings (packet loss).
    pub rx_missed: AtomicU64,
    /// Frames lost to mempool exhaustion (packet loss).
    pub rx_nombuf: AtomicU64,
}

/// A point-in-time copy of [`PortStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PortStatsSnapshot {
    /// Frames offered to the port.
    pub rx_offered: u64,
    /// Frames delivered into an RX ring.
    pub rx_delivered: u64,
    /// Bytes delivered into RX rings.
    pub rx_bytes: u64,
    /// Frames dropped by hardware flow rules.
    pub hw_dropped: u64,
    /// Frames sampled out via sink RETA entries.
    pub sunk: u64,
    /// Frames lost to full descriptor rings.
    pub rx_missed: u64,
    /// Frames lost to mempool exhaustion.
    pub rx_nombuf: u64,
}

impl PortStatsSnapshot {
    /// Total *unintentional* loss — the quantity that must be zero for a
    /// measurement to count as "zero packet loss".
    pub fn lost(&self) -> u64 {
        self.rx_missed + self.rx_nombuf
    }

    /// The port's packet-subject drop taxonomy: hardware-rule drops,
    /// ring overflow, and mempool exhaustion, attributed exclusively.
    /// (Sink sampling is a measurement choice, not a drop, so `sunk`
    /// stays out of the breakdown.)
    pub fn drop_breakdown(&self) -> DropBreakdown {
        let mut drops = DropBreakdown::new();
        drops.add(DropReason::HwRule, self.hw_dropped);
        drops.add(DropReason::RingOverflow, self.rx_missed);
        drops.add(DropReason::MempoolExhausted, self.rx_nombuf);
        drops
    }

    /// Checks that every offered frame is attributed to exactly one
    /// outcome: delivered, sunk, or one of the drop reasons.
    pub fn fully_attributed(&self) -> bool {
        self.rx_offered == self.rx_delivered + self.sunk + self.drop_breakdown().packet_total()
    }
}

/// Outcome of ingesting one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// Delivered to the given RX queue.
    Delivered(u16),
    /// Dropped by a hardware flow rule.
    HwDropped,
    /// Mapped to a sink RETA entry and discarded.
    Sunk,
    /// Lost: the target ring was full.
    Missed,
    /// Lost: the mempool was exhausted.
    NoMbuf,
}

/// The virtual 100GbE port.
pub struct VirtualNic {
    queues: Vec<ArrayQueue<Mbuf>>,
    reta: RwLock<RedirectionTable>,
    hasher: RssHasher,
    engine: RwLock<FlowRuleEngine>,
    mempool: Mempool,
    stats: PortStats,
    /// Installed fault-injection layer (`None` in normal operation).
    faults: RwLock<Option<Arc<dyn FaultHooks>>>,
    /// Attached tracer recording per-frame ingest tracepoints on the
    /// ingest lane (`None` in normal operation).
    tracer: RwLock<Option<Arc<Tracer>>>,
}

impl VirtualNic {
    /// Creates a port with the given configuration.
    pub fn new(cfg: &DeviceConfig) -> Self {
        let queues = (0..cfg.num_queues)
            .map(|_| ArrayQueue::new(cfg.ring_capacity))
            .collect();
        VirtualNic {
            queues,
            reta: RwLock::new(RedirectionTable::new(cfg.reta_size, cfg.num_queues)),
            hasher: RssHasher::symmetric(),
            engine: RwLock::new(FlowRuleEngine::new(cfg.caps)),
            mempool: Mempool::new(cfg.mempool_capacity),
            stats: PortStats::default(),
            faults: RwLock::new(None),
            tracer: RwLock::new(None),
        }
    }

    /// Installs a fault-injection layer (see [`crate::faults`]); the
    /// device consults it on every ingest and poll until cleared.
    pub fn set_fault_hooks(&self, hooks: Arc<dyn FaultHooks>) {
        *self.faults.write() = Some(hooks);
    }

    /// Removes the fault-injection layer, restoring clean operation.
    pub fn clear_fault_hooks(&self) {
        *self.faults.write() = None;
    }

    /// Attaches a tracer: every subsequent ingest records its outcome
    /// (rx + hardware verdict for sampled flows; drops for all flows)
    /// on the tracer's ingest lane.
    pub fn set_tracer(&self, tracer: Arc<Tracer>) {
        *self.tracer.write() = Some(tracer);
    }

    /// Detaches the tracer, restoring untraced ingest.
    pub fn clear_tracer(&self) {
        *self.tracer.write() = None;
    }

    /// Extra worker-core latency the installed fault layer wants to
    /// inject for `core` right now (`None` when unfaulted).
    pub fn fault_worker_delay(&self, core: u16) -> Option<std::time::Duration> {
        self.faults.read().as_ref()?.worker_delay(core)
    }

    /// Extra latency the installed fault layer wants to inject before
    /// subscription `sub`'s `seq`-th dispatched callback (`None` when
    /// unfaulted).
    pub fn fault_callback_delay(&self, sub: u16, seq: u64) -> Option<std::time::Duration> {
        self.faults.read().as_ref()?.callback_delay(sub, seq)
    }

    /// Extra latency the installed fault layer wants to inject before
    /// worker core `core` picks up a newly published configuration
    /// epoch (`None` when unfaulted).
    pub fn fault_swap_pickup_delay(&self, core: u16) -> Option<std::time::Duration> {
        self.faults.read().as_ref()?.swap_pickup_delay(core)
    }

    /// Frames currently held in flight by the fault layer (0 when
    /// unfaulted). The runtime's final drain waits for this to reach
    /// zero so injected delay lines cannot strand frames.
    pub fn faults_in_flight(&self) -> usize {
        self.faults
            .read()
            .as_ref()
            .map_or(0, |hooks| hooks.in_flight())
    }

    /// Number of RX queues.
    pub fn num_queues(&self) -> u16 {
        self.queues.len() as u16
    }

    /// The device's mempool (for memory monitoring).
    pub fn mempool(&self) -> &Mempool {
        &self.mempool
    }

    /// Installs a hardware flow rule.
    pub fn install_rule(&self, rule: FlowRule) -> Result<(), crate::flow::FlowError> {
        self.engine.write().install(rule)
    }

    /// Validates a rule against the device without installing it.
    pub fn validate_rule(&self, rule: &FlowRule) -> Result<(), crate::flow::FlowError> {
        self.engine.read().validate(rule)
    }

    /// Removes all hardware flow rules.
    pub fn clear_rules(&self) {
        self.engine.write().clear();
    }

    /// Removes one installed rule equal to `rule` (the decrement half
    /// of a reconfiguration diff), returning whether it was found.
    pub fn remove_rule(&self, rule: &FlowRule) -> bool {
        self.engine.write().remove(rule)
    }

    /// Snapshot of the installed rule table, in match order. A live
    /// reconfiguration diffs this against the new union to compute the
    /// minimal add/remove set.
    pub fn rules_snapshot(&self) -> Vec<FlowRule> {
        self.engine.read().rules().to_vec()
    }

    /// Applies a reconfiguration rule diff under one engine write lock:
    /// every add installs (validated against device caps) and every
    /// remove unlinks before any reader sees the table again. Atomicity
    /// matters at the empty/non-empty boundary — an empty table means
    /// "deliver everything via RSS", so installing the first add before
    /// removing stale rules (rather than the reverse) can only ever
    /// widen what the hardware delivers, never narrow it mid-swap.
    pub fn apply_rule_diff(
        &self,
        adds: Vec<FlowRule>,
        removes: &[FlowRule],
    ) -> Result<(), crate::flow::FlowError> {
        self.engine.write().apply_diff(adds, removes)
    }

    /// Number of installed rules.
    pub fn num_rules(&self) -> usize {
        self.engine.read().rules().len()
    }

    /// Remaps a fraction of RETA entries to the sink (§6.1 rate control).
    pub fn set_sink_fraction(&self, fraction: f64) {
        self.reta.write().set_sink_fraction(fraction);
    }

    /// Fraction of RETA entries currently mapped to the sink queue.
    pub fn sink_fraction(&self) -> f64 {
        self.reta.read().sink_fraction()
    }

    /// Rewrites the redirection table in place under the write lock —
    /// the runtime API a governor or custom balancer uses to retarget
    /// hash buckets while workers keep polling.
    pub fn rewrite_reta<R>(&self, f: impl FnOnce(&mut RedirectionTable) -> R) -> R {
        f(&mut self.reta.write())
    }

    /// Descriptors currently waiting in `queue`'s RX ring.
    pub fn ring_depth(&self, queue: u16) -> usize {
        self.queues[queue as usize].len()
    }

    /// Per-ring descriptor capacity.
    pub fn ring_capacity(&self) -> usize {
        self.queues
            .first()
            .map_or(0, retina_support::sync::ArrayQueue::capacity)
    }

    /// The deepest RX ring's occupancy as a fraction of its capacity —
    /// the per-queue backpressure signal a governor keys off.
    pub fn max_ring_occupancy(&self) -> f64 {
        let cap = self.ring_capacity();
        if cap == 0 {
            return 0.0;
        }
        let deepest = self
            .queues
            .iter()
            .map(retina_support::sync::ArrayQueue::len)
            .max()
            .unwrap_or(0);
        deepest as f64 / cap as f64
    }

    /// Offers one frame to the port at the given timestamp.
    pub fn ingest(&self, frame: Bytes, timestamp_ns: u64) -> IngestOutcome {
        self.ingest_inner(frame, timestamp_ns, false)
    }

    /// Like [`VirtualNic::ingest`], but blocks (spins) instead of dropping
    /// when a descriptor ring is full or the mempool is exhausted —
    /// applying backpressure to the source. Never returns
    /// [`IngestOutcome::Missed`] or [`IngestOutcome::NoMbuf`].
    pub fn ingest_paced(&self, frame: Bytes, timestamp_ns: u64) -> IngestOutcome {
        self.ingest_inner(frame, timestamp_ns, true)
    }

    fn ingest_inner(&self, frame: Bytes, timestamp_ns: u64, paced: bool) -> IngestOutcome {
        let seq = self.stats.rx_offered.fetch_add(1, Ordering::Relaxed);
        let tracer = self.tracer.read();
        // Injected mempool-squeeze windows are keyed on the ingress
        // sequence number, so they hit the same frames on every run.
        // They drop even under paced ingest: a seq-keyed squeeze never
        // clears for this frame, so spinning would deadlock the source.
        if let Some(hooks) = self.faults.read().as_ref() {
            if hooks.mempool_squeezed(seq) {
                self.stats.rx_nombuf.fetch_add(1, Ordering::Relaxed);
                if let Some(t) = tracer.as_ref() {
                    // The frame was never parsed, so the flow is unknown:
                    // the drop lands in the flight recorder only.
                    t.emit(
                        t.ingest_lane(),
                        0,
                        TraceKind::Drop,
                        0,
                        TraceDropCode::NoMbuf as u64,
                        seq,
                    );
                }
                return IngestOutcome::NoMbuf;
            }
        }
        let parsed = ParsedPacket::parse(&frame);
        let (action, hash) = match &parsed {
            Ok(pkt) => (self.engine.read().apply(pkt), self.hasher.hash_packet(pkt)),
            Err(_) => (self.engine.read().apply_unparsed(), 0),
        };
        // The sampling decision reuses the RSS hash computed above:
        // one splitmix finalizer per frame, nothing re-parsed.
        let tid = match (tracer.as_ref(), &parsed) {
            (Some(t), Ok(_)) => t.sample_flow(hash),
            _ => 0,
        };
        if tid != 0 {
            if let Some(t) = tracer.as_ref() {
                t.emit(
                    t.ingest_lane(),
                    tid,
                    TraceKind::Rx,
                    0,
                    frame.len() as u64,
                    seq,
                );
            }
        }
        let queue = match action {
            FlowAction::Drop => {
                self.stats.hw_dropped.fetch_add(1, Ordering::Relaxed);
                if tid != 0 {
                    if let Some(t) = tracer.as_ref() {
                        t.emit(
                            t.ingest_lane(),
                            tid,
                            TraceKind::HwVerdict,
                            0,
                            TraceHwAction::Drop as u64,
                            0,
                        );
                    }
                }
                return IngestOutcome::HwDropped;
            }
            FlowAction::Queue(q) => q.min(self.num_queues() - 1),
            FlowAction::Rss => {
                let q = self.reta.read().lookup(hash);
                if q == SINK_QUEUE {
                    self.stats.sunk.fetch_add(1, Ordering::Relaxed);
                    if tid != 0 {
                        if let Some(t) = tracer.as_ref() {
                            t.emit(
                                t.ingest_lane(),
                                tid,
                                TraceKind::HwVerdict,
                                0,
                                TraceHwAction::Sunk as u64,
                                0,
                            );
                        }
                    }
                    return IngestOutcome::Sunk;
                }
                q
            }
        };
        if tid != 0 {
            if let Some(t) = tracer.as_ref() {
                let act = match action {
                    FlowAction::Queue(_) => TraceHwAction::Queue,
                    _ => TraceHwAction::Rss,
                };
                t.emit(
                    t.ingest_lane(),
                    tid,
                    TraceKind::HwVerdict,
                    0,
                    act as u64,
                    u64::from(queue),
                );
            }
        }
        while self.mempool.exhausted() {
            if !paced {
                self.stats.rx_nombuf.fetch_add(1, Ordering::Relaxed);
                if let Some(t) = tracer.as_ref() {
                    t.emit(
                        t.ingest_lane(),
                        tid,
                        TraceKind::Drop,
                        0,
                        TraceDropCode::NoMbuf as u64,
                        seq,
                    );
                }
                return IngestOutcome::NoMbuf;
            }
            std::thread::yield_now();
        }
        let len = frame.len() as u64;
        let mut mbuf = Mbuf::from_bytes_in(frame, &self.mempool);
        mbuf.timestamp_ns = timestamp_ns;
        mbuf.rss_hash = hash;
        mbuf.queue = queue;
        loop {
            match self.queues[queue as usize].push(mbuf) {
                Ok(()) => {
                    self.stats.rx_delivered.fetch_add(1, Ordering::Relaxed);
                    self.stats.rx_bytes.fetch_add(len, Ordering::Relaxed);
                    return IngestOutcome::Delivered(queue);
                }
                Err(rejected) => {
                    if !paced {
                        self.stats.rx_missed.fetch_add(1, Ordering::Relaxed);
                        if let Some(t) = tracer.as_ref() {
                            t.emit(
                                t.ingest_lane(),
                                tid,
                                TraceKind::Drop,
                                0,
                                TraceDropCode::RxMissed as u64,
                                seq,
                            );
                        }
                        return IngestOutcome::Missed;
                    }
                    mbuf = rejected;
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Polls up to `max` packets from `queue` into `out`. Returns the
    /// number of packets received.
    pub fn rx_burst(&self, queue: u16, out: &mut Vec<Mbuf>, max: usize) -> usize {
        // A stalled queue delivers nothing this poll; its descriptors
        // stay put (a stall delays frames, it never drops them).
        if let Some(hooks) = self.faults.read().as_ref() {
            if hooks.ring_stalled(queue) {
                return 0;
            }
        }
        let ring = &self.queues[queue as usize];
        let mut n = 0;
        while n < max {
            match ring.pop() {
                Some(mbuf) => {
                    out.push(mbuf);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Snapshot of the port counters.
    pub fn stats(&self) -> PortStatsSnapshot {
        PortStatsSnapshot {
            rx_offered: self.stats.rx_offered.load(Ordering::Relaxed),
            rx_delivered: self.stats.rx_delivered.load(Ordering::Relaxed),
            rx_bytes: self.stats.rx_bytes.load(Ordering::Relaxed),
            hw_dropped: self.stats.hw_dropped.load(Ordering::Relaxed),
            sunk: self.stats.sunk.load(Ordering::Relaxed),
            rx_missed: self.stats.rx_missed.load(Ordering::Relaxed),
            rx_nombuf: self.stats.rx_nombuf.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::RuleItem;
    use retina_wire::build::{build_tcp, build_udp, TcpSpec, UdpSpec};
    use retina_wire::TcpFlags;

    fn tcp_frame(src: &str, dst: &str) -> Bytes {
        Bytes::from(build_tcp(&TcpSpec {
            src: src.parse().unwrap(),
            dst: dst.parse().unwrap(),
            seq: 1,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 64,
            ttl: 64,
            payload: b"",
        }))
    }

    fn udp_frame(src: &str, dst: &str) -> Bytes {
        Bytes::from(build_udp(&UdpSpec {
            src: src.parse().unwrap(),
            dst: dst.parse().unwrap(),
            ttl: 64,
            payload: b"x",
        }))
    }

    #[test]
    fn delivery_and_burst() {
        let nic = VirtualNic::new(&DeviceConfig {
            num_queues: 2,
            ..Default::default()
        });
        let outcome = nic.ingest(tcp_frame("10.0.0.1:1000", "10.0.0.2:443"), 42);
        let IngestOutcome::Delivered(q) = outcome else {
            panic!("not delivered: {outcome:?}");
        };
        let mut out = Vec::new();
        assert_eq!(nic.rx_burst(q, &mut out, 32), 1);
        assert_eq!(out[0].timestamp_ns, 42);
        assert_eq!(out[0].queue, q);
        let stats = nic.stats();
        assert_eq!(stats.rx_delivered, 1);
        assert_eq!(stats.lost(), 0);
    }

    #[test]
    fn flow_consistency_across_directions() {
        let nic = VirtualNic::new(&DeviceConfig {
            num_queues: 8,
            ..Default::default()
        });
        let IngestOutcome::Delivered(q1) =
            nic.ingest(tcp_frame("10.0.0.1:1000", "10.0.0.2:443"), 0)
        else {
            panic!()
        };
        let IngestOutcome::Delivered(q2) =
            nic.ingest(tcp_frame("10.0.0.2:443", "10.0.0.1:1000"), 1)
        else {
            panic!()
        };
        assert_eq!(q1, q2, "symmetric RSS must keep both directions together");
    }

    #[test]
    fn ring_overflow_counts_missed() {
        let nic = VirtualNic::new(&DeviceConfig {
            num_queues: 1,
            ring_capacity: 2,
            ..Default::default()
        });
        for i in 0..5 {
            nic.ingest(tcp_frame("10.0.0.1:1000", "10.0.0.2:443"), i);
        }
        let stats = nic.stats();
        assert_eq!(stats.rx_delivered, 2);
        assert_eq!(stats.rx_missed, 3);
        assert_eq!(stats.lost(), 3);
    }

    #[test]
    fn mempool_exhaustion_counts_nombuf() {
        let nic = VirtualNic::new(&DeviceConfig {
            num_queues: 1,
            ring_capacity: 64,
            mempool_capacity: 1,
            ..Default::default()
        });
        nic.ingest(tcp_frame("10.0.0.1:1", "10.0.0.2:2"), 0);
        nic.ingest(tcp_frame("10.0.0.1:1", "10.0.0.2:2"), 1);
        let stats = nic.stats();
        assert_eq!(stats.rx_delivered, 1);
        assert_eq!(stats.rx_nombuf, 1);
    }

    #[test]
    fn hw_filter_drops_udp() {
        let nic = VirtualNic::new(&DeviceConfig::default());
        nic.install_rule(FlowRule::rss(vec![RuleItem::Tcp {
            src_port: None,
            dst_port: None,
        }]))
        .unwrap();
        assert_eq!(
            nic.ingest(udp_frame("1.1.1.1:53", "2.2.2.2:5000"), 0),
            IngestOutcome::HwDropped
        );
        assert!(matches!(
            nic.ingest(tcp_frame("1.1.1.1:80", "2.2.2.2:5000"), 0),
            IngestOutcome::Delivered(_)
        ));
        assert_eq!(nic.stats().hw_dropped, 1);
    }

    #[test]
    fn sink_sampling_preserves_flows() {
        let nic = VirtualNic::new(&DeviceConfig {
            num_queues: 4,
            ..Default::default()
        });
        nic.set_sink_fraction(0.5);
        // Each flow must be consistently delivered or consistently sunk.
        for flow in 0..64u16 {
            let src = format!("10.0.{}.{}:{}", flow / 8, flow % 8, 10000 + flow);
            let first = nic.ingest(tcp_frame(&src, "1.1.1.1:443"), 0);
            for _ in 0..3 {
                let again = nic.ingest(tcp_frame(&src, "1.1.1.1:443"), 1);
                match (first, again) {
                    (IngestOutcome::Sunk, IngestOutcome::Sunk) => {}
                    (IngestOutcome::Delivered(a), IngestOutcome::Delivered(b)) => {
                        assert_eq!(a, b);
                    }
                    other => panic!("inconsistent sampling: {other:?}"),
                }
            }
        }
        let stats = nic.stats();
        assert!(stats.sunk > 0, "expected some sunk traffic");
        assert_eq!(stats.lost(), 0);
    }

    #[test]
    fn drop_breakdown_attributes_every_frame() {
        let nic = VirtualNic::new(&DeviceConfig {
            num_queues: 1,
            ring_capacity: 2,
            ..Default::default()
        });
        nic.install_rule(FlowRule::rss(vec![RuleItem::Tcp {
            src_port: None,
            dst_port: None,
        }]))
        .unwrap();
        // 1 hw drop (UDP), 2 delivered, 3 ring overflows.
        nic.ingest(udp_frame("1.1.1.1:53", "2.2.2.2:5000"), 0);
        for i in 0..5 {
            nic.ingest(tcp_frame("10.0.0.1:1000", "10.0.0.2:443"), i);
        }
        let stats = nic.stats();
        let drops = stats.drop_breakdown();
        assert_eq!(drops.get(DropReason::HwRule), 1);
        assert_eq!(drops.get(DropReason::RingOverflow), 3);
        assert_eq!(drops.get(DropReason::MempoolExhausted), 0);
        assert_eq!(drops.lost(), stats.lost());
        assert!(stats.fully_attributed(), "{stats:?}");
    }

    #[test]
    fn burst_respects_max() {
        let nic = VirtualNic::new(&DeviceConfig::default());
        for i in 0..10 {
            nic.ingest(tcp_frame("10.0.0.1:1000", "10.0.0.2:443"), i);
        }
        let mut out = Vec::new();
        assert_eq!(nic.rx_burst(0, &mut out, 4), 4);
        assert_eq!(nic.rx_burst(0, &mut out, 100), 6);
        assert_eq!(nic.rx_burst(0, &mut out, 100), 0);
    }

    #[test]
    fn unparsed_frames_follow_default_action() {
        let nic = VirtualNic::new(&DeviceConfig::default());
        let mut arp = vec![0u8; 60];
        arp[12] = 0x08;
        arp[13] = 0x06;
        // With no rules the frame is delivered (queue 0, hash 0).
        assert!(matches!(
            nic.ingest(Bytes::from(arp.clone()), 0),
            IngestOutcome::Delivered(_)
        ));
        // With any rule installed, unparsed frames are dropped.
        nic.install_rule(FlowRule::rss(vec![RuleItem::Eth {
            ethertype: Some(retina_wire::EtherType::Ipv4),
        }]))
        .unwrap();
        assert_eq!(nic.ingest(Bytes::from(arp), 0), IngestOutcome::HwDropped);
    }

    #[test]
    fn mempool_released_after_drop() {
        let nic = VirtualNic::new(&DeviceConfig::default());
        nic.ingest(tcp_frame("10.0.0.1:1", "10.0.0.2:2"), 0);
        assert_eq!(nic.mempool().in_use(), 1);
        let mut out = Vec::new();
        nic.rx_burst(0, &mut out, 8);
        assert_eq!(nic.mempool().in_use(), 1);
        out.clear();
        assert_eq!(nic.mempool().in_use(), 0);
    }
}
