//! Seeded property-based testing.
//!
//! A deterministic, dependency-free harness with a `proptest`-shaped
//! surface: the [`proptest!`](crate::proptest!) macro, strategy
//! combinators ([`Just`], ranges, tuples, [`prop_oneof!`](crate::prop_oneof!),
//! `prop_map`, `prop_recursive`, [`collection::vec`],
//! [`sample::subsequence`], regex-pattern string strategies), and
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`.
//!
//! # Design: choice-stream generation and internal shrinking
//!
//! Instead of per-strategy shrink trees, every strategy draws raw `u64`
//! choices from a [`data::DataSource`]. A test case *is* its choice
//! sequence: replaying the same sequence regenerates the same value
//! (through arbitrary `prop_map`s), and shrinking operates on the
//! sequence itself — deleting spans and minimizing individual choices
//! with iteration-deepening granularity — then replays it. Smaller
//! choices map to simpler values by construction (ranges shrink toward
//! their lower bound, collections toward their minimum size, unions
//! toward their first variant).
//!
//! # Determinism and regressions
//!
//! The per-test base seed is a hash of the fully-qualified test name, so
//! runs are reproducible without any ambient entropy. Set
//! `RETINA_PROPTEST_SEED` to explore a different stream, and
//! `RETINA_PROPTEST_CASES` to scale case counts globally. When a case
//! fails, the harness shrinks it and reports both the minimal input and
//! its choice sequence; pin the counterexample forever by adding an
//! explicit regression test that rebuilds the value (the convention used
//! by `tests/tests/oracle.rs` for the seeds recorded in
//! `oracle.proptest-regressions`).

pub mod data;
pub mod runner;
pub mod strategy;

pub use strategy::{any, BoxedStrategy, Just, Strategy, Union};

/// Per-test configuration, set via `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Give up after this many `prop_assume!` rejections.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Collection strategies (`proptest::collection` shape).
pub mod collection {
    use super::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy::new(element, size.into())
    }
}

/// Sampling strategies (`proptest::sample` shape).
pub mod sample {
    use super::strategy::{SizeRange, Strategy, Subsequence};

    /// A strategy picking an order-preserving subsequence of `items`
    /// whose length is drawn from `size`.
    pub fn subsequence<T: Clone + std::fmt::Debug + 'static>(
        items: Vec<T>,
        size: impl Into<SizeRange>,
    ) -> impl Strategy<Value = Vec<T>> {
        Subsequence::new(items, size.into())
    }
}

/// Everything a property-test module needs: `use ...::prelude::*`.
pub mod prelude {
    pub use super::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use super::{collection, sample, ProptestConfig};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}
