//! IP-layer shared types: addresses and protocol numbers.

pub use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// IANA-assigned IP protocol numbers that this crate understands, plus a
/// catch-all for everything else.
///
/// Conversions to/from the raw `u8` are lossless so unknown protocols can
/// still be carried through the pipeline and filtered on numerically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProtocol {
    /// IPv6 Hop-by-Hop options extension header (0).
    HopByHop,
    /// ICMPv4 (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// IPv6 Routing extension header (43).
    Ipv6Route,
    /// IPv6 Fragment extension header (44).
    Ipv6Frag,
    /// ICMPv6 (58).
    Icmpv6,
    /// IPv6 No Next Header (59).
    Ipv6NoNxt,
    /// IPv6 Destination Options extension header (60).
    Ipv6Opts,
    /// Any other protocol number.
    Unknown(u8),
}

impl IpProtocol {
    /// Returns true for the IPv6 extension headers that encapsulate a
    /// further header ("chained" headers).
    pub fn is_ipv6_extension(self) -> bool {
        matches!(
            self,
            IpProtocol::HopByHop
                | IpProtocol::Ipv6Route
                | IpProtocol::Ipv6Frag
                | IpProtocol::Ipv6Opts
        )
    }
}

impl From<u8> for IpProtocol {
    fn from(value: u8) -> Self {
        match value {
            0 => IpProtocol::HopByHop,
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            43 => IpProtocol::Ipv6Route,
            44 => IpProtocol::Ipv6Frag,
            58 => IpProtocol::Icmpv6,
            59 => IpProtocol::Ipv6NoNxt,
            60 => IpProtocol::Ipv6Opts,
            other => IpProtocol::Unknown(other),
        }
    }
}

impl From<IpProtocol> for u8 {
    fn from(value: IpProtocol) -> Self {
        match value {
            IpProtocol::HopByHop => 0,
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Ipv6Route => 43,
            IpProtocol::Ipv6Frag => 44,
            IpProtocol::Icmpv6 => 58,
            IpProtocol::Ipv6NoNxt => 59,
            IpProtocol::Ipv6Opts => 60,
            IpProtocol::Unknown(other) => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_roundtrip() {
        for raw in 0u8..=255 {
            let proto = IpProtocol::from(raw);
            assert_eq!(u8::from(proto), raw);
        }
    }

    #[test]
    fn extension_headers() {
        assert!(IpProtocol::HopByHop.is_ipv6_extension());
        assert!(IpProtocol::Ipv6Frag.is_ipv6_extension());
        assert!(!IpProtocol::Tcp.is_ipv6_extension());
        assert!(!IpProtocol::Ipv6NoNxt.is_ipv6_extension());
    }
}
