//! Per-flow packet emission: TCP conversations with realistic handshakes,
//! MSS segmentation, timing, out-of-order injection, and teardown; plus
//! UDP exchanges and ICMP pings.

// Narrowing casts in this file are intentional: synthetic traffic narrows seeded PRNG draws into ports, lengths, and header bytes.
#![allow(clippy::cast_possible_truncation)]

use std::net::SocketAddr;

use retina_protocols::tls::build::{
    appdata_record, ccs_record, certificate_record, client_hello_record, server_hello_record,
    ClientHelloSpec, ServerHelloSpec,
};
use retina_protocols::{dns, http, ssh};
use retina_support::bytes::Bytes;
use retina_wire::build::{build_icmpv4_echo, build_tcp, build_udp, TcpSpec, UdpSpec};
use retina_wire::TcpFlags;

use crate::rng::Sampler;

/// Standard Ethernet MSS.
pub const MSS: usize = 1460;

/// A TCP conversation builder with sequenced segments and timestamps.
pub struct FlowBuilder {
    /// Client endpoint.
    pub client: SocketAddr,
    /// Server endpoint.
    pub server: SocketAddr,
    cseq: u32,
    sseq: u32,
    ts_ns: u64,
    rtt_ns: u64,
    seg_gap_ns: u64,
    ttl_c: u8,
    ttl_s: u8,
    /// Inject out-of-order segments into multi-segment sends.
    pub ooo: bool,
    /// Probability of displacing a segment within a multi-segment send
    /// when `ooo` is set.
    pub ooo_rate: f64,
    packets: Vec<(Bytes, u64)>,
}

impl FlowBuilder {
    /// Starts a conversation with a three-way handshake beginning at
    /// `start_ts` nanoseconds.
    pub fn new(
        client: SocketAddr,
        server: SocketAddr,
        start_ts: u64,
        rtt_ns: u64,
        sampler: &mut Sampler,
    ) -> Self {
        let mut fb = FlowBuilder {
            client,
            server,
            cseq: sampler.u64() as u32,
            sseq: sampler.u64() as u32,
            ts_ns: start_ts,
            rtt_ns: rtt_ns.max(2),
            seg_gap_ns: 20_000 + sampler.range(0, 60_000),
            ttl_c: if sampler.chance(0.3) { 128 } else { 64 },
            ttl_s: if sampler.chance(0.2) { 255 } else { 64 },
            ooo: false,
            ooo_rate: 0.15,
            packets: Vec::new(),
        };
        let (cseq, sseq) = (fb.cseq, fb.sseq);
        fb.emit(true, cseq, 0, TcpFlags::SYN, &[]);
        fb.cseq = fb.cseq.wrapping_add(1);
        fb.ts_ns += fb.rtt_ns / 2;
        let cack = fb.cseq;
        fb.emit(false, sseq, cack, TcpFlags::SYN | TcpFlags::ACK, &[]);
        fb.sseq = fb.sseq.wrapping_add(1);
        fb.ts_ns += fb.rtt_ns / 2;
        let (cseq, sack) = (fb.cseq, fb.sseq);
        fb.emit(true, cseq, sack, TcpFlags::ACK, &[]);
        fb
    }

    /// The packet timestamp cursor (ns).
    pub fn now(&self) -> u64 {
        self.ts_ns
    }

    fn emit(&mut self, from_client: bool, seq: u32, ack: u32, flags: u8, payload: &[u8]) {
        let (src, dst, ttl) = if from_client {
            (self.client, self.server, self.ttl_c)
        } else {
            (self.server, self.client, self.ttl_s)
        };
        let frame = build_tcp(&TcpSpec {
            src,
            dst,
            seq,
            ack,
            flags,
            window: 65535,
            ttl,
            payload,
        });
        self.packets.push((Bytes::from(frame), self.ts_ns));
    }

    /// Advances the simulated clock.
    pub fn pause(&mut self, dt_ns: u64) {
        self.ts_ns += dt_ns;
    }

    /// Sends application data, segmented at the MSS, optionally with
    /// out-of-order displacement.
    pub fn send(&mut self, from_client: bool, data: &[u8], sampler: &mut Sampler) {
        if data.is_empty() {
            return;
        }
        // Plan the segments (seq, payload) in order.
        let base_seq = if from_client { self.cseq } else { self.sseq };
        let ack = if from_client { self.sseq } else { self.cseq };
        let mut segments: Vec<(u32, &[u8])> = Vec::new();
        let mut offset = 0usize;
        while offset < data.len() {
            let end = (offset + MSS).min(data.len());
            segments.push((base_seq.wrapping_add(offset as u32), &data[offset..end]));
            offset = end;
        }
        // Out-of-order displacement: swap adjacent segments. The median
        // hole is filled by the very next packet (Table 2's P50 = 1).
        if self.ooo && segments.len() > 1 {
            let mut i = 0;
            while i + 1 < segments.len() {
                if sampler.chance(self.ooo_rate) {
                    segments.swap(i, i + 1);
                    i += 2;
                } else {
                    i += 1;
                }
            }
        }
        let n_segments = segments.len();
        for (i, (seq, payload)) in segments.into_iter().enumerate() {
            let flags = TcpFlags::ACK | TcpFlags::PSH;
            self.emit(from_client, seq, ack, flags, payload);
            self.ts_ns += self.seg_gap_ns;
            // Delayed ACKs: one pure ACK from the receiver per two data
            // segments (keeps the packet-size distribution bimodal with a
            // realistic small-packet share, Figure 13).
            if i % 2 == 1 && i + 1 < n_segments {
                let (rseq, rack) = if from_client {
                    (self.sseq, seq.wrapping_add(payload.len() as u32))
                } else {
                    (self.cseq, seq.wrapping_add(payload.len() as u32))
                };
                self.emit(!from_client, rseq, rack, TcpFlags::ACK, &[]);
            }
        }
        let advanced = data.len() as u32;
        if from_client {
            self.cseq = self.cseq.wrapping_add(advanced);
        } else {
            self.sseq = self.sseq.wrapping_add(advanced);
        }
        // Final ACK of the burst.
        self.ts_ns += self.rtt_ns / 2;
        let (seq, ack) = if from_client {
            (self.sseq, self.cseq)
        } else {
            (self.cseq, self.sseq)
        };
        self.emit(!from_client, seq, ack, TcpFlags::ACK, &[]);
    }

    /// Graceful FIN/FIN teardown.
    pub fn finish(mut self) -> Vec<(Bytes, u64)> {
        self.ts_ns += self.rtt_ns / 4;
        let (cseq, sack) = (self.cseq, self.sseq);
        self.emit(true, cseq, sack, TcpFlags::FIN | TcpFlags::ACK, &[]);
        self.ts_ns += self.rtt_ns / 2;
        let (sseq, cack) = (self.sseq, self.cseq.wrapping_add(1));
        self.emit(false, sseq, cack, TcpFlags::FIN | TcpFlags::ACK, &[]);
        self.ts_ns += self.rtt_ns / 2;
        let (cseq, sack) = (self.cseq.wrapping_add(1), self.sseq.wrapping_add(1));
        self.emit(true, cseq, sack, TcpFlags::ACK, &[]);
        self.packets
    }

    /// Abrupt RST teardown.
    pub fn reset(mut self) -> Vec<(Bytes, u64)> {
        self.ts_ns += self.rtt_ns / 4;
        let (cseq, sack) = (self.cseq, self.sseq);
        self.emit(true, cseq, sack, TcpFlags::RST, &[]);
        self.packets
    }

    /// No teardown: the flow just stops (expires by timeout — Table 2's
    /// "incomplete flows").
    pub fn abandon(self) -> Vec<(Bytes, u64)> {
        self.packets
    }
}

/// Parameters for a synthetic TLS flow.
pub struct TlsFlowSpec {
    /// Client endpoint.
    pub client: SocketAddr,
    /// Server endpoint.
    pub server: SocketAddr,
    /// Server name to embed in the ClientHello.
    pub sni: String,
    /// Flow start time (ns).
    pub start_ts: u64,
    /// Application bytes client → server (post-handshake).
    pub bytes_up: usize,
    /// Application bytes server → client (post-handshake).
    pub bytes_down: usize,
    /// Client random (per §7.1, occasionally deliberately broken).
    pub client_random: [u8; 32],
    /// Ciphersuite the server selects.
    pub cipher: u16,
    /// Inject out-of-order segments.
    pub ooo: bool,
    /// End with FIN (vs. abandonment).
    pub graceful: bool,
}

/// Builds a complete TLS conversation.
pub fn tls_flow(spec: &TlsFlowSpec, sampler: &mut Sampler) -> Vec<(Bytes, u64)> {
    let rtt = 2_000_000 + sampler.range(0, 40_000_000); // 2–42 ms
    let mut fb = FlowBuilder::new(spec.client, spec.server, spec.start_ts, rtt, sampler);
    fb.ooo = spec.ooo;
    fb.send(
        true,
        &client_hello_record(&ClientHelloSpec {
            sni: Some(spec.sni.clone()),
            ciphers: vec![0x1301, 0x1302, 0x1303, 0xc02b, 0xc02f, spec.cipher],
            random: spec.client_random,
            version: 0x0303,
            alpn: Some(
                if sampler.chance(0.7) {
                    "h2"
                } else {
                    "http/1.1"
                }
                .into(),
            ),
        }),
        sampler,
    );
    fb.pause(rtt / 2);
    // ServerHello + certificate chain + CCS in one server burst.
    let mut server_burst = server_hello_record(&ServerHelloSpec {
        cipher: spec.cipher,
        random: sampler.bytes32(),
        version: 0x0303,
        supported_version: sampler.chance(0.6).then_some(0x0304),
        alpn: None,
    });
    server_burst.extend_from_slice(&certificate_record(2200 + sampler.range(0, 2800) as usize));
    server_burst.extend_from_slice(&ccs_record());
    fb.send(false, &server_burst, sampler);
    fb.pause(rtt / 2);

    // Encrypted application data, alternating as TLS appdata records.
    let mut up = spec.bytes_up;
    let mut down = spec.bytes_down;
    while up > 0 || down > 0 {
        if up > 0 {
            let chunk = up.min(4 * MSS);
            fb.send(true, &appdata_record(chunk), sampler);
            up -= chunk;
        }
        if down > 0 {
            let chunk = down.min(16 * MSS);
            fb.send(false, &appdata_record(chunk), sampler);
            down -= chunk;
        }
        fb.pause(sampler.exponential(3_000_000.0) as u64);
    }
    if spec.graceful {
        fb.finish()
    } else {
        fb.abandon()
    }
}

/// Builds an HTTP/1.1 keep-alive conversation with `txns` transactions.
#[allow(clippy::too_many_arguments)]
pub fn http_flow(
    client: SocketAddr,
    server: SocketAddr,
    host: &str,
    user_agent: &str,
    txns: usize,
    body_median: usize,
    start_ts: u64,
    sampler: &mut Sampler,
) -> Vec<(Bytes, u64)> {
    let rtt = 2_000_000 + sampler.range(0, 30_000_000);
    let mut fb = FlowBuilder::new(client, server, start_ts, rtt, sampler);
    for i in 0..txns.max(1) {
        let uri = format!(
            "/asset/{}{}",
            sampler.range(0, 100000),
            [".html", ".js", ".css", ".png", ""][sampler.range(0, 5) as usize]
        );
        fb.send(
            true,
            &http::build_request("GET", &uri, host, user_agent),
            sampler,
        );
        fb.pause(rtt / 2);
        let body = sampler.lognormal(body_median as f64, 1.2) as usize;
        let status = if sampler.chance(0.9) { 200 } else { 404 };
        fb.send(
            false,
            &http::build_response(status, body.min(512 * 1024)),
            sampler,
        );
        if i + 1 < txns {
            fb.pause(sampler.exponential(50_000_000.0) as u64); // think time
        }
    }
    fb.finish()
}

/// Builds an SSH conversation: banners, then opaque encrypted chatter.
pub fn ssh_flow(
    client: SocketAddr,
    server: SocketAddr,
    start_ts: u64,
    chatter_bytes: usize,
    sampler: &mut Sampler,
) -> Vec<(Bytes, u64)> {
    let rtt = 5_000_000 + sampler.range(0, 50_000_000);
    let mut fb = FlowBuilder::new(client, server, start_ts, rtt, sampler);
    let versions = [
        "OpenSSH_9.0",
        "OpenSSH_8.9p1 Ubuntu-3",
        "OpenSSH_7.4",
        "dropbear_2022.83",
    ];
    fb.send(
        true,
        &ssh::build_banner(versions[sampler.range(0, 4) as usize]),
        sampler,
    );
    fb.send(
        false,
        &ssh::build_banner(versions[sampler.range(0, 4) as usize]),
        sampler,
    );
    // Cleartext algorithm negotiation (KEXINIT) before the encrypted
    // transport; old stacks occasionally offer weak algorithms.
    let kex = if sampler.chance(0.9) {
        "curve25519-sha256,diffie-hellman-group14-sha256"
    } else {
        "diffie-hellman-group1-sha1"
    };
    let host_keys = if sampler.chance(0.8) {
        "ssh-ed25519,rsa-sha2-512"
    } else {
        "ssh-rsa"
    };
    fb.send(true, &ssh::build_kexinit(kex, host_keys), sampler);
    let mut remaining = chatter_bytes;
    while remaining > 0 {
        let chunk = remaining.min(sampler.range(64, 1400) as usize);
        fb.send(sampler.chance(0.5), &vec![0x7fu8; chunk], sampler);
        remaining -= chunk;
        fb.pause(sampler.exponential(200_000_000.0) as u64);
    }
    fb.finish()
}

/// A single unanswered SYN (ZMap-style scan probe) — 65% of real-world
/// connections (Table 2).
pub fn scan_syn(
    client: SocketAddr,
    server: SocketAddr,
    ts: u64,
    sampler: &mut Sampler,
) -> Vec<(Bytes, u64)> {
    let frame = build_tcp(&TcpSpec {
        src: client,
        dst: server,
        seq: sampler.u64() as u32,
        ack: 0,
        flags: TcpFlags::SYN,
        window: 1024,
        ttl: if sampler.chance(0.5) { 52 } else { 243 },
        payload: b"",
    });
    vec![(Bytes::from(frame), ts)]
}

/// A DNS query/response exchange over UDP.
pub fn dns_exchange(
    client: SocketAddr,
    resolver: SocketAddr,
    name: &str,
    answered: bool,
    ts: u64,
    sampler: &mut Sampler,
) -> Vec<(Bytes, u64)> {
    let id = sampler.u64() as u16;
    let qtype = if sampler.chance(0.7) { 1 } else { 28 };
    let mut out = Vec::new();
    let q = dns::build_query(id, name, qtype);
    out.push((
        Bytes::from(build_udp(&UdpSpec {
            src: client,
            dst: resolver,
            ttl: 64,
            payload: &q,
        })),
        ts,
    ));
    if answered {
        let answers = 1 + sampler.range(0, 3) as u16;
        let r = dns::build_response(id, name, qtype, answers, 0);
        out.push((
            Bytes::from(build_udp(&UdpSpec {
                src: resolver,
                dst: client,
                ttl: 60,
                payload: &r,
            })),
            ts + 2_000_000 + sampler.range(0, 30_000_000),
        ));
    }
    out
}

/// A QUIC-like UDP flow: a v1 Initial exchange (long headers with real
/// connection IDs) followed by short-header "encrypted" packets.
pub fn udp_opaque_flow(
    client: SocketAddr,
    server: SocketAddr,
    packets: usize,
    payload_size: usize,
    start_ts: u64,
    sampler: &mut Sampler,
) -> Vec<(Bytes, u64)> {
    use retina_protocols::quic::build_long_header;
    let mut out = Vec::new();
    let mut ts = start_ts;
    let dcid: Vec<u8> = (0..8).map(|_| sampler.u64() as u8).collect();
    let scid: Vec<u8> = (0..8).map(|_| sampler.u64() as u8).collect();
    // Client and server Initials.
    out.push((
        Bytes::from(build_udp(&UdpSpec {
            src: client,
            dst: server,
            ttl: 64,
            payload: &build_long_header(1, &dcid, &[], payload_size.max(64)),
        })),
        ts,
    ));
    ts += sampler.exponential(10_000_000.0) as u64;
    if packets > 1 {
        out.push((
            Bytes::from(build_udp(&UdpSpec {
                src: server,
                dst: client,
                ttl: 60,
                payload: &build_long_header(1, &scid, &dcid, payload_size.max(64)),
            })),
            ts,
        ));
        ts += sampler.exponential(10_000_000.0) as u64;
    }
    // Short-header application packets.
    let payload = {
        let mut p = vec![0xEBu8; payload_size.max(16)];
        p[0] = 0x40; // short header: fixed bit only
        p
    };
    for i in 2..packets.max(1) {
        let from_client = sampler.chance(0.4) || i == 2;
        let (src, dst) = if from_client {
            (client, server)
        } else {
            (server, client)
        };
        out.push((
            Bytes::from(build_udp(&UdpSpec {
                src,
                dst,
                ttl: 64,
                payload: &payload,
            })),
            ts,
        ));
        ts += sampler.exponential(10_000_000.0) as u64;
    }
    out
}

/// An ICMP echo request/reply pair.
pub fn icmp_ping(
    client: std::net::Ipv4Addr,
    server: std::net::Ipv4Addr,
    seq: u16,
    ts: u64,
) -> Vec<(Bytes, u64)> {
    vec![
        (
            Bytes::from(build_icmpv4_echo(client, server, 0x77, seq)),
            ts,
        ),
        (
            Bytes::from(build_icmpv4_echo(server, client, 0x77, seq)),
            ts + 8_000_000,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use retina_wire::ParsedPacket;

    fn sa(s: &str) -> SocketAddr {
        s.parse().unwrap()
    }

    fn all_parse(packets: &[(Bytes, u64)]) {
        for (frame, _) in packets {
            ParsedPacket::parse(frame).expect("generated frame must parse");
        }
    }

    fn timestamps_monotonic(packets: &[(Bytes, u64)]) {
        for w in packets.windows(2) {
            assert!(w[0].1 <= w[1].1, "timestamps must be non-decreasing");
        }
    }

    #[test]
    fn tls_flow_shape() {
        let mut s = Sampler::new(1);
        let packets = tls_flow(
            &TlsFlowSpec {
                client: sa("10.0.0.1:40000"),
                server: sa("1.2.3.4:443"),
                sni: "www.example.com".into(),
                start_ts: 0,
                bytes_up: 3000,
                bytes_down: 50_000,
                client_random: [7; 32],
                cipher: 0x1301,
                ooo: false,
                graceful: true,
            },
            &mut s,
        );
        all_parse(&packets);
        timestamps_monotonic(&packets);
        // SYN first, FIN near the end.
        let first = ParsedPacket::parse(&packets[0].0).unwrap();
        assert!(first.tcp_flags().unwrap().syn());
        assert!(packets.len() > 10);
    }

    #[test]
    fn tls_flow_parses_through_protocol_parser() {
        use retina_protocols::{ConnParser, Direction};
        let mut s = Sampler::new(2);
        let packets = tls_flow(
            &TlsFlowSpec {
                client: sa("10.0.0.1:40000"),
                server: sa("1.2.3.4:443"),
                sni: "roundtrip.test".into(),
                start_ts: 0,
                bytes_up: 100,
                bytes_down: 100,
                client_random: [9; 32],
                cipher: 0xc02f,
                ooo: false,
                graceful: true,
            },
            &mut s,
        );
        let mut parser = retina_protocols::tls::TlsParser::new();
        let mut done = false;
        for (frame, _) in &packets {
            let pkt = ParsedPacket::parse(frame).unwrap();
            if pkt.payload_len() == 0 {
                continue;
            }
            let dir = if pkt.dst_port == 443 {
                Direction::ToServer
            } else {
                Direction::ToClient
            };
            if parser.parse(pkt.payload(frame), dir) == retina_protocols::ParseResult::Done {
                done = true;
                break;
            }
        }
        assert!(done);
        let sessions = parser.drain_sessions();
        let retina_protocols::Session::Tls(hs) = &sessions[0] else {
            panic!()
        };
        assert_eq!(hs.sni(), "roundtrip.test");
        assert_eq!(hs.client_random, [9; 32]);
    }

    #[test]
    fn ooo_flow_has_displaced_segments() {
        let mut s = Sampler::new(3);
        let packets = tls_flow(
            &TlsFlowSpec {
                client: sa("10.0.0.1:40000"),
                server: sa("1.2.3.4:443"),
                sni: "ooo.test".into(),
                start_ts: 0,
                bytes_up: 0,
                bytes_down: 200_000,
                client_random: [1; 32],
                cipher: 0x1301,
                ooo: true,
                graceful: true,
            },
            &mut s,
        );
        all_parse(&packets);
        // Detect at least one sequence inversion in the server direction.
        let mut last_seq: Option<u32> = None;
        let mut inversions = 0;
        for (frame, _) in &packets {
            let pkt = ParsedPacket::parse(frame).unwrap();
            if pkt.src_port == 443 && pkt.payload_len() > 0 {
                if let (Some(prev), Some(seq)) = (last_seq, pkt.tcp_seq()) {
                    if (seq.wrapping_sub(prev) as i32) < 0 {
                        inversions += 1;
                    }
                }
                last_seq = pkt.tcp_seq();
            }
        }
        assert!(inversions > 0, "expected out-of-order segments");
    }

    #[test]
    fn http_flow_txn_count() {
        use retina_protocols::{ConnParser, Direction};
        let mut s = Sampler::new(4);
        let packets = http_flow(
            sa("10.0.0.1:40000"),
            sa("1.2.3.4:80"),
            "host.test",
            "agent/1.0",
            3,
            500,
            0,
            &mut s,
        );
        all_parse(&packets);
        let mut parser = retina_protocols::http::HttpParser::new();
        for (frame, _) in &packets {
            let pkt = ParsedPacket::parse(frame).unwrap();
            if pkt.payload_len() == 0 {
                continue;
            }
            let dir = if pkt.dst_port == 80 {
                Direction::ToServer
            } else {
                Direction::ToClient
            };
            parser.parse(pkt.payload(frame), dir);
        }
        assert_eq!(parser.drain_sessions().len(), 3);
    }

    #[test]
    fn scan_and_dns_and_ping() {
        let mut s = Sampler::new(5);
        let scan = scan_syn(sa("1.1.1.1:55555"), sa("171.64.0.1:23"), 10, &mut s);
        assert_eq!(scan.len(), 1);
        all_parse(&scan);
        let dns = dns_exchange(
            sa("10.0.0.1:5353"),
            sa("8.8.8.8:53"),
            "a.example",
            true,
            0,
            &mut s,
        );
        assert_eq!(dns.len(), 2);
        all_parse(&dns);
        let unanswered = dns_exchange(
            sa("10.0.0.1:5353"),
            sa("8.8.8.8:53"),
            "b.example",
            false,
            0,
            &mut s,
        );
        assert_eq!(unanswered.len(), 1);
        let ping = icmp_ping(
            "10.0.0.1".parse().unwrap(),
            "8.8.8.8".parse().unwrap(),
            1,
            0,
        );
        assert_eq!(ping.len(), 2);
        all_parse(&ping);
        let udp = udp_opaque_flow(sa("10.0.0.1:6000"), sa("2.2.2.2:6001"), 10, 900, 0, &mut s);
        assert_eq!(udp.len(), 10);
        all_parse(&udp);
    }

    #[test]
    fn ssh_flow_parses() {
        let mut s = Sampler::new(6);
        let packets = ssh_flow(sa("10.0.0.1:50000"), sa("2.2.2.2:22"), 0, 2000, &mut s);
        all_parse(&packets);
        timestamps_monotonic(&packets);
    }
}
