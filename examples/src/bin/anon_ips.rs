//! §7.2: Anonymized packet analysis — subscribe to the raw packets of
//! HTTP connections and anonymize their IP addresses with a
//! prefix-preserving permutation, producing shareable packet data.
//!
//! The paper calls a format-preserving encryption crate; here the
//! anonymizer is implemented inline (a Crypto-PAn-style prefix-preserving
//! keyed permutation) to stay within the dependency budget. Identical
//! prefixes anonymize to identical prefixes, so subnet structure survives
//! for research use while addresses do not.

// Narrowing casts in this file are intentional: synthetic traffic narrows seeded PRNG draws into ports, lengths, and header bytes.
#![allow(clippy::cast_possible_truncation)]

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::net::IpAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use retina_core::subscribables::ZcFrame;
use retina_core::{ParsedPacket, Runtime, RuntimeConfig};
use retina_examples::cli_args;
use retina_filtergen::filter;
use retina_trafficgen::campus::{campus_source, CampusConfig};

filter!(HttpPackets, "http");

/// Prefix-preserving anonymization of an IPv4 address: each output bit
/// depends (via a keyed PRF) only on the preceding input bits, the
/// Crypto-PAn construction.
fn anonymize_v4(addr: u32, key: u64) -> u32 {
    let mut out = 0u32;
    for bit in 0..32 {
        let prefix = if bit == 0 { 0 } else { addr >> (32 - bit) };
        let mut h = DefaultHasher::new();
        (key, bit, prefix).hash(&mut h);
        let flip = (h.finish() & 1) as u32;
        let orig_bit = (addr >> (31 - bit)) & 1;
        out = (out << 1) | (orig_bit ^ flip);
    }
    out
}

fn main() {
    let args = cli_args();
    let key: u64 = 0x5eed_0f4a_a175_0001; // demo key; load from config in deployment

    let packets_out = Arc::new(AtomicU64::new(0));
    let sink = Arc::clone(&packets_out);
    let callback = move |frame: ZcFrame| {
        // Parse, anonymize the endpoints, and (in a real deployment)
        // write the rewritten packet to storage.
        if let Ok(pkt) = ParsedPacket::parse(frame.data()) {
            if let (IpAddr::V4(s), IpAddr::V4(d)) = (pkt.src_ip, pkt.dst_ip) {
                let anon_src = anonymize_v4(u32::from(s), key);
                let anon_dst = anonymize_v4(u32::from(d), key);
                // The anonymized pair is what would be persisted.
                std::hint::black_box((anon_src, anon_dst));
            }
        }
        sink.fetch_add(1, Ordering::Relaxed);
    };

    let mut runtime = Runtime::new(
        RuntimeConfig::with_cores(args.cores as u16),
        HttpPackets,
        callback,
    )
    .expect("runtime");
    let source = campus_source(&CampusConfig {
        seed: args.seed,
        target_packets: args.packets as usize,
        ..CampusConfig::default()
    });
    let report = runtime.run(source);

    println!(
        "anonymized {} HTTP packets out of {} total at {:.2} Gbps (zero loss: {})",
        packets_out.load(Ordering::Relaxed),
        report.nic.rx_offered,
        report.gbps(),
        report.zero_loss()
    );

    // Demonstrate prefix preservation.
    let a = u32::from("171.64.1.10".parse::<std::net::Ipv4Addr>().unwrap());
    let b = u32::from("171.64.1.77".parse::<std::net::Ipv4Addr>().unwrap());
    let c = u32::from("8.8.8.8".parse::<std::net::Ipv4Addr>().unwrap());
    let (aa, ab, ac) = (
        anonymize_v4(a, key),
        anonymize_v4(b, key),
        anonymize_v4(c, key),
    );
    println!(
        "prefix preservation: {}/{} share a /24 -> {}/{} share a /24; unrelated {} -> {}",
        std::net::Ipv4Addr::from(a),
        std::net::Ipv4Addr::from(b),
        std::net::Ipv4Addr::from(aa),
        std::net::Ipv4Addr::from(ab),
        std::net::Ipv4Addr::from(c),
        std::net::Ipv4Addr::from(ac),
    );
    assert_eq!(aa >> 8, ab >> 8, "same /24 in, same /24 out");
}
