//! Chaos tests: the pipeline's accounting and determinism guarantees
//! must survive injected faults.
//!
//! * For **any** seeded [`FaultPlan`] — mempool squeezes, ring stalls,
//!   worker slowdowns, truncated/corrupted/duplicated/reordered
//!   frames, panicking parsers — every ingress frame and every created
//!   connection is still attributed to exactly one outcome
//!   (`RunReport::check_accounting`).
//! * The overload governor never oscillates: under arbitrary pressure
//!   signals its sink-fraction trace is continuous, every change is
//!   bounded by one step per interval, and shed/restore strictly
//!   alternate (`check_governor_accounting`).
//! * Chaos runs replay: the same seed produces a bit-for-bit identical
//!   `RunReport::deterministic_digest`.
//! * Regression: an RX-ring stall active when ingest finishes must not
//!   strand frames in the ring (the final-drain fix in the worker
//!   loop).

use std::sync::{Mutex, OnceLock};

use retina_chaos::{
    arm_parser_panics, chaos_parser_factory, disarm_parser_panics, ChaosSource, Fault, FaultPlan,
};
use retina_core::subscribables::ConnRecord;
use retina_core::{compile, GovernorBrain, GovernorConfig, RunReport, Runtime, RuntimeConfig};
use retina_protocols::ParserRegistry;
use retina_support::bytes::Bytes;
use retina_support::proptest::prelude::*;
use retina_telemetry::{check_governor_accounting, PressureSignals};
use retina_trafficgen::campus::{generate, CampusConfig};
use retina_trafficgen::PreloadedSource;

/// Serializes tests that touch the process-global parser-panic switch.
static ARM_LOCK: Mutex<()> = Mutex::new(());

/// Silences the default panic printer while injected parser panics fly
/// (they are caught and counted; the spew would drown real failures).
fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// One shared small campus workload (generation is the slow part).
fn workload() -> &'static [(Bytes, u64)] {
    static WORKLOAD: OnceLock<Vec<(Bytes, u64)>> = OnceLock::new();
    WORKLOAD.get_or_init(|| {
        generate(&CampusConfig {
            target_packets: 4_000,
            duration_secs: 5.0,
            ..CampusConfig::default()
        })
    })
}

fn chaos_run(plan: &FaultPlan, registry: Option<ParserRegistry>) -> RunReport {
    let mut config = RuntimeConfig::with_cores(2);
    config.paced_ingest = true;
    if let Some(registry) = registry {
        config.parsers = registry;
    }
    let mut runtime =
        Runtime::<ConnRecord, _>::new(config, compile("tls").unwrap(), |_| {}).expect("runtime");
    retina_chaos::install(runtime.nic(), plan);
    let source = ChaosSource::new(PreloadedSource::new(workload().to_vec()), plan);
    let report = runtime.run(source);
    runtime.nic().clear_fault_hooks();
    disarm_parser_panics();
    report
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Accounting balances under any seeded fault plan: frames and
    /// connections each attributed to exactly one outcome, no matter
    /// what the plan throws at the pipeline.
    #[test]
    fn accounting_balances_under_any_fault_plan(seed in any::<u64>()) {
        let _guard = ARM_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        with_quiet_panics(|| {
            let plan = FaultPlan::from_seed(seed, workload().len() as u64, 2);
            // Register the chaos parser so ParserPanic faults actually
            // reach the parse path (it stands in for the TLS parser).
            let registry = if plan.parser_panic_modulus().is_some() {
                let mut r = ParserRegistry::empty();
                r.register("tls", chaos_parser_factory);
                Some(r)
            } else {
                None
            };
            let report = chaos_run(&plan, registry);
            if let Err(msg) = report.check_accounting() {
                panic!("accounting violated under plan:\n{}\n{msg}", plan.describe());
            }
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The governor never oscillates: for arbitrary signal sequences
    /// and tunings, the decision stream passes its accounting check —
    /// continuous sink trace, per-interval change bounded by one step,
    /// strict shed/restore alternation — and the sink fraction stays
    /// inside [floor, ceiling].
    #[test]
    fn governor_bounded_under_arbitrary_signals(
        words in collection::vec(any::<u64>(), 1..120),
        step_pct in 5u32..40,
        cooldown in 1u32..4,
    ) {
        let cfg = GovernorConfig {
            step: step_pct as f64 / 100.0,
            cooldown,
            ..GovernorConfig::default()
        };
        let mut brain = GovernorBrain::new(cfg.clone());
        for w in words {
            brain.decide(PressureSignals {
                mempool_occupancy: (w & 0xFF) as f64 / 255.0,
                ring_occupancy: ((w >> 8) & 0xFF) as f64 / 255.0,
                lost_delta: (w >> 16) & 0x3,
                dispatch_occupancy: ((w >> 18) & 0xFF) as f64 / 255.0,
            });
        }
        let report = brain.into_report();
        check_governor_accounting(&report.events, cfg.step).unwrap();
        report.check_accounting().unwrap();
        assert!(report.max_sink_fraction <= cfg.ceiling + 1e-9);
        assert!(report.final_sink_fraction >= cfg.floor - 1e-9);
    }
}

/// Same seed, same run: two executions of an identical fault plan over
/// the identical workload produce bit-for-bit identical digests.
#[test]
fn chaos_runs_replay_bit_for_bit() {
    let _guard = ARM_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    with_quiet_panics(|| {
        let plan = FaultPlan::new(0xDEAD_BEEF)
            .with(Fault::MempoolSqueeze {
                start_seq: 500,
                frames: 200,
            })
            .with(Fault::TruncateFrames { ppm: 20_000 })
            .with(Fault::CorruptFrames { ppm: 20_000 })
            .with(Fault::DuplicateFrames { ppm: 30_000 })
            .with(Fault::ReorderFrames { ppm: 30_000 })
            .with(Fault::RingStall {
                queue: 0,
                start_poll: 10,
                polls: 50,
            })
            .with(Fault::ParserPanic { modulus: 8 });
        let registry = || {
            let mut r = ParserRegistry::empty();
            r.register("tls", chaos_parser_factory);
            r
        };
        let a = chaos_run(&plan, Some(registry()));
        let b = chaos_run(&plan, Some(registry()));
        a.check_accounting().unwrap();
        b.check_accounting().unwrap();
        assert!(
            a.cores.parser_panics > 0,
            "plan should have injected parser panics"
        );
        assert_eq!(
            a.deterministic_digest(),
            b.deterministic_digest(),
            "replay of the same seeded plan diverged"
        );
        assert!(a.nic.rx_nombuf >= 200, "squeeze window must have fired");
    });
}

/// Different seeds perturb different frames (the digest is actually
/// sensitive to the plan, not constant).
#[test]
fn different_seeds_diverge() {
    let _guard = ARM_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mk = |seed| {
        FaultPlan::new(seed)
            .with(Fault::TruncateFrames { ppm: 100_000 })
            .with(Fault::CorruptFrames { ppm: 100_000 })
    };
    let a = chaos_run(&mk(1), None);
    let b = chaos_run(&mk(2), None);
    a.check_accounting().unwrap();
    b.check_accounting().unwrap();
    assert_ne!(
        a.deterministic_digest(),
        b.deterministic_digest(),
        "independent seeds produced identical digests — faults not applied?"
    );
}

/// Regression for the final-drain race: a ring stall still active when
/// ingest finishes must not strand frames. The worker may only exit
/// once its ring is empty and no fault holds frames in flight.
#[test]
fn ring_stall_at_shutdown_strands_nothing() {
    // Stall queue 0 for far more polls than ingest needs to complete,
    // so the stall is guaranteed active when `ingest_done` flips. The
    // drain loop then has to wait the window out and empty the ring.
    let plan = FaultPlan::new(7).with(Fault::RingStall {
        queue: 0,
        start_poll: 0,
        polls: 2_000_000,
    });
    let report = chaos_run(&plan, None);
    report.check_accounting().unwrap();
    assert_eq!(
        report.cores.rx_packets, report.nic.rx_delivered,
        "frames stranded in a stalled ring at shutdown"
    );
    assert!(report.nic.rx_delivered > 0);
}

/// Wire-level duplication and reordering must not fool the connection
/// tracker: accounting stays exact and duplicated segments do not
/// spawn phantom connections.
#[test]
fn conntrack_survives_duplication_and_reordering() {
    let clean = chaos_run(&FaultPlan::new(11), None);
    clean.check_accounting().unwrap();

    let noisy_plan = FaultPlan::new(11)
        .with(Fault::DuplicateFrames { ppm: 150_000 })
        .with(Fault::ReorderFrames { ppm: 150_000 });
    let noisy = chaos_run(&noisy_plan, None);
    noisy.check_accounting().unwrap();

    assert!(
        noisy.nic.rx_offered > clean.nic.rx_offered,
        "duplication should add frames"
    );
    assert_eq!(
        noisy.cores.conns_created, clean.cores.conns_created,
        "duplicated/reordered segments created phantom connections"
    );
}

/// A `CallbackStall` freezing one dedicated dispatch worker mid-run:
/// the governor must observe the queue pressure and shed, the sibling
/// subscription must keep delivering as if nothing happened, every
/// dropped result must be counted, and the governor's decision ledger
/// must stay bounded (strict shed/restore alternation).
#[test]
fn callback_stall_sheds_without_collateral_damage() {
    use retina_core::{DispatchMode, GovernorConfig, RuntimeBuilder};
    use std::time::Duration;

    let build = || {
        let mut config = RuntimeConfig::with_cores(2);
        config.paced_ingest = true;
        RuntimeBuilder::new(config)
            .subscribe_dispatched(
                "heavy",
                "ipv4 and tcp",
                DispatchMode::dedicated(4).shedding(),
                |_: ConnRecord| {},
            )
            .subscribe_named("light", "ipv4 and tcp", |_: ConnRecord| {})
            .build()
            .expect("runtime")
    };
    // Baseline: same traffic, no fault, for the sibling-isolation check.
    let mut clean_rt = build();
    let clean = clean_rt.run(ChaosSource::new(
        PreloadedSource::new(workload().to_vec()),
        &FaultPlan::new(21),
    ));
    clean.check_accounting().unwrap();

    // Stall the heavy subscription's worker 5 ms per item for its first
    // 150 items: its 4-deep-per-core rings fill almost immediately and
    // stay full for hundreds of wall-clock milliseconds.
    let plan = FaultPlan::new(21).with(Fault::CallbackStall {
        sub: 0,
        start_item: 0,
        items: 150,
        delay: Duration::from_millis(5),
    });

    // Phase 1 — no governor: with `Shed` policy the stall must be fully
    // contained. The RX path and the inline sibling see the identical
    // run; only the stalled sub's own drop counters move.
    let mut stalled_rt = build();
    retina_chaos::install(stalled_rt.nic(), &plan);
    let stalled = stalled_rt.run(ChaosSource::new(
        PreloadedSource::new(workload().to_vec()),
        &plan,
    ));
    stalled_rt.nic().clear_fault_hooks();
    stalled.check_accounting().unwrap();
    let heavy = &stalled.subs[0];
    assert!(
        heavy.cb_dropped_full > 0,
        "a 5 ms/item stall against 4-deep shedding rings must drop"
    );
    assert_eq!(
        heavy.delivered,
        heavy.cb_executed + heavy.cb_dropped_full + heavy.cb_dropped_disconnected,
        "every heavy handoff attributed exactly once"
    );
    let light = &stalled.subs[1];
    assert_eq!(
        light.delivered, clean.subs[1].delivered,
        "an inline sibling must be untouched by another sub's stall"
    );
    assert_eq!(light.cb_dropped_full, 0);
    assert_eq!(light.delivered, light.cb_executed);

    // Phase 2 — with a governor watching the dispatch hub: the queue
    // pressure must reach it as the fourth shed input and its decision
    // ledger must stay bounded (strict shed/restore alternation).
    let mut governed_rt = build();
    retina_chaos::install(governed_rt.nic(), &plan);
    let governor = governed_rt.start_governor(GovernorConfig {
        interval: Duration::from_millis(2),
        // Only the dispatch-occupancy input may trigger: park the other
        // thresholds out of reach.
        mempool_high: 2.0,
        ring_high: 2.0,
        loss_tolerance: u64::MAX,
        dispatch_high: 0.5,
        ..GovernorConfig::default()
    });
    let governed = governed_rt.run(ChaosSource::new(
        PreloadedSource::new(workload().to_vec()),
        &plan,
    ));
    governed_rt.nic().clear_fault_hooks();
    let gov = governor.stop();
    governed.check_accounting().unwrap();
    gov.check_accounting().unwrap();
    assert!(
        gov.shed_steps() > 0,
        "queue pressure from the stalled worker must reach the governor"
    );
}

/// Injected parser panics are contained: the worker survives, panics
/// are counted, and accounting still balances.
#[test]
fn parser_panics_are_recoverable() {
    let _guard = ARM_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    with_quiet_panics(|| {
        // `install` arms the switch from the plan; arming up front too
        // exercises the idempotent path.
        arm_parser_panics(3);
        let plan = FaultPlan::new(13).with(Fault::ParserPanic { modulus: 3 });
        let mut registry = ParserRegistry::empty();
        registry.register("tls", chaos_parser_factory);
        let report = chaos_run(&plan, Some(registry));
        assert!(
            report.cores.parser_panics > 0,
            "modulus 3 over thousands of segments must panic somewhere"
        );
        report.check_accounting().unwrap();
    });
}
