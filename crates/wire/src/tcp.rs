//! TCP segment view (RFC 9293), including option parsing.

// Narrowing casts in this file are intentional: wire formats pack values into fixed-width header fields.
#![allow(clippy::cast_possible_truncation)]

use core::fmt;

use crate::checksum::Checksum;
use crate::error::check_len;
use crate::ip::IpAddr;
use crate::{WireError, WireResult};

/// Minimum TCP header length (data offset = 5).
pub const MIN_HEADER_LEN: usize = 20;

/// TCP flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag.
    pub const FIN: u8 = 0x01;
    /// SYN flag.
    pub const SYN: u8 = 0x02;
    /// RST flag.
    pub const RST: u8 = 0x04;
    /// PSH flag.
    pub const PSH: u8 = 0x08;
    /// ACK flag.
    pub const ACK: u8 = 0x10;
    /// URG flag.
    pub const URG: u8 = 0x20;

    /// Returns true if the FIN bit is set.
    pub fn fin(self) -> bool {
        self.0 & Self::FIN != 0
    }
    /// Returns true if the SYN bit is set.
    pub fn syn(self) -> bool {
        self.0 & Self::SYN != 0
    }
    /// Returns true if the RST bit is set.
    pub fn rst(self) -> bool {
        self.0 & Self::RST != 0
    }
    /// Returns true if the PSH bit is set.
    pub fn psh(self) -> bool {
        self.0 & Self::PSH != 0
    }
    /// Returns true if the ACK bit is set.
    pub fn ack(self) -> bool {
        self.0 & Self::ACK != 0
    }
    /// Returns true if the URG bit is set.
    pub fn urg(self) -> bool {
        self.0 & Self::URG != 0
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = [
            (Self::SYN, "S"),
            (Self::ACK, "A"),
            (Self::FIN, "F"),
            (Self::RST, "R"),
            (Self::PSH, "P"),
            (Self::URG, "U"),
        ];
        for (bit, name) in names {
            if self.0 & bit != 0 {
                f.write_str(name)?;
            }
        }
        Ok(())
    }
}

/// A parsed TCP option.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpOption {
    /// Maximum segment size (kind 2).
    Mss(u16),
    /// Window scale shift (kind 3).
    WindowScale(u8),
    /// SACK permitted (kind 4).
    SackPermitted,
    /// Timestamps: value and echo reply (kind 8).
    Timestamps(u32, u32),
    /// Any other option kind (kind, length of data).
    Unknown(u8, usize),
}

/// Zero-copy view of a TCP segment.
#[derive(Debug, Clone)]
pub struct TcpSegment<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> TcpSegment<T> {
    /// Wraps a buffer, validating the data offset and buffer length.
    pub fn new_checked(buffer: T) -> WireResult<Self> {
        let buf = buffer.as_ref();
        check_len(buf, MIN_HEADER_LEN)?;
        let data_offset = usize::from(buf[12] >> 4) * 4;
        if data_offset < MIN_HEADER_LEN {
            return Err(WireError::Malformed("tcp data offset"));
        }
        check_len(buf, data_offset)?;
        Ok(Self { buffer })
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([b[4], b[5], b[6], b[7]])
    }

    /// Acknowledgment number.
    pub fn ack(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([b[8], b[9], b[10], b[11]])
    }

    /// Header length in bytes (data offset × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[12] >> 4) * 4
    }

    /// Flag bits.
    pub fn flags(&self) -> TcpFlags {
        TcpFlags(self.buffer.as_ref()[13])
    }

    /// Receive window.
    pub fn window(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[14], b[15]])
    }

    /// Checksum field.
    pub fn checksum(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[16], b[17]])
    }

    /// Urgent pointer.
    pub fn urgent_ptr(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[18], b[19]])
    }

    /// Raw option bytes.
    pub fn options_raw(&self) -> &[u8] {
        &self.buffer.as_ref()[MIN_HEADER_LEN..self.header_len()]
    }

    /// Iterates over parsed options. Malformed option encodings terminate
    /// iteration rather than panicking.
    pub fn options(&self) -> TcpOptionIter<'_> {
        TcpOptionIter {
            data: self.options_raw(),
        }
    }

    /// Payload bytes following the header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.header_len()..]
    }

    /// Verifies the TCP checksum given the IP pseudo-header addresses.
    pub fn verify_checksum(&self, src: &IpAddr, dst: &IpAddr) -> bool {
        let buf = self.buffer.as_ref();
        let mut c = Checksum::new();
        c.add_pseudo_header(src, dst, 6, buf.len() as u32);
        c.add_bytes(buf);
        c.finish() == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> TcpSegment<T> {
    /// Sets the source port.
    pub fn set_src_port(&mut self, port: u16) {
        self.buffer.as_mut()[0..2].copy_from_slice(&port.to_be_bytes());
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, port: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&port.to_be_bytes());
    }

    /// Sets the sequence number.
    pub fn set_seq(&mut self, seq: u32) {
        self.buffer.as_mut()[4..8].copy_from_slice(&seq.to_be_bytes());
    }

    /// Sets the acknowledgment number.
    pub fn set_ack(&mut self, ack: u32) {
        self.buffer.as_mut()[8..12].copy_from_slice(&ack.to_be_bytes());
    }

    /// Sets the data offset (header length in bytes; must be a multiple
    /// of 4).
    pub fn set_header_len(&mut self, len: usize) {
        debug_assert!(len.is_multiple_of(4) && len >= MIN_HEADER_LEN);
        let b = self.buffer.as_mut();
        b[12] = ((len / 4) as u8) << 4;
    }

    /// Sets the flag bits.
    pub fn set_flags(&mut self, flags: TcpFlags) {
        self.buffer.as_mut()[13] = flags.0;
    }

    /// Sets the receive window.
    pub fn set_window(&mut self, window: u16) {
        self.buffer.as_mut()[14..16].copy_from_slice(&window.to_be_bytes());
    }

    /// Recomputes and stores the checksum given the pseudo-header.
    pub fn fill_checksum(&mut self, src: &IpAddr, dst: &IpAddr) {
        let len = self.buffer.as_ref().len() as u32;
        let buf = self.buffer.as_mut();
        buf[16] = 0;
        buf[17] = 0;
        let mut c = Checksum::new();
        c.add_pseudo_header(src, dst, 6, len);
        c.add_bytes(buf);
        let ck = c.finish();
        buf[16..18].copy_from_slice(&ck.to_be_bytes());
    }
}

/// Iterator over TCP options.
pub struct TcpOptionIter<'a> {
    data: &'a [u8],
}

impl<'a> Iterator for TcpOptionIter<'a> {
    type Item = TcpOption;

    fn next(&mut self) -> Option<TcpOption> {
        loop {
            match *self.data {
                [] | [0, ..] => return None, // end of options
                [1, ref rest @ ..] => {
                    // NOP padding
                    self.data = rest;
                }
                [kind, len, ..] => {
                    let len = usize::from(len);
                    if len < 2 || len > self.data.len() {
                        return None; // malformed; stop
                    }
                    let body = &self.data[2..len];
                    self.data = &self.data[len..];
                    let opt = match (kind, body) {
                        (2, [h, l]) => TcpOption::Mss(u16::from_be_bytes([*h, *l])),
                        (3, [s]) => TcpOption::WindowScale(*s),
                        (4, []) => TcpOption::SackPermitted,
                        (8, b) if b.len() == 8 => TcpOption::Timestamps(
                            u32::from_be_bytes(b[0..4].try_into().unwrap()),
                            u32::from_be_bytes(b[4..8].try_into().unwrap()),
                        ),
                        _ => TcpOption::Unknown(kind, body.len()),
                    };
                    return Some(opt);
                }
                [_] => return None, // lone kind byte with no length
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::IpAddr;

    fn sample_segment(payload: &[u8]) -> Vec<u8> {
        let mut buf = vec![0u8; MIN_HEADER_LEN + payload.len()];
        buf[12] = 0x50;
        buf[MIN_HEADER_LEN..].copy_from_slice(payload);
        let mut seg = TcpSegment::new_checked(&mut buf[..]).unwrap();
        seg.set_src_port(443);
        seg.set_dst_port(51000);
        seg.set_seq(1000);
        seg.set_ack(2000);
        seg.set_flags(TcpFlags(TcpFlags::ACK | TcpFlags::PSH));
        seg.set_window(65535);
        buf
    }

    #[test]
    fn parse_roundtrip() {
        let buf = sample_segment(b"hello");
        let seg = TcpSegment::new_checked(&buf[..]).unwrap();
        assert_eq!(seg.src_port(), 443);
        assert_eq!(seg.dst_port(), 51000);
        assert_eq!(seg.seq(), 1000);
        assert_eq!(seg.ack(), 2000);
        assert!(seg.flags().ack() && seg.flags().psh());
        assert!(!seg.flags().syn());
        assert_eq!(seg.window(), 65535);
        assert_eq!(seg.payload(), b"hello");
    }

    #[test]
    fn checksum_roundtrip() {
        let mut buf = sample_segment(b"data!");
        let src = IpAddr::V4("10.0.0.1".parse().unwrap());
        let dst = IpAddr::V4("10.0.0.2".parse().unwrap());
        {
            let mut seg = TcpSegment::new_checked(&mut buf[..]).unwrap();
            seg.fill_checksum(&src, &dst);
        }
        let seg = TcpSegment::new_checked(&buf[..]).unwrap();
        assert!(seg.verify_checksum(&src, &dst));
        let other = IpAddr::V4("10.0.0.9".parse().unwrap());
        assert!(!seg.verify_checksum(&src, &other));
    }

    #[test]
    fn checksum_v6() {
        let mut buf = sample_segment(b"v6 payload");
        let src = IpAddr::V6("2001:db8::1".parse().unwrap());
        let dst = IpAddr::V6("2001:db8::2".parse().unwrap());
        {
            let mut seg = TcpSegment::new_checked(&mut buf[..]).unwrap();
            seg.fill_checksum(&src, &dst);
        }
        let seg = TcpSegment::new_checked(&buf[..]).unwrap();
        assert!(seg.verify_checksum(&src, &dst));
    }

    #[test]
    fn options_parsing() {
        // 20-byte header + 12 bytes of options: MSS(1460), NOP, WScale(7),
        // SackPermitted, then EOL padding.
        let mut buf = [0u8; 32];
        buf[12] = 0x80; // data offset 8 -> 32 bytes
        buf[20..24].copy_from_slice(&[2, 4, 0x05, 0xb4]);
        buf[24] = 1; // NOP
        buf[25..28].copy_from_slice(&[3, 3, 7]);
        buf[28..30].copy_from_slice(&[4, 2]);
        buf[30] = 0; // EOL
        let seg = TcpSegment::new_checked(&buf[..]).unwrap();
        let opts: Vec<_> = seg.options().collect();
        assert_eq!(
            opts,
            vec![
                TcpOption::Mss(1460),
                TcpOption::WindowScale(7),
                TcpOption::SackPermitted
            ]
        );
        assert!(seg.payload().is_empty());
    }

    #[test]
    fn timestamps_option() {
        let mut buf = [0u8; 32];
        buf[12] = 0x80;
        buf[20..22].copy_from_slice(&[8, 10]);
        buf[22..26].copy_from_slice(&123456u32.to_be_bytes());
        buf[26..30].copy_from_slice(&654321u32.to_be_bytes());
        buf[30] = 0;
        let seg = TcpSegment::new_checked(&buf[..]).unwrap();
        assert_eq!(
            seg.options().next(),
            Some(TcpOption::Timestamps(123456, 654321))
        );
    }

    #[test]
    fn malformed_option_length_stops_iteration() {
        let mut buf = [0u8; 24];
        buf[12] = 0x60; // offset 6 -> 24 bytes
        buf[20] = 2; // MSS
        buf[21] = 200; // bogus length
        let seg = TcpSegment::new_checked(&buf[..]).unwrap();
        assert_eq!(seg.options().count(), 0);
    }

    #[test]
    fn reject_bad_data_offset() {
        let mut buf = [0u8; 20];
        buf[12] = 0x40; // offset 4 -> 16 bytes < 20
        assert!(TcpSegment::new_checked(&buf[..]).is_err());
    }

    #[test]
    fn reject_offset_past_buffer() {
        let mut buf = [0u8; 20];
        buf[12] = 0xf0; // offset 15 -> 60 bytes > 20
        assert!(TcpSegment::new_checked(&buf[..]).is_err());
    }

    #[test]
    fn flags_display() {
        assert_eq!(TcpFlags(TcpFlags::SYN | TcpFlags::ACK).to_string(), "SA");
        assert_eq!(TcpFlags(TcpFlags::FIN).to_string(), "F");
        assert_eq!(TcpFlags(0).to_string(), "");
    }
}
