//! Trace smoke + overhead gate: proves the per-flow causal tracing
//! pipeline is (a) functionally sound in both runtime modes and
//! (b) cheap enough to leave attached.
//!
//! Three invocations:
//!
//! * `--mode overhead` (default, the `trace-overhead` CI stage): times
//!   the telemetry-smoke workload three ways — no tracer, tracer
//!   attached but disabled, tracer sampling 1-in-1024 — and enforces
//!   the hard budgets from the tracing tentpole: disabled tracing
//!   costs <1%, sampled tracing <5%, measured as min-of-N ratios
//!   against the untraced run.
//! * `--mode disabled` (verify.sh): a tracer attached with
//!   `enabled: false` must record nothing — empty session lanes, no
//!   flight dump, no triggers — while the run's accounting stays
//!   exact.
//! * `--mode sampled` (verify.sh): 1-in-16 sampling over the campus
//!   mix must assemble non-empty span trees whose JSON rendering
//!   parses, with zero trace-buffer overflow.
//!
//! Exits non-zero on any violation.

use std::process::exit;

use retina_bench::{ci, timed};
use retina_core::subscribables::ConnRecord;
use retina_core::telemetry::json;
use retina_core::{
    CompiledFilter, MultiRuntime, RunReport, RuntimeBuilder, RuntimeConfig, TraceConfig,
};
use retina_support::bytes::Bytes;
use retina_trafficgen::campus::{generate, CampusConfig};
use retina_trafficgen::PreloadedSource;

/// Disabled tracepoints must stay under 1% of the untraced runtime.
const OFF_BUDGET: f64 = 1.01;
/// 1-in-1024 sampling must stay under 5%.
const SAMPLED_BUDGET: f64 = 1.05;
/// Absolute slack for tiny runs: deltas inside the scheduler's noise
/// floor never fail the gate even if the ratio looks large.
const NOISE_FLOOR_SECS: f64 = 0.003;

struct Args {
    packets: usize,
    quick: bool,
    json_out: Option<String>,
    mode: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        packets: 400_000,
        quick: false,
        json_out: None,
        mode: "overhead".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => {
                args.quick = true;
                args.packets = args.packets.min(80_000);
            }
            "--packets" => {
                if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                    args.packets = v;
                }
            }
            "--json-out" => {
                args.json_out = it.next();
            }
            "--mode" => {
                if let Some(m) = it.next() {
                    args.mode = m;
                }
            }
            other => eprintln!("ignoring unknown flag {other}"),
        }
    }
    args
}

fn fail(msg: &str) -> ! {
    eprintln!("trace smoke FAILED: {msg}");
    exit(1);
}

/// The telemetry-smoke runtime shape: campus mix, `tls` filter, conn
/// records, two cores, paced ingest (loss-free, so the three timed
/// configurations do identical work).
fn build_runtime(trace: Option<TraceConfig>) -> MultiRuntime<CompiledFilter> {
    let mut config = RuntimeConfig::with_cores(2);
    config.paced_ingest = true;
    let mut b =
        RuntimeBuilder::new(config).subscribe_named::<ConnRecord>("smoke", "tls", |_rec| {});
    if let Some(tc) = trace {
        b = b.trace(tc);
    }
    b.build().expect("runtime")
}

fn run_once(source: &PreloadedSource, trace: Option<TraceConfig>) -> (RunReport, f64) {
    let mut rt = build_runtime(trace);
    let mut src = source.clone();
    src.rewind();
    let (report, secs) = timed(|| rt.run(src));
    if let Err(msg) = report.check_accounting() {
        fail(&format!("accounting invariant violated: {msg}"));
    }
    if !report.zero_loss() {
        fail("paced run lost packets; timings would not be comparable");
    }
    (report, secs)
}

fn disabled_config() -> TraceConfig {
    TraceConfig {
        enabled: false,
        sample_one_in: 16,
        ..TraceConfig::default()
    }
}

fn mode_disabled(source: &PreloadedSource) {
    let (report, _) = run_once(source, Some(disabled_config()));
    let trace = report.trace.expect("attached tracer reports a session");
    if trace
        .session
        .lanes
        .iter()
        .any(|(_, events)| !events.is_empty())
    {
        fail("disabled tracer recorded sampled events");
    }
    if trace.session.dropped_events != 0 {
        fail("disabled tracer counted dropped events");
    }
    if trace.flight.is_some() {
        fail("disabled tracer froze a flight dump");
    }
    println!("trace smoke OK (disabled): tracer attached, nothing recorded, accounting exact");
}

fn mode_sampled(source: &PreloadedSource) {
    let tc = TraceConfig {
        sample_one_in: 16,
        ..TraceConfig::default()
    };
    let (report, _) = run_once(source, Some(tc));
    let trace = report.trace.expect("attached tracer reports a session");
    if trace.session.dropped_events != 0 {
        fail(&format!(
            "trace buffers overflowed: {} events lost",
            trace.session.dropped_events
        ));
    }
    let flows = trace.session.assemble();
    if flows.is_empty() {
        fail("1-in-16 sampling over the campus mix sampled no flows");
    }
    for flow in &flows {
        if flow.ingest.is_empty() && flow.pipeline.is_empty() {
            fail("assembled flow has no NIC or RX-core events");
        }
        if json::parse(&flow.to_json()).is_err() {
            fail("span-tree JSON rendering does not parse");
        }
        if flow.canonical_text().is_empty() || flow.render_text().is_empty() {
            fail("span-tree text renderings are empty");
        }
    }
    println!(
        "trace smoke OK (sampled): {} span trees assembled, no overflow, renderers consistent",
        flows.len()
    );
}

fn mode_overhead(args: &Args, base: &[(Bytes, u64)]) {
    // A single campus pass finishes in tens of milliseconds — far too
    // short to resolve a 1% budget against scheduler noise. Repeat the
    // mix with shifted timestamps so each timed run lasts long enough
    // for min-of-N to converge.
    let repeats = if args.quick { 8 } else { 16 };
    let span = base.last().map_or(0, |(_, ts)| ts + 1_000_000);
    let mut packets = Vec::with_capacity(base.len() * repeats);
    for r in 0..repeats as u64 {
        packets.extend(base.iter().map(|(b, ts)| (b.clone(), ts + r * span)));
    }
    let offered = packets.len();
    let source = &PreloadedSource::new(packets);
    let (min_iters, max_iters) = if args.quick { (3, 12) } else { (5, 16) };
    println!("trace overhead: {offered} packets, {min_iters}..{max_iters} interleaved iterations per mode");
    let sampled_config = TraceConfig {
        sample_one_in: 1024,
        ..TraceConfig::default()
    };
    // Each round times the three configurations back to back and the
    // gate keeps the best *paired* ratio (traced time over the same
    // round's untraced time). Pairing within a round cancels slow
    // thermal/host drift, and taking the min over rounds discards any
    // round poisoned by a noise burst — in either direction: a freak
    // fast window for one run only distorts its own round. The budget
    // is an existence claim — "a traced run costs at most X% over an
    // untraced one" — so noisy rounds are answered by measuring more
    // rounds, not by failing: iterate until the ratios pass or the
    // round cap is exhausted.
    let (mut t_none, mut t_off, mut t_sampled) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    let mut sampled_flows = 0usize;
    let (mut off_ratio, mut sampled_ratio) = (f64::INFINITY, f64::INFINITY);
    let (mut off_ok, mut sampled_ok) = (false, false);
    for iter in 0..max_iters {
        let (_, none_secs) = run_once(source, None);
        t_none = t_none.min(none_secs);
        let (_, off_secs) = run_once(source, Some(disabled_config()));
        t_off = t_off.min(off_secs);
        let (report, sampled_secs) = run_once(source, Some(sampled_config.clone()));
        t_sampled = t_sampled.min(sampled_secs);
        sampled_flows = report
            .trace
            .as_ref()
            .map_or(0, |t| t.session.trace_ids().len());
        off_ratio = off_ratio.min(off_secs / none_secs);
        sampled_ratio = sampled_ratio.min(sampled_secs / none_secs);
        off_ok = off_ratio <= OFF_BUDGET || (t_off - t_none) <= NOISE_FLOOR_SECS;
        sampled_ok = sampled_ratio <= SAMPLED_BUDGET || (t_sampled - t_none) <= NOISE_FLOOR_SECS;
        if iter + 1 >= min_iters && off_ok && sampled_ok {
            println!("  converged after {} rounds", iter + 1);
            break;
        }
    }
    println!(
        "  best times: untraced {t_none:.4}s | disabled {t_off:.4}s | 1-in-1024 {t_sampled:.4}s"
    );
    println!(
        "  best paired ratios: disabled {:+.2}% | 1-in-1024 {:+.2}%",
        (off_ratio - 1.0) * 100.0,
        (sampled_ratio - 1.0) * 100.0,
    );
    println!("  sampled flows in final run: {sampled_flows}");
    if !off_ok {
        fail(&format!(
            "disabled tracing costs {:.2}% (budget {:.0}%)",
            (off_ratio - 1.0) * 100.0,
            (OFF_BUDGET - 1.0) * 100.0
        ));
    }
    if !sampled_ok {
        fail(&format!(
            "1-in-1024 sampling costs {:.2}% (budget {:.0}%)",
            (sampled_ratio - 1.0) * 100.0,
            (SAMPLED_BUDGET - 1.0) * 100.0
        ));
    }
    println!(
        "trace overhead OK: disabled <{:.0}%, sampled <{:.0}%",
        (OFF_BUDGET - 1.0) * 100.0,
        (SAMPLED_BUDGET - 1.0) * 100.0
    );

    if let Some(path) = &args.json_out {
        // The within-budget booleans are the real gate (exact match);
        // the ratio metrics track drift and are compared against the
        // committed baseline with the default tolerance.
        let metrics: Vec<(&str, f64)> = vec![
            ("packets", offered as f64),
            ("trace_off_within_budget", 1.0),
            ("trace_sampled_within_budget", 1.0),
            ("trace_off_overhead", off_ratio),
            ("trace_sampled_overhead", sampled_ratio),
            ("_t_none_secs", t_none),
            ("_t_disabled_secs", t_off),
            ("_t_sampled_secs", t_sampled),
            ("_sampled_flows", sampled_flows as f64),
        ];
        if let Err(e) = ci::merge_section(path, "trace_smoke", &metrics) {
            fail(&format!("writing {path}: {e}"));
        }
        println!("  metrics merged into {path}");
        ci::print_gate_keys("trace_smoke", &metrics);
    }
}

fn main() {
    let args = parse_args();
    let packets = generate(&CampusConfig {
        target_packets: args.packets.min(120_000),
        duration_secs: 30.0,
        ..CampusConfig::default()
    });
    match args.mode.as_str() {
        "overhead" => mode_overhead(&args, &packets),
        "disabled" => mode_disabled(&PreloadedSource::new(packets)),
        "sampled" => mode_sampled(&PreloadedSource::new(packets)),
        other => fail(&format!(
            "unknown --mode {other} (known: overhead disabled sampled)"
        )),
    }
}
