//! Shared helpers for the cross-crate integration tests.

use retina_support::bytes::Bytes;

/// Collects the parsed packets of a stream (skipping unparseable frames).
pub fn parse_all(packets: &[(Bytes, u64)]) -> Vec<(retina_wire::ParsedPacket, Bytes)> {
    packets
        .iter()
        .filter_map(|(frame, _)| {
            retina_wire::ParsedPacket::parse(frame)
                .ok()
                .map(|p| (p, frame.clone()))
        })
        .collect()
}
