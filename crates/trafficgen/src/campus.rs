//! The campus-traffic mix (Appendix C's network, synthesized).
//!
//! Generates connections whose composition matches the distributions the
//! paper reports for its university uplink (Table 2):
//!
//! - ~69.7% TCP / ~29.8% UDP connections (plus a little ICMP);
//! - ~65% of TCP connections are single unanswered SYNs (scans);
//! - ~6% of data flows contain out-of-order segments, with the median
//!   hole filled by the next packet;
//! - ~4.6% of flows end without teardown ("incomplete");
//! - heavy-tailed flow lengths and a bimodal packet-size distribution
//!   (pure ACKs vs. full-MSS segments, Figure 13);
//! - TLS dominates established-TCP bytes; SNIs are Zipf-distributed over
//!   a deterministic domain list with `.com` most common, including the
//!   Netflix/YouTube video domains the paper's filters target;
//! - a small rate of broken TLS client randoms (§7.1's anomaly).

// Narrowing casts in this file are intentional: synthetic traffic narrows seeded PRNG draws into ports, lengths, and header bytes.
#![allow(clippy::cast_possible_truncation)]

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr};

use retina_support::bytes::Bytes;

use crate::flows::{
    dns_exchange, http_flow, icmp_ping, scan_syn, ssh_flow, tls_flow, udp_opaque_flow, FlowBuilder,
    TlsFlowSpec,
};
use crate::rng::Sampler;
use crate::PreloadedSource;

/// The §7.1 anomalous client randoms, with their approximate real-world
/// rates relative to all handshakes.
pub const BROKEN_RANDOM_A: [u8; 32] = {
    // 738b712a...dee0dbe1 — the most frequent value (8340 in 13.4M).
    let mut r = [0u8; 32];
    r[0] = 0x73;
    r[1] = 0x8b;
    r[2] = 0x71;
    r[3] = 0x2a;
    r[28] = 0xde;
    r[29] = 0xe0;
    r[30] = 0xdb;
    r[31] = 0xe1;
    r
};

/// The second §7.1 anomaly (417a7572...00000000).
pub const BROKEN_RANDOM_B: [u8; 32] = {
    let mut r = [0u8; 32];
    r[0] = 0x41;
    r[1] = 0x7a;
    r[2] = 0x75;
    r[3] = 0x72;
    r
};

/// Campus traffic configuration. Fractions default to Table 2's measured
/// values.
#[derive(Debug, Clone)]
pub struct CampusConfig {
    /// RNG seed (generation is fully deterministic given the seed).
    pub seed: u64,
    /// Approximate number of packets to generate.
    pub target_packets: usize,
    /// Simulated capture duration in seconds (controls arrival rate).
    pub duration_secs: f64,
    /// Fraction of connections that are TCP.
    pub tcp_frac: f64,
    /// Fraction of connections that are UDP.
    pub udp_frac: f64,
    /// Of TCP connections: fraction that are single unanswered SYNs.
    pub single_syn_frac: f64,
    /// Of data flows: fraction with out-of-order segments.
    pub ooo_flow_frac: f64,
    /// Of data flows: fraction abandoned without teardown.
    pub incomplete_frac: f64,
    /// Of established TCP: fraction that is TLS.
    pub tls_frac: f64,
    /// Of established TCP: fraction that is HTTP.
    pub http_frac: f64,
    /// Of established TCP: fraction that is SSH.
    pub ssh_frac: f64,
    /// Of DNS queries: fraction answered.
    pub dns_answered_frac: f64,
    /// Fraction of flows using IPv6.
    pub ipv6_frac: f64,
    /// Rate of the dominant broken client random (anomaly A).
    pub broken_random_a_rate: f64,
    /// Rate of anomaly B.
    pub broken_random_b_rate: f64,
    /// Rate of all-zero client randoms.
    pub zero_random_rate: f64,
    /// Median TLS download bytes (upload is ~1/8 of this).
    pub tls_bytes_median: f64,
}

impl Default for CampusConfig {
    fn default() -> Self {
        CampusConfig {
            seed: 0xC0FFEE,
            target_packets: 200_000,
            duration_secs: 60.0,
            tcp_frac: 0.697,
            udp_frac: 0.298,
            single_syn_frac: 0.65,
            ooo_flow_frac: 0.06,
            incomplete_frac: 0.046,
            tls_frac: 0.62,
            http_frac: 0.22,
            ssh_frac: 0.06,
            dns_answered_frac: 0.85,
            ipv6_frac: 0.08,
            broken_random_a_rate: 6.2e-4,
            broken_random_b_rate: 3.7e-5,
            zero_random_rate: 2.3e-5,
            tls_bytes_median: 30_000.0,
        }
    }
}

impl CampusConfig {
    /// Smaller preset for unit tests.
    pub fn small(seed: u64) -> Self {
        CampusConfig {
            seed,
            target_packets: 20_000,
            duration_secs: 10.0,
            ..Default::default()
        }
    }
}

/// The deterministic SNI/host catalogue. Index 0 is most popular (Zipf).
pub fn domain_catalogue() -> Vec<String> {
    let mut domains = vec![
        "www.google.com".to_string(),
        "www.youtube.com".to_string(),
        "graph.facebook.com".to_string(),
        "www.netflix.com".to_string(),
        "api.apple.com".to_string(),
        "www.amazon.com".to_string(),
        "cdn.cloudflare.com".to_string(),
        "www.example.com".to_string(),
        "login.microsoftonline.com".to_string(),
        "www.stanford.edu".to_string(),
        "r3---sn-nx57yn7r.googlevideo.com".to_string(),
        "ipv4-c001-sjc001-ix.1.oca.nflxvideo.net".to_string(),
        "r5---sn-a8au76.googlevideo.com".to_string(),
        "ipv4-c002-lax009-ix.1.oca.nflxvideo.net".to_string(),
    ];
    let tlds = ["com", "com", "com", "net", "org", "io", "edu", "gov"];
    for i in 0..86 {
        domains.push(format!("svc{i:02}.site{i:02}.{}", tlds[i % tlds.len()]));
    }
    domains
}

/// Generates the campus mix: a timestamp-sorted packet stream.
pub fn generate(config: &CampusConfig) -> Vec<(Bytes, u64)> {
    let mut sampler = Sampler::new(config.seed);
    let domains = domain_catalogue();
    let mut packets: Vec<(Bytes, u64)> = Vec::with_capacity(config.target_packets + 1024);
    let duration_ns = (config.duration_secs * 1e9) as u64;

    while packets.len() < config.target_packets {
        let start_ts = sampler.range(0, duration_ns.max(1));
        let flow = generate_connection(config, &domains, start_ts, &mut sampler);
        packets.extend(flow);
    }
    packets.sort_by_key(|(_, ts)| *ts);
    packets
}

/// Generates one connection of the mix.
fn generate_connection(
    config: &CampusConfig,
    domains: &[String],
    start_ts: u64,
    sampler: &mut Sampler,
) -> Vec<(Bytes, u64)> {
    let kind = sampler.uniform();
    let v6 = sampler.chance(config.ipv6_frac);
    if kind < config.tcp_frac {
        // TCP connection.
        if sampler.chance(config.single_syn_frac) {
            // Scan probe: outside → campus.
            let cport = 40_000 + sampler.range(0, 20_000) as u16;
            let client = outside_addr(v6, sampler, cport);
            let sport = [22, 23, 80, 443, 3389, 8080][sampler.range(0, 6) as usize];
            let server = campus_addr(v6, sampler, sport);
            return scan_syn(client, server, start_ts, sampler);
        }
        let cport = ephemeral(sampler);
        let client = campus_addr(v6, sampler, cport);
        let ooo = sampler.chance(config.ooo_flow_frac);
        let graceful = !sampler.chance(config.incomplete_frac);
        let proto = sampler.uniform();
        if proto < config.tls_frac {
            let server = outside_addr(v6, sampler, 443);
            let sni = domains[sampler.zipf(domains.len())].clone();
            let down = sampler.lognormal(config.tls_bytes_median, 1.6) as usize;
            let spec = TlsFlowSpec {
                client,
                server,
                sni,
                start_ts,
                bytes_up: (down / 8).min(2 << 20),
                bytes_down: down.min(8 << 20),
                client_random: pick_client_random(config, sampler),
                cipher: [0x1301, 0x1302, 0x1303, 0xc02b, 0xc02f, 0xc030][sampler.zipf(6)],
                ooo,
                graceful,
            };
            tls_flow(&spec, sampler)
        } else if proto < config.tls_frac + config.http_frac {
            let sport = if sampler.chance(0.8) { 80 } else { 8080 };
            let server = outside_addr(v6, sampler, sport);
            let host = domains[sampler.zipf(domains.len())].clone();
            let agents = [
                "Mozilla/5.0 (X11; Linux x86_64) Firefox/99.0",
                "Mozilla/5.0 (Macintosh) Safari/605.1.15",
                "curl/7.81.0",
                "python-requests/2.27",
                "Debian APT-HTTP/1.3",
            ];
            http_flow(
                client,
                server,
                &host,
                agents[sampler.zipf(agents.len())],
                1 + sampler.zipf(6),
                6_000,
                start_ts,
                sampler,
            )
        } else if proto < config.tls_frac + config.http_frac + config.ssh_frac {
            let server = outside_addr(v6, sampler, 22);
            ssh_flow(
                client,
                server,
                start_ts,
                sampler.range(500, 20_000) as usize,
                sampler,
            )
        } else {
            // Opaque TCP (unrecognized app protocol).
            let sport = 9000 + sampler.range(0, 999) as u16;
            let server = outside_addr(v6, sampler, sport);
            opaque_tcp_flow(client, server, start_ts, graceful, sampler)
        }
    } else if kind < config.tcp_frac + config.udp_frac {
        // UDP connection: mostly DNS, some opaque media.
        if sampler.chance(0.6) {
            let cport = ephemeral(sampler);
            let client = campus_addr(v6, sampler, cport);
            let resolver = if v6 {
                "[2001:4860:4860::8888]:53".parse().unwrap()
            } else {
                SocketAddr::from(([8, 8, 8, 8], 53))
            };
            let name = domains[sampler.zipf(domains.len())].clone();
            dns_exchange(
                client,
                resolver,
                name.trim_start_matches("www."),
                sampler.chance(config.dns_answered_frac),
                start_ts,
                sampler,
            )
        } else {
            let cport = ephemeral(sampler);
            let client = campus_addr(v6, sampler, cport);
            let server = outside_addr(v6, sampler, 443);
            let pkts = sampler.lognormal(30.0, 1.0) as usize + 1;
            let size = 600 + sampler.range(0, 700) as usize;
            udp_opaque_flow(client, server, pkts.min(4000), size, start_ts, sampler)
        }
    } else {
        // ICMP.
        let IpAddr::V4(c) = campus_addr(false, sampler, 0).ip() else {
            unreachable!()
        };
        let IpAddr::V4(s) = outside_addr(false, sampler, 0).ip() else {
            unreachable!()
        };
        icmp_ping(c, s, sampler.u64() as u16, start_ts)
    }
}

/// A TCP flow carrying an unrecognized binary protocol.
fn opaque_tcp_flow(
    client: SocketAddr,
    server: SocketAddr,
    start_ts: u64,
    graceful: bool,
    sampler: &mut Sampler,
) -> Vec<(Bytes, u64)> {
    let rtt = 5_000_000 + sampler.range(0, 40_000_000);
    let mut fb = FlowBuilder::new(client, server, start_ts, rtt, sampler);
    let exchanges = 1 + sampler.zipf(8);
    for _ in 0..exchanges {
        let up = sampler.range(16, 1200) as usize;
        let down = sampler.range(16, 60_000) as usize;
        // 0xF5 leading byte defeats every built-in probe.
        fb.send(true, &vec![0xF5u8; up], sampler);
        fb.send(false, &vec![0xF5u8; down], sampler);
        fb.pause(sampler.exponential(30_000_000.0) as u64);
    }
    if graceful {
        fb.finish()
    } else {
        fb.abandon()
    }
}

fn pick_client_random(config: &CampusConfig, sampler: &mut Sampler) -> [u8; 32] {
    let r = sampler.uniform();
    if r < config.broken_random_a_rate {
        BROKEN_RANDOM_A
    } else if r < config.broken_random_a_rate + config.broken_random_b_rate {
        BROKEN_RANDOM_B
    } else if r < config.broken_random_a_rate
        + config.broken_random_b_rate
        + config.zero_random_rate
    {
        [0u8; 32]
    } else {
        sampler.bytes32()
    }
}

fn ephemeral(sampler: &mut Sampler) -> u16 {
    32_768 + sampler.range(0, 28_000) as u16
}

/// An address inside the monitored campus network (171.64.0.0/14-style).
fn campus_addr(v6: bool, sampler: &mut Sampler, port: u16) -> SocketAddr {
    if v6 {
        let host = sampler.u64();
        let ip = Ipv6Addr::new(
            0x2607,
            0xf6d0,
            (host >> 48) as u16 & 0xff,
            (host >> 32) as u16,
            0,
            0,
            (host >> 16) as u16,
            host as u16,
        );
        SocketAddr::new(IpAddr::V6(ip), port)
    } else {
        let ip = Ipv4Addr::new(
            171,
            64 + sampler.range(0, 4) as u8,
            sampler.range(0, 256) as u8,
            sampler.range(1, 255) as u8,
        );
        SocketAddr::new(IpAddr::V4(ip), port)
    }
}

/// A public Internet address outside the campus.
fn outside_addr(v6: bool, sampler: &mut Sampler, port: u16) -> SocketAddr {
    if v6 {
        let host = sampler.u64();
        let ip = Ipv6Addr::new(
            0x2a00 + (sampler.range(0, 0x400) as u16),
            (host >> 48) as u16,
            (host >> 32) as u16,
            0,
            0,
            0,
            (host >> 16) as u16,
            host as u16,
        );
        SocketAddr::new(IpAddr::V6(ip), port)
    } else {
        // Avoid campus and reserved ranges.
        let a = [13u8, 23, 34, 52, 93, 104, 142, 151, 185, 198, 203, 208]
            [sampler.range(0, 12) as usize];
        let ip = Ipv4Addr::new(
            a,
            sampler.range(0, 256) as u8,
            sampler.range(0, 256) as u8,
            sampler.range(1, 255) as u8,
        );
        SocketAddr::new(IpAddr::V4(ip), port)
    }
}

/// A campus-mix traffic source (pre-materialized and sorted).
pub type CampusSource = PreloadedSource;

/// Builds a [`CampusSource`] for a configuration.
pub fn campus_source(config: &CampusConfig) -> CampusSource {
    PreloadedSource::new(generate(config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use retina_wire::{IpProtocol, ParsedPacket};
    use std::collections::HashMap;

    fn mix(seed: u64) -> Vec<(Bytes, u64)> {
        generate(&CampusConfig::small(seed))
    }

    #[test]
    fn deterministic() {
        let a = mix(42);
        let b = mix(42);
        assert_eq!(a.len(), b.len());
        for ((fa, ta), (fb, tb)) in a.iter().zip(&b) {
            assert_eq!(fa, fb);
            assert_eq!(ta, tb);
        }
        assert_ne!(mix(43).len(), 0);
    }

    #[test]
    fn all_frames_parse_and_sorted() {
        let packets = mix(1);
        assert!(packets.len() >= 20_000);
        let mut last = 0;
        for (frame, ts) in &packets {
            ParsedPacket::parse(frame).expect("campus frame parses");
            assert!(*ts >= last);
            last = *ts;
        }
    }

    /// Measures connection-level statistics the way Appendix C does and
    /// checks them against the configured targets.
    #[test]
    fn mix_matches_table2_targets() {
        let packets = generate(&CampusConfig {
            target_packets: 120_000,
            ..CampusConfig::small(7)
        });
        #[derive(Default)]
        struct Conn {
            proto: u8,
            packets: u64,
            syn_only: bool,
            synack: bool,
        }
        let mut conns: HashMap<(std::net::SocketAddr, std::net::SocketAddr, u8), Conn> =
            HashMap::new();
        let mut total_bytes = 0u64;
        for (frame, _) in &packets {
            total_bytes += frame.len() as u64;
            let pkt = ParsedPacket::parse(frame).unwrap();
            let a = std::net::SocketAddr::new(pkt.src_ip, pkt.src_port);
            let b = std::net::SocketAddr::new(pkt.dst_ip, pkt.dst_port);
            let key = if a < b {
                (a, b, u8::from(pkt.protocol))
            } else {
                (b, a, u8::from(pkt.protocol))
            };
            let entry = conns.entry(key).or_insert_with(|| Conn {
                proto: pkt.protocol.into(),
                syn_only: pkt.tcp_flags().is_some_and(|f| f.syn() && !f.ack()),
                ..Default::default()
            });
            entry.packets += 1;
            if let Some(flags) = pkt.tcp_flags() {
                if flags.syn() && flags.ack() {
                    entry.synack = true;
                }
            }
        }
        let total = conns.len() as f64;
        let tcp: Vec<_> = conns.values().filter(|c| c.proto == 6).collect();
        let udp = conns.values().filter(|c| c.proto == 17).count();
        let tcp_frac = tcp.len() as f64 / total;
        let udp_frac = udp as f64 / total;
        assert!((tcp_frac - 0.697).abs() < 0.08, "tcp fraction {tcp_frac}");
        assert!((udp_frac - 0.298).abs() < 0.08, "udp fraction {udp_frac}");
        // Single-SYN fraction of TCP.
        let single = tcp
            .iter()
            .filter(|c| c.packets == 1 && c.syn_only && !c.synack)
            .count() as f64;
        let single_frac = single / tcp.len() as f64;
        assert!(
            (single_frac - 0.65).abs() < 0.08,
            "single-SYN {single_frac}"
        );
        // Mean packet size in a plausible band around the paper's 895 B.
        let mean_size = total_bytes as f64 / packets.len() as f64;
        assert!(
            (500.0..1300.0).contains(&mean_size),
            "mean packet size {mean_size}"
        );
    }

    #[test]
    fn contains_parseable_tls_with_video_domains() {
        // Larger sample: the video domains sit mid-catalogue in the Zipf
        // ranking, so small samples can miss them.
        let packets = generate(&CampusConfig {
            target_packets: 60_000,
            ..CampusConfig::small(5)
        });
        let mut saw_netflix = false;
        let mut saw_google_video = false;
        for (frame, _) in &packets {
            if let Ok(pkt) = ParsedPacket::parse(frame) {
                if pkt.protocol == IpProtocol::Tcp && pkt.payload_len() > 0 {
                    let payload = pkt.payload(frame);
                    if payload.first() == Some(&22) {
                        let text = String::from_utf8_lossy(payload);
                        if text.contains("nflxvideo.net") {
                            saw_netflix = true;
                        }
                        if text.contains("googlevideo.com") {
                            saw_google_video = true;
                        }
                    }
                }
            }
        }
        assert!(saw_netflix, "expected some Netflix video SNIs in the mix");
        assert!(saw_google_video, "expected some YouTube video SNIs");
    }

    #[test]
    fn source_wrapper() {
        let src = campus_source(&CampusConfig::small(9));
        assert!(src.len() >= 20_000);
        assert!(src.total_bytes() > 0);
    }
}
