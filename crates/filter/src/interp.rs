//! Runtime (interpreted) filter execution.
//!
//! [`CompiledFilter`] is the product of filter compilation: the predicate
//! trie plus pre-computed dispatch tables and a regex cache. Its three
//! engines — [`PacketFilter`], [`ConnFilter`], [`SessionFilter`] — walk
//! the trie at runtime. This is the strategy Appendix B calls
//! "interpreted"; the `retina-filtergen` proc-macro generates equivalent
//! static code (the paper's default), and Figure 12's bench compares the
//! two.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use retina_nic::DeviceCaps;
use retina_nic::FlowRule;
use retina_support::rematch::Regex;
use retina_wire::ParsedPacket;

use crate::ast::{Predicate, Value};
use crate::datatypes::{FilterError, FilterResult, SessionData};
use crate::registry::{FilterLayer, ProtocolRegistry};
use crate::subfilters::{eval_packet_pred, eval_session_pred};
use crate::trie::PredicateTrie;

/// The three filter functions every execution strategy provides.
///
/// Implemented by [`CompiledFilter`] (interpreted) and by the structs the
/// `retina-filtergen` proc-macro generates (static code). The runtime is
/// generic over this trait, so switching strategies is a type parameter,
/// not a code change.
pub trait FilterFns: Send + Sync {
    /// Applies the software packet filter to a parsed packet.
    fn packet_filter(&self, pkt: &ParsedPacket) -> FilterResult;

    /// Applies the connection filter once the L7 protocol is known.
    /// `service` is the probed protocol name; `pkt_term_node` is the node
    /// the packet filter tagged the connection with.
    fn conn_filter(&self, service: Option<&str>, pkt_term_node: usize) -> FilterResult;

    /// Applies the session filter to a fully parsed session.
    /// `pkt_term_node` selects the branch set, as in Figure 3.
    fn session_filter(&self, session: &dyn SessionData, pkt_term_node: usize) -> bool;

    /// Connection-layer protocols this filter needs probed.
    fn conn_protocols(&self) -> Vec<String>;

    /// The original filter source text (used by the runtime to synthesize
    /// hardware rules and for diagnostics).
    fn source(&self) -> &str;

    /// True when the filter has connection- or session-layer predicates.
    fn needs_conn_layer(&self) -> bool;

    /// True when the filter has session-layer predicates.
    fn needs_session_layer(&self) -> bool;
}

/// A fully compiled filter: trie + dispatch tables + regex cache.
#[derive(Debug, Clone)]
pub struct CompiledFilter {
    trie: Arc<PredicateTrie>,
    regexes: Arc<HashMap<String, Regex>>,
    /// pkt frontier node → connection-layer candidate nodes.
    conn_cands: Arc<BTreeMap<usize, Vec<usize>>>,
}

impl CompiledFilter {
    /// Parses, expands, and compiles `src` against `registry`.
    pub fn build(src: &str, registry: &ProtocolRegistry) -> Result<Self, FilterError> {
        let trie = PredicateTrie::from_source(src, registry)?;
        Self::from_trie(trie)
    }

    /// Builds the dispatch tables for an existing trie.
    pub fn from_trie(trie: PredicateTrie) -> Result<Self, FilterError> {
        // Pre-compile every regex exactly once (§4.1: "all regular
        // expressions in the filter are compiled only once").
        let mut regexes = HashMap::new();
        for id in trie.reachable() {
            if let Some(Predicate::Binary {
                op: crate::ast::Op::Matches,
                value: Value::Str(pattern),
                ..
            }) = &trie.node(id).pred
            {
                if !regexes.contains_key(pattern) {
                    let re =
                        Regex::new(pattern).map_err(|e| FilterError::BadRegex(e.to_string()))?;
                    regexes.insert(pattern.clone(), re);
                }
            }
        }
        let mut conn_cands = BTreeMap::new();
        for frontier in trie.packet_frontiers() {
            conn_cands.insert(frontier, trie.conn_candidates(frontier));
        }
        Ok(CompiledFilter {
            trie: Arc::new(trie),
            regexes: Arc::new(regexes),
            conn_cands: Arc::new(conn_cands),
        })
    }

    /// The underlying predicate trie.
    pub fn trie(&self) -> &PredicateTrie {
        &self.trie
    }

    /// Synthesizes the hardware flow rules for a device with `caps`
    /// (§4.1: at least as broad as the filter, widened where the NIC
    /// cannot express a predicate).
    pub fn hw_rules(&self, caps: DeviceCaps) -> Vec<FlowRule> {
        crate::hw::synthesize(&self.trie, caps)
    }

    fn walk_packet(
        &self,
        id: usize,
        depth: usize,
        pkt: &ParsedPacket,
        best_frontier: &mut Option<(usize, usize)>,
    ) -> Option<usize> {
        let node = self.trie.node(id);
        if node.pattern_end {
            return Some(id);
        }
        if self.conn_cands.contains_key(&id) {
            // This node can hand off to the connection filter; remember the
            // deepest such node reached.
            if best_frontier.is_none_or(|(d, _)| depth > d) {
                *best_frontier = Some((depth, id));
            }
        }
        for &c in &node.children {
            let child = self.trie.node(c);
            if child.layer != FilterLayer::Packet {
                continue;
            }
            let pred = child.pred.as_ref().expect("non-root has predicate");
            if eval_packet_pred(pred, pkt) {
                if let Some(term) = self.walk_packet(c, depth + 1, pkt, best_frontier) {
                    return Some(term);
                }
            }
        }
        None
    }
}

impl FilterFns for CompiledFilter {
    fn packet_filter(&self, pkt: &ParsedPacket) -> FilterResult {
        let mut best_frontier = None;
        match self.walk_packet(0, 0, pkt, &mut best_frontier) {
            Some(terminal) => FilterResult::MatchTerminal(terminal),
            None => match best_frontier {
                Some((_, id)) => FilterResult::MatchNonTerminal(id),
                None => FilterResult::NoMatch,
            },
        }
    }

    fn conn_filter(&self, service: Option<&str>, pkt_term_node: usize) -> FilterResult {
        if self.trie.node(pkt_term_node).pattern_end {
            // The filter was already fully satisfied at the packet layer.
            return FilterResult::MatchTerminal(pkt_term_node);
        }
        let Some(cands) = self.conn_cands.get(&pkt_term_node) else {
            return FilterResult::NoMatch;
        };
        let mut non_terminal = None;
        for &c in cands {
            let node = self.trie.node(c);
            let proto = node.pred.as_ref().expect("conn node has pred").protocol();
            if Some(proto) == service {
                if node.pattern_end {
                    return FilterResult::MatchTerminal(c);
                }
                if non_terminal.is_none() {
                    non_terminal = Some(c);
                }
            }
        }
        match non_terminal {
            Some(c) => FilterResult::MatchNonTerminal(c),
            None => FilterResult::NoMatch,
        }
    }

    fn session_filter(&self, session: &dyn SessionData, pkt_term_node: usize) -> bool {
        if self.trie.node(pkt_term_node).pattern_end {
            return true;
        }
        let Some(cands) = self.conn_cands.get(&pkt_term_node) else {
            return false;
        };
        for &c in cands {
            let node = self.trie.node(c);
            let proto = node.pred.as_ref().expect("conn node has pred").protocol();
            if proto != session.protocol() {
                continue;
            }
            if node.pattern_end {
                // Connection-terminal pattern: the session filter defaults
                // to a match (Figure 4a).
                return true;
            }
            if self.walk_session(c, session) {
                return true;
            }
        }
        false
    }

    fn conn_protocols(&self) -> Vec<String> {
        self.trie.conn_protocols()
    }

    fn source(&self) -> &str {
        self.trie.source()
    }

    fn needs_conn_layer(&self) -> bool {
        self.trie.needs_conn_layer()
    }

    fn needs_session_layer(&self) -> bool {
        self.trie.needs_session_layer()
    }
}

impl CompiledFilter {
    fn walk_session(&self, id: usize, session: &dyn SessionData) -> bool {
        for &c in &self.trie.node(id).children {
            let child = self.trie.node(c);
            if child.layer != FilterLayer::Session {
                continue;
            }
            let pred = child.pred.as_ref().expect("session node has pred");
            if eval_session_pred(pred, session, &self.regexes)
                && (child.pattern_end || self.walk_session(c, session))
            {
                return true;
            }
        }
        false
    }
}

/// Standalone packet filter handle (borrowing a [`CompiledFilter`]); a
/// convenience for code that only needs one stage.
pub type PacketFilter = CompiledFilter;
/// Standalone connection filter handle.
pub type ConnFilter = CompiledFilter;
/// Standalone session filter handle.
pub type SessionFilter = CompiledFilter;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatypes::FieldValue;
    use retina_wire::build::{build_tcp, build_udp, TcpSpec, UdpSpec};
    use retina_wire::TcpFlags;

    fn compile(src: &str) -> CompiledFilter {
        CompiledFilter::build(src, &ProtocolRegistry::default()).unwrap()
    }

    fn tcp_pkt(src: &str, dst: &str) -> ParsedPacket {
        let frame = build_tcp(&TcpSpec {
            src: src.parse().unwrap(),
            dst: dst.parse().unwrap(),
            seq: 1,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 64,
            ttl: 64,
            payload: b"",
        });
        ParsedPacket::parse(&frame).unwrap()
    }

    fn udp_pkt(src: &str, dst: &str) -> ParsedPacket {
        let frame = build_udp(&UdpSpec {
            src: src.parse().unwrap(),
            dst: dst.parse().unwrap(),
            ttl: 64,
            payload: b"x",
        });
        ParsedPacket::parse(&frame).unwrap()
    }

    struct Tls(&'static str);
    impl SessionData for Tls {
        fn protocol(&self) -> &str {
            "tls"
        }
        fn field(&self, name: &str) -> Option<FieldValue<'_>> {
            (name == "sni").then_some(FieldValue::Str(self.0))
        }
    }

    struct Http;
    impl SessionData for Http {
        fn protocol(&self) -> &str {
            "http"
        }
        fn field(&self, _: &str) -> Option<FieldValue<'_>> {
            None
        }
    }

    #[test]
    fn packet_terminal_match() {
        let f = compile("tcp.port = 443");
        assert!(f
            .packet_filter(&tcp_pkt("10.0.0.1:50000", "1.1.1.1:443"))
            .is_terminal());
        assert_eq!(
            f.packet_filter(&tcp_pkt("10.0.0.1:50000", "1.1.1.1:80")),
            FilterResult::NoMatch
        );
        assert_eq!(
            f.packet_filter(&udp_pkt("10.0.0.1:443", "1.1.1.1:443")),
            FilterResult::NoMatch
        );
    }

    #[test]
    fn figure3_end_to_end() {
        let f = compile("(ipv4 and tcp.port >= 100 and tls.sni ~ 'netflix') or http");

        // TCP packet, port >= 100: non-terminal; both TLS and HTTP viable.
        let pkt = tcp_pkt("10.0.0.1:50000", "1.1.1.1:443");
        let r = f.packet_filter(&pkt);
        let FilterResult::MatchNonTerminal(node) = r else {
            panic!("expected non-terminal, got {r:?}");
        };

        // TLS connection on that node: non-terminal (session pred pending).
        let cr = f.conn_filter(Some("tls"), node);
        assert!(matches!(cr, FilterResult::MatchNonTerminal(_)), "{cr:?}");
        // HTTP connection: terminal (the `http` disjunct).
        assert!(f.conn_filter(Some("http"), node).is_terminal());
        // SSH connection: no match.
        assert_eq!(f.conn_filter(Some("ssh"), node), FilterResult::NoMatch);

        // Session filter: netflix SNI matches, other SNI does not.
        assert!(f.session_filter(&Tls("video.netflix.com"), node));
        assert!(!f.session_filter(&Tls("example.com"), node));
        // HTTP session defaults to match (conn-terminal pattern).
        assert!(f.session_filter(&Http, node));

        // TCP packet with both ports < 100 (e.g. 80 -> 90): the tls
        // pattern is out, but http is still viable through the tcp node.
        let pkt_low = tcp_pkt("10.0.0.1:80", "1.1.1.1:90");
        let r = f.packet_filter(&pkt_low);
        let FilterResult::MatchNonTerminal(node_low) = r else {
            panic!("expected non-terminal, got {r:?}");
        };
        assert_ne!(node, node_low);
        assert!(f.conn_filter(Some("http"), node_low).is_terminal());
        assert_eq!(f.conn_filter(Some("tls"), node_low), FilterResult::NoMatch);
        assert!(!f.session_filter(&Tls("video.netflix.com"), node_low));

        // IPv6 TCP: only the http disjunct applies.
        let pkt6 = tcp_pkt("[2001:db8::1]:50000", "[2001:db8::2]:443");
        let r6 = f.packet_filter(&pkt6);
        assert!(matches!(r6, FilterResult::MatchNonTerminal(_)));
        assert!(f
            .conn_filter(Some("http"), r6.node().unwrap())
            .is_terminal());
        assert_eq!(
            f.conn_filter(Some("tls"), r6.node().unwrap()),
            FilterResult::NoMatch
        );

        // UDP: nothing.
        assert_eq!(
            f.packet_filter(&udp_pkt("1.1.1.1:1", "2.2.2.2:2")),
            FilterResult::NoMatch
        );
    }

    #[test]
    fn match_all_filter() {
        let f = compile("");
        assert_eq!(
            f.packet_filter(&tcp_pkt("1.1.1.1:1", "2.2.2.2:2")),
            FilterResult::MatchTerminal(0)
        );
        assert!(f.conn_filter(Some("tls"), 0).is_terminal());
        assert!(f.conn_filter(None, 0).is_terminal());
        assert!(f.session_filter(&Http, 0));
        assert!(!f.needs_conn_layer());
    }

    #[test]
    fn conn_only_filter() {
        let f = compile("tls");
        let pkt = tcp_pkt("10.0.0.1:50000", "1.1.1.1:443");
        let r = f.packet_filter(&pkt);
        let FilterResult::MatchNonTerminal(node) = r else {
            panic!("{r:?}")
        };
        assert!(f.conn_filter(Some("tls"), node).is_terminal());
        assert_eq!(f.conn_filter(Some("http"), node), FilterResult::NoMatch);
        assert_eq!(f.conn_filter(None, node), FilterResult::NoMatch);
        assert!(f.needs_conn_layer());
        assert!(!f.needs_session_layer());
        assert_eq!(f.conn_protocols(), vec!["tls".to_string()]);
    }

    #[test]
    fn session_chain_requires_all_predicates() {
        struct Session {
            sni: &'static str,
            version: u64,
        }
        impl SessionData for Session {
            fn protocol(&self) -> &str {
                "tls"
            }
            fn field(&self, name: &str) -> Option<FieldValue<'_>> {
                match name {
                    "sni" => Some(FieldValue::Str(self.sni)),
                    "version" => Some(FieldValue::Int(self.version)),
                    _ => None,
                }
            }
        }
        let f = compile("tls.sni ~ 'netflix' and tls.version = 771");
        let pkt = tcp_pkt("10.0.0.1:50000", "1.1.1.1:443");
        let node = f.packet_filter(&pkt).node().unwrap();
        assert!(f.session_filter(
            &Session {
                sni: "a.netflix.com",
                version: 771
            },
            node
        ));
        assert!(!f.session_filter(
            &Session {
                sni: "a.netflix.com",
                version: 770
            },
            node
        ));
        assert!(!f.session_filter(
            &Session {
                sni: "example.com",
                version: 771
            },
            node
        ));
    }

    #[test]
    fn disjoint_session_patterns() {
        let f = compile("tls.sni ~ 'netflix' or tls.sni ~ 'googlevideo'");
        let pkt = tcp_pkt("10.0.0.1:50000", "1.1.1.1:443");
        let node = f.packet_filter(&pkt).node().unwrap();
        assert!(f.session_filter(&Tls("x.netflix.com"), node));
        assert!(f.session_filter(&Tls("r1.googlevideo.com"), node));
        assert!(!f.session_filter(&Tls("example.org"), node));
    }

    #[test]
    fn ip_version_restriction() {
        let f = compile("ipv4 and tls");
        let pkt4 = tcp_pkt("10.0.0.1:5000", "1.1.1.1:443");
        let pkt6 = tcp_pkt("[2001:db8::1]:5000", "[2001:db8::2]:443");
        assert!(f.packet_filter(&pkt4).is_match());
        assert_eq!(f.packet_filter(&pkt6), FilterResult::NoMatch);
    }

    #[test]
    fn terminal_preferred_over_frontier() {
        // Port 80 satisfies the terminal disjunct even though the tls
        // pattern also partially matches.
        let f = compile("tcp.port = 80 or tls.sni ~ 'x'");
        let pkt = tcp_pkt("10.0.0.1:50000", "1.1.1.1:80");
        assert!(f.packet_filter(&pkt).is_terminal());
        // Port 443 leaves only the tls pattern.
        let pkt = tcp_pkt("10.0.0.1:50000", "1.1.1.1:443");
        assert!(matches!(
            f.packet_filter(&pkt),
            FilterResult::MatchNonTerminal(_)
        ));
    }

    #[test]
    fn bad_regex_rejected_at_build() {
        assert!(matches!(
            CompiledFilter::build("tls.sni ~ '[bad'", &ProtocolRegistry::default()),
            Err(FilterError::BadRegex(_))
        ));
    }

    #[test]
    fn dns_over_udp_and_tcp() {
        let f = compile("dns");
        for pkt in [
            udp_pkt("10.0.0.1:5353", "8.8.8.8:53"),
            tcp_pkt("10.0.0.1:5353", "8.8.8.8:53"),
        ] {
            let r = f.packet_filter(&pkt);
            let node = r.node().expect("should match");
            assert!(f.conn_filter(Some("dns"), node).is_terminal());
        }
    }
}
