//! Bench regression gate: compares fresh CI bench results against the
//! committed baseline.
//!
//! ```text
//! bench_gate <baseline.json> <current.json>
//! ```
//!
//! Every gated (non-`_`-prefixed) metric in the baseline must be
//! present in the current results and within tolerance (±15% by
//! default, or the section's `"tolerance"` value). Record-only `_`
//! metrics are printed for trend-watching but never fail the gate.
//! Exits 0 on pass, 1 on any regression, 2 on usage/parse errors.

use std::process::exit;

use retina_bench::ci;
use retina_core::telemetry::json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, current_path] = args.as_slice() else {
        eprintln!("usage: bench_gate <baseline.json> <current.json>");
        exit(2);
    };
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench gate: cannot read baseline {baseline_path}: {e}");
            exit(2);
        }
    };
    let current = match std::fs::read_to_string(current_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench gate: cannot read current results {current_path}: {e}");
            eprintln!("(run the CI bench binaries with --json-out {current_path} first)");
            exit(2);
        }
    };

    // Show record-only metrics for trend-watching before gating.
    if let Ok(json::Json::Obj(sections)) = json::parse(&current) {
        for (section, metrics) in &sections {
            if let json::Json::Obj(metrics) = metrics {
                for (name, value) in metrics {
                    if name.starts_with('_') {
                        if let Some(v) = value.as_num() {
                            println!("  (record) {section}.{name} = {v}");
                        }
                    }
                }
            }
        }
    }

    match ci::compare(&baseline, &current) {
        Ok(regressions) if regressions.is_empty() => {
            println!("bench gate OK: all gated metrics within tolerance of {baseline_path}");
        }
        Ok(regressions) => {
            eprintln!("bench gate FAILED: {} regression(s)", regressions.len());
            for r in &regressions {
                eprintln!("  {r}");
            }
            exit(1);
        }
        Err(e) => {
            eprintln!("bench gate: {e}");
            exit(2);
        }
    }
}
