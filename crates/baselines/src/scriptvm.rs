//! A miniature bytecode interpreter modelling the per-event cost of an
//! IDS script engine (Zeek's script interpreter).
//!
//! Zeek dispatches protocol events into interpreted scripts; the
//! interpreter's dispatch-and-execute loop dominates its per-packet cost
//! on high rates. This VM executes a fixed "event handler" program per
//! event — table lookups, arithmetic, string-ish operations — with real
//! data dependencies so the optimizer cannot remove it, and with a cost
//! profile (tens of ops + a hash probe per event) resembling a small
//! Zeek script.

// Narrowing casts in this file are intentional: synthetic traffic narrows seeded PRNG draws into ports, lengths, and header bytes.
#![allow(clippy::cast_possible_truncation)]

/// Bytecode operations.
#[derive(Debug, Clone, Copy)]
pub enum Op {
    /// Push an immediate.
    Push(u64),
    /// Add top two.
    Add,
    /// Multiply top two.
    Mul,
    /// Xor top two.
    Xor,
    /// Rotate the top value.
    Rot(u32),
    /// Duplicate the top.
    Dup,
    /// Hash-table probe with the top value (simulated associative
    /// lookup into the VM's state table).
    Probe,
    /// Pop into the accumulator.
    PopAcc,
}

/// The interpreter with its persistent state table.
pub struct ScriptVm {
    program: Vec<Op>,
    state: Vec<u64>,
    acc: u64,
}

impl ScriptVm {
    /// Builds the canonical "connection event handler" program.
    pub fn event_handler() -> Self {
        // ~200 ops with mixed arithmetic and table probes, modelling a
        // realistic per-event script body (field accesses, table
        // updates, conditionals).
        let mut program = Vec::new();
        for i in 0..16u64 {
            program.push(Op::Push(0x9e3779b97f4a7c15 ^ i));
            program.push(Op::Xor);
            program.push(Op::Rot(13));
            program.push(Op::Push(0xff51afd7ed558ccd));
            program.push(Op::Mul);
            program.push(Op::Dup);
            program.push(Op::Probe);
            program.push(Op::Add);
            program.push(Op::Rot(31));
            program.push(Op::Push(i + 1));
            program.push(Op::Add);
        }
        program.push(Op::PopAcc);
        ScriptVm {
            program,
            state: vec![0u64; 4096],
            acc: 0,
        }
    }

    /// Runs the handler for one event carrying `arg` (e.g. a packet
    /// hash). Returns the accumulator so callers keep a data dependency.
    pub fn run_event(&mut self, arg: u64) -> u64 {
        let mut stack: [u64; 16] = [0; 16];
        let mut sp = 0usize;
        stack[0] = arg ^ self.acc;
        sp += 1;
        for op in &self.program {
            match *op {
                Op::Push(v) => {
                    if sp < stack.len() {
                        stack[sp] = v;
                        sp += 1;
                    }
                }
                Op::Add => {
                    if sp >= 2 {
                        stack[sp - 2] = stack[sp - 2].wrapping_add(stack[sp - 1]);
                        sp -= 1;
                    }
                }
                Op::Mul => {
                    if sp >= 2 {
                        stack[sp - 2] = stack[sp - 2].wrapping_mul(stack[sp - 1]);
                        sp -= 1;
                    }
                }
                Op::Xor => {
                    if sp >= 2 {
                        stack[sp - 2] ^= stack[sp - 1];
                        sp -= 1;
                    }
                }
                Op::Rot(r) => {
                    if sp >= 1 {
                        stack[sp - 1] = stack[sp - 1].rotate_left(r);
                    }
                }
                Op::Dup => {
                    if sp >= 1 && sp < stack.len() {
                        stack[sp] = stack[sp - 1];
                        sp += 1;
                    }
                }
                Op::Probe => {
                    if sp >= 1 {
                        let idx = (stack[sp - 1] as usize) & (self.state.len() - 1);
                        let v = self.state[idx];
                        self.state[idx] = v.wrapping_add(stack[sp - 1] | 1);
                        stack[sp - 1] ^= v;
                    }
                }
                Op::PopAcc => {
                    if sp >= 1 {
                        sp -= 1;
                        self.acc ^= stack[sp];
                    }
                }
            }
        }
        self.acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_is_deterministic_and_stateful() {
        let mut a = ScriptVm::event_handler();
        let mut b = ScriptVm::event_handler();
        let ra: Vec<u64> = (0..50).map(|i| a.run_event(i)).collect();
        let rb: Vec<u64> = (0..50).map(|i| b.run_event(i)).collect();
        assert_eq!(ra, rb);
        // State accumulates: same arg twice gives different results.
        let x = a.run_event(42);
        let y = a.run_event(42);
        assert_ne!(x, y);
    }

    #[test]
    fn vm_output_depends_on_arg() {
        let mut vm = ScriptVm::event_handler();
        let x = vm.run_event(1);
        let mut vm2 = ScriptVm::event_handler();
        let y = vm2.run_event(2);
        assert_ne!(x, y);
    }
}
