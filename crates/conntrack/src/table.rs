//! The per-core connection table with timer-wheel expiration.
//!
//! Each worker core owns one `ConnTable`; symmetric RSS guarantees it
//! only ever sees its own connections, so no synchronization is needed.
//! Timeouts follow §5.2's two-level scheme: a short *establishment*
//! timeout expires unanswered SYNs quickly (65% of connections!), and a
//! longer *inactivity* timeout reclaims established-but-idle connections.
//! Figure 8 reproduces the memory effect of these choices.

use std::collections::HashMap;

use crate::timerwheel::TimerWheel;
use crate::tuple::{ConnKey, FiveTuple};

/// Timeout configuration (nanoseconds). `None` disables a timeout — the
/// configurations compared in Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeoutConfig {
    /// Time allowed from first packet to establishment (default 5 s).
    pub establish_ns: Option<u64>,
    /// Maximum idle time for established connections (default 5 min).
    pub inactivity_ns: Option<u64>,
}

impl Default for TimeoutConfig {
    fn default() -> Self {
        TimeoutConfig {
            establish_ns: Some(5_000_000_000),
            inactivity_ns: Some(300_000_000_000),
        }
    }
}

impl TimeoutConfig {
    /// The paper's default: 5 s establish + 5 min inactivity.
    pub fn retina_default() -> Self {
        Self::default()
    }

    /// Single 5-minute inactivity timeout (Figure 8's middle line).
    pub fn inactivity_only() -> Self {
        TimeoutConfig {
            establish_ns: None,
            inactivity_ns: Some(300_000_000_000),
        }
    }

    /// No timeouts at all (Figure 8's out-of-memory line).
    pub fn none() -> Self {
        TimeoutConfig {
            establish_ns: None,
            inactivity_ns: None,
        }
    }
}

/// A tracked connection: identity, liveness stamps, and caller state.
#[derive(Debug)]
pub struct ConnEntry<V> {
    /// Oriented five-tuple (originator = first packet seen).
    pub tuple: FiveTuple,
    /// First-packet timestamp.
    pub created_ns: u64,
    /// Most recent packet timestamp. The table updates this on
    /// packet processing; the wheel is *not* touched per packet.
    pub last_seen_ns: u64,
    /// Whether the connection is established (drives which timeout
    /// applies).
    pub established: bool,
    /// Caller-owned per-connection state.
    pub value: V,
}

/// Per-core connection hash table with lazy timer-wheel expiration.
#[derive(Debug)]
pub struct ConnTable<V> {
    map: HashMap<ConnKey, ConnEntry<V>>,
    wheel: TimerWheel,
    config: TimeoutConfig,
    scratch: Vec<(ConnKey, u64)>,
}

impl<V> ConnTable<V> {
    /// Creates a table with the given timeout configuration.
    ///
    /// The wheel tick is 100 ms with 4096 slots (409 s horizon) — enough
    /// for the default 5-minute inactivity timeout to schedule without
    /// clamping in the common case.
    pub fn new(config: TimeoutConfig) -> Self {
        ConnTable {
            map: HashMap::new(),
            wheel: TimerWheel::new(100_000_000, 4096),
            config,
            scratch: Vec::new(),
        }
    }

    /// Number of tracked connections.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns true when no connections are tracked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The active timeout configuration.
    pub fn config(&self) -> TimeoutConfig {
        self.config
    }

    /// Looks up a connection.
    pub fn get_mut(&mut self, key: &ConnKey) -> Option<&mut ConnEntry<V>> {
        self.map.get_mut(key)
    }

    /// Returns the entry for `key`, inserting a new one (built by `init`)
    /// on first sight. New connections are scheduled on the wheel.
    pub fn get_or_insert_with(
        &mut self,
        key: ConnKey,
        now_ns: u64,
        init: impl FnOnce() -> (FiveTuple, V),
    ) -> &mut ConnEntry<V> {
        let wheel = &mut self.wheel;
        let config = &self.config;
        self.map.entry(key).or_insert_with(|| {
            let (tuple, value) = init();
            if let Some(deadline) = initial_deadline(config, now_ns) {
                wheel.schedule(key, deadline);
            }
            ConnEntry {
                tuple,
                created_ns: now_ns,
                last_seen_ns: now_ns,
                established: false,
                value,
            }
        })
    }

    /// Removes a connection (e.g. on natural termination or an early
    /// filter discard). Any wheel entry becomes a harmless tombstone.
    pub fn remove(&mut self, key: &ConnKey) -> Option<ConnEntry<V>> {
        self.map.remove(key)
    }

    /// Advances time, expiring connections whose applicable timeout has
    /// elapsed. `on_expire` receives each expired entry.
    pub fn advance(&mut self, now_ns: u64, mut on_expire: impl FnMut(ConnKey, ConnEntry<V>)) {
        let mut candidates = std::mem::take(&mut self.scratch);
        candidates.clear();
        self.wheel.advance(now_ns, &mut candidates);
        for (key, _) in candidates.drain(..) {
            let Some(entry) = self.map.get(&key) else {
                continue; // already removed: tombstone
            };
            match actual_deadline(&self.config, entry, now_ns) {
                Some(deadline) if deadline <= now_ns => {
                    let entry = self.map.remove(&key).expect("checked above");
                    on_expire(key, entry);
                }
                Some(deadline) => self.wheel.schedule(key, deadline),
                None => {
                    // No applicable timeout (config disables it): do not
                    // reschedule; the connection lives until termination.
                }
            }
        }
        self.scratch = candidates;
    }

    /// Iterates over all tracked entries (diagnostics / drain at exit).
    pub fn iter(&self) -> impl Iterator<Item = (&ConnKey, &ConnEntry<V>)> {
        self.map.iter()
    }

    /// Drains every tracked connection (used at shutdown to flush
    /// partial sessions).
    pub fn drain_all(&mut self) -> Vec<(ConnKey, ConnEntry<V>)> {
        self.map.drain().collect()
    }
}

fn initial_deadline(config: &TimeoutConfig, now_ns: u64) -> Option<u64> {
    match (config.establish_ns, config.inactivity_ns) {
        (Some(e), _) => Some(now_ns + e),
        (None, Some(i)) => Some(now_ns + i),
        (None, None) => None,
    }
}

fn actual_deadline<V>(config: &TimeoutConfig, entry: &ConnEntry<V>, _now: u64) -> Option<u64> {
    if entry.established {
        config.inactivity_ns.map(|i| entry.last_seen_ns + i)
    } else {
        match (config.establish_ns, config.inactivity_ns) {
            (Some(e), _) => Some(entry.created_ns + e),
            (None, Some(i)) => Some(entry.last_seen_ns + i),
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::SocketAddr;

    const SEC: u64 = 1_000_000_000;

    fn key_tuple(n: u16) -> (ConnKey, FiveTuple) {
        let orig: SocketAddr = format!("10.0.0.1:{n}").parse().unwrap();
        let resp: SocketAddr = "1.1.1.1:443".parse().unwrap();
        let tuple = FiveTuple {
            orig,
            resp,
            proto: 6,
        };
        (tuple.key(), tuple)
    }

    fn insert(table: &mut ConnTable<u32>, n: u16, now: u64) -> ConnKey {
        let (key, tuple) = key_tuple(n);
        table.get_or_insert_with(key, now, || (tuple, 0));
        key
    }

    #[test]
    fn unanswered_syn_expires_at_establish_timeout() {
        let mut table = ConnTable::new(TimeoutConfig::retina_default());
        let key = insert(&mut table, 1, 0);
        let mut expired = Vec::new();
        table.advance(4 * SEC, |k, _| expired.push(k));
        assert!(expired.is_empty());
        table.advance(6 * SEC, |k, _| expired.push(k));
        assert_eq!(expired, vec![key]);
        assert!(table.is_empty());
    }

    #[test]
    fn established_connection_uses_inactivity_timeout() {
        let mut table = ConnTable::new(TimeoutConfig::retina_default());
        let key = insert(&mut table, 1, 0);
        {
            let entry = table.get_mut(&key).unwrap();
            entry.established = true;
            entry.last_seen_ns = SEC;
        }
        let mut expired = Vec::new();
        // Survives the establish horizon.
        table.advance(10 * SEC, |k, _| expired.push(k));
        assert!(
            expired.is_empty(),
            "established conn must not expire at 10s"
        );
        assert_eq!(table.len(), 1);
        // Expires after 5 minutes of inactivity.
        table.advance(302 * SEC, |k, _| expired.push(k));
        assert_eq!(expired, vec![key]);
    }

    #[test]
    fn activity_defers_expiration() {
        let mut table = ConnTable::new(TimeoutConfig::retina_default());
        let key = insert(&mut table, 1, 0);
        {
            let e = table.get_mut(&key).unwrap();
            e.established = true;
        }
        let mut expired = Vec::new();
        // Touch the connection every 100 s; it must survive well past the
        // 300 s inactivity timeout measured from creation.
        for t in 1..8u64 {
            table.advance(t * 100 * SEC, |k, _| expired.push(k));
            if let Some(e) = table.get_mut(&key) {
                e.last_seen_ns = t * 100 * SEC;
            }
        }
        assert!(expired.is_empty(), "active conn expired: {expired:?}");
        // Now go idle.
        table.advance(1200 * SEC, |k, _| expired.push(k));
        assert_eq!(expired, vec![key]);
    }

    #[test]
    fn removed_connection_is_tombstone() {
        let mut table = ConnTable::new(TimeoutConfig::retina_default());
        let key = insert(&mut table, 1, 0);
        table.remove(&key).unwrap();
        let mut expired = Vec::new();
        table.advance(10 * SEC, |k, _| expired.push(k));
        assert!(expired.is_empty());
    }

    #[test]
    fn no_timeouts_never_expires() {
        let mut table = ConnTable::new(TimeoutConfig::none());
        insert(&mut table, 1, 0);
        let mut expired = Vec::new();
        table.advance(10_000 * SEC, |k, _| expired.push(k));
        assert!(expired.is_empty());
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn inactivity_only_keeps_syns_longer() {
        // The Figure 8 comparison: without the establish timeout, a
        // single-SYN connection lives the full 5 minutes.
        let mut default_table = ConnTable::new(TimeoutConfig::retina_default());
        let mut inact_table = ConnTable::new(TimeoutConfig::inactivity_only());
        insert(&mut default_table, 1, 0);
        insert(&mut inact_table, 1, 0);
        let mut d_expired = 0;
        let mut i_expired = 0;
        default_table.advance(60 * SEC, |_, _| d_expired += 1);
        inact_table.advance(60 * SEC, |_, _| i_expired += 1);
        assert_eq!(d_expired, 1, "default expires the SYN at 5s");
        assert_eq!(i_expired, 0, "inactivity-only keeps it");
        inact_table.advance(301 * SEC, |_, _| i_expired += 1);
        assert_eq!(i_expired, 1);
    }

    #[test]
    fn many_connections_scale() {
        let mut table = ConnTable::new(TimeoutConfig::retina_default());
        for n in 0..10_000u16 {
            insert(&mut table, n, (n as u64) * 1_000); // staggered µs
        }
        assert_eq!(table.len(), 10_000);
        let mut expired = 0;
        table.advance(6 * SEC, |_, _| expired += 1);
        assert_eq!(expired, 10_000);
        assert!(table.is_empty());
    }

    #[test]
    fn get_or_insert_is_idempotent() {
        let mut table = ConnTable::new(TimeoutConfig::retina_default());
        let (key, tuple) = key_tuple(1);
        table.get_or_insert_with(key, 0, || (tuple, 41));
        let e = table.get_or_insert_with(key, 99, || (tuple, 42));
        assert_eq!(e.value, 41, "existing entry preserved");
        assert_eq!(e.created_ns, 0);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn drain_all() {
        let mut table = ConnTable::new(TimeoutConfig::retina_default());
        insert(&mut table, 1, 0);
        insert(&mut table, 2, 0);
        let drained = table.drain_all();
        assert_eq!(drained.len(), 2);
        assert!(table.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use retina_support::proptest::prelude::*;
    use std::net::SocketAddr;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random interleavings of inserts, touches, removals, and time
        /// advances never lose a connection (expired + removed + resident
        /// always equals inserted) and never expire a recently-active
        /// established connection.
        #[test]
        fn conservation_and_no_premature_expiry(
            ops in collection::vec((0u8..4, 0u16..64, 0u64..200), 1..400)
        ) {
            const SEC: u64 = 1_000_000_000;
            let mut table: ConnTable<u8> = ConnTable::new(TimeoutConfig::retina_default());
            let mut now = 0u64;
            let mut inserted = std::collections::HashSet::new();
            let mut removed = 0usize;
            let mut expired = 0usize;
            for (op, conn, dt) in ops {
                now += dt * SEC / 10; // advance up to 20s per step
                let orig: SocketAddr = format!("10.0.0.1:{}", 1000 + conn).parse().unwrap();
                let resp: SocketAddr = "1.1.1.1:443".parse().unwrap();
                let tuple = FiveTuple { orig, resp, proto: 6 };
                let key = tuple.key();
                match op {
                    0 => {
                        // Insert (or refresh existing).
                        table.get_or_insert_with(key, now, || (tuple, 0));
                        inserted.insert(key);
                    }
                    1 => {
                        // Activity on an established connection.
                        if let Some(e) = table.get_mut(&key) {
                            e.established = true;
                            e.last_seen_ns = now;
                        }
                    }
                    2 => {
                        if table.remove(&key).is_some() {
                            removed += 1;
                            inserted.remove(&key);
                        }
                    }
                    _ => {
                        let mut this_round = Vec::new();
                        table.advance(now, |k, e| this_round.push((k, e)));
                        for (k, e) in this_round {
                            expired += 1;
                            inserted.remove(&k);
                            // No premature expiry: established conns must
                            // have been idle past the inactivity timeout.
                            if e.established {
                                prop_assert!(
                                    now >= e.last_seen_ns + 300 * SEC,
                                    "premature expiry at {now}: last_seen {}",
                                    e.last_seen_ns
                                );
                            } else {
                                prop_assert!(now >= e.created_ns + 5 * SEC);
                            }
                        }
                    }
                }
            }
            prop_assert_eq!(table.len(), inserted.len());
            let _ = (removed, expired);
        }
    }
}
