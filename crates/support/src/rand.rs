//! Seeded pseudo-random number generation.
//!
//! A SplitMix64-seeded xoshiro256++ generator behind `SeedableRng`/
//! `RngExt`-shaped traits, so callers read like the `rand` crate while
//! staying fully deterministic and dependency-free. Determinism is
//! load-bearing: every workload generator and the property-test harness
//! derive their streams from explicit seeds so runs are reproducible
//! bit-for-bit (the paper's evaluation methodology demands replayable
//! inputs).

// Narrowing casts in this file are intentional: PRNG/fuzzing utilities extract lanes and bytes from u64 state.
#![allow(clippy::cast_possible_truncation)]

/// Mixes a 64-bit seed into a well-distributed stream (SplitMix64).
/// Used for seeding and for cheap stateless hashing of test names.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers layered over a raw 64-bit generator.
pub trait RngExt {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T` (see [`Random`]).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Uniform value in `[range.start, range.end)`.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn random_range<T: RandomRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::random_range(self, range)
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// xoshiro256++ — the small, fast generator `rand` uses for `SmallRng`.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }
}

impl SmallRng {
    #[inline]
    fn step(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl RngExt for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

impl<R: RngExt + ?Sized> RngExt for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from raw bits.
pub trait Random {
    /// Samples a uniform value.
    fn random<R: RngExt + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            #[inline]
            fn random<R: RngExt + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Random for bool {
    fn random<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn random<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` using the top 24 bits.
    fn random<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types supporting uniform range sampling.
pub trait RandomRange: Sized {
    /// Samples uniformly from `[range.start, range.end)`.
    fn random_range<R: RngExt + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_random_range {
    ($($t:ty),*) => {$(
        impl RandomRange for $t {
            fn random_range<R: RngExt + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                // Multiply-shift bounded sampling (Lemire); span is a u64
                // so the bias is at most 2^-64 per draw — irrelevant for
                // workload synthesis.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start.wrapping_add(hi as $t)
            }
        }
    )*};
}
impl_random_range!(u8, u16, u32, u64, usize);

/// Namespaced re-exports matching `rand::rngs`.
pub mod rngs {
    pub use super::SmallRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = rng.random_range(10u64..14);
            assert!((10..14).contains(&v));
            seen_lo |= v == 10;
            seen_hi |= v == 13;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn fill_covers_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert_ne!(buf, [0u8; 13]);
        let mut buf32 = [0u8; 32];
        rng.fill(&mut buf32);
        assert_ne!(&buf32[24..], [0u8; 8]);
    }
}
