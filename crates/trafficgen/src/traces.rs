//! Stratosphere-like offline traces for the Appendix B study (Figure 12).
//!
//! The paper measures compiled-vs-interpreted filter execution on four
//! public "CTU-Normal" traces of benign traffic. Those captures are not
//! redistributable here, so we synthesize four traces with *different
//! protocol compositions* (the property that makes the speedup vary
//! between traces in Figure 12): each trace has its own mix of TLS
//! (including Netflix domains), HTTP, DNS, and scan noise.

use retina_support::bytes::Bytes;

use crate::campus::{generate, CampusConfig};

/// The four trace names used in Figure 12.
pub const TRACE_NAMES: [&str; 4] = ["norm-7", "norm-12", "norm-20", "norm-30"];

/// Generates one of the named traces (~`target_packets` packets).
pub fn stratosphere_trace(name: &str, target_packets: usize) -> Vec<(Bytes, u64)> {
    let config = match name {
        // TLS-heavy home traffic.
        "norm-7" => CampusConfig {
            seed: 0x5707,
            tls_frac: 0.75,
            http_frac: 0.12,
            ssh_frac: 0.01,
            single_syn_frac: 0.25,
            udp_frac: 0.20,
            tcp_frac: 0.78,
            ..CampusConfig::default()
        },
        // HTTP + DNS heavy.
        "norm-12" => CampusConfig {
            seed: 0x5712,
            tls_frac: 0.35,
            http_frac: 0.45,
            ssh_frac: 0.02,
            single_syn_frac: 0.30,
            udp_frac: 0.35,
            tcp_frac: 0.63,
            ..CampusConfig::default()
        },
        // Balanced with heavy scan noise.
        "norm-20" => CampusConfig {
            seed: 0x5720,
            tls_frac: 0.55,
            http_frac: 0.25,
            ssh_frac: 0.05,
            single_syn_frac: 0.70,
            ..CampusConfig::default()
        },
        // UDP/DNS dominated.
        "norm-30" => CampusConfig {
            seed: 0x5730,
            tls_frac: 0.50,
            http_frac: 0.20,
            ssh_frac: 0.03,
            udp_frac: 0.55,
            tcp_frac: 0.43,
            single_syn_frac: 0.40,
            ..CampusConfig::default()
        },
        other => panic!("unknown trace '{other}'"),
    };
    generate(&CampusConfig {
        target_packets,
        duration_secs: 30.0,
        ..config
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_differ_by_name() {
        let a = stratosphere_trace("norm-7", 5_000);
        let b = stratosphere_trace("norm-12", 5_000);
        assert!(a.len() >= 5_000 && b.len() >= 5_000);
        // Different seeds/mixes → different streams.
        assert_ne!(a[0].0, b[0].0);
    }

    #[test]
    #[should_panic(expected = "unknown trace")]
    fn unknown_trace_panics() {
        let _ = stratosphere_trace("norm-99", 10);
    }
}
