//! The `ConnParsable` analogue: traits and types through which the
//! framework drives application-layer parsing.

use retina_filter::{FieldValue, SessionData};

use crate::dns::DnsMessage;
use crate::http::HttpTransaction;
use crate::ssh::SshHandshake;
use crate::tls::TlsHandshake;

/// Direction of a byte-stream segment relative to the connection
/// originator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Client (originator) to server.
    ToServer,
    /// Server (responder) to client.
    ToClient,
}

/// Result of probing a byte-stream prefix for a protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeResult {
    /// The prefix is definitely this protocol.
    Certain,
    /// Not enough data to decide yet.
    Unsure,
    /// Definitely not this protocol.
    NotForUs,
}

/// Result of feeding a segment to a parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseResult {
    /// Keep feeding data.
    Continue,
    /// A session completed; collect it with [`ConnParser::drain_sessions`].
    /// Further data may start another session (e.g. HTTP pipelining).
    Done,
    /// The stream is not parseable as this protocol after all.
    Error,
}

/// A session produced by a user-defined protocol module (§3.3): exposes
/// a protocol name and named fields like the built-ins, plus manual
/// cloning (trait objects cannot derive `Clone`).
pub trait CustomSession: Send + std::fmt::Debug {
    /// Protocol name, matching the filter-language identifier.
    fn protocol(&self) -> &str;

    /// Field accessor (same contract as [`SessionData::field`]).
    fn field(&self, name: &str) -> Option<FieldValue<'_>>;

    /// Clones into a new box.
    fn clone_box(&self) -> Box<dyn CustomSession>;
}

/// A parsed application-layer session: one of the built-in protocols, or
/// a [`CustomSession`] from an out-of-tree protocol module (§3.3).
///
/// `Session` implements [`SessionData`], so the session filter can match
/// any variant's fields without knowing the concrete protocol.
#[derive(Debug)]
pub enum Session {
    /// A TLS handshake transcript.
    Tls(TlsHandshake),
    /// One HTTP request/response transaction.
    Http(HttpTransaction),
    /// One DNS query/response exchange.
    Dns(DnsMessage),
    /// An SSH banner exchange.
    Ssh(SshHandshake),
    /// A session from a user-registered protocol module.
    Custom(Box<dyn CustomSession>),
}

impl Clone for Session {
    fn clone(&self) -> Self {
        match self {
            Session::Tls(t) => Session::Tls(t.clone()),
            Session::Http(h) => Session::Http(h.clone()),
            Session::Dns(d) => Session::Dns(d.clone()),
            Session::Ssh(s) => Session::Ssh(s.clone()),
            Session::Custom(c) => Session::Custom(c.clone_box()),
        }
    }
}

impl PartialEq for Session {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Session::Tls(a), Session::Tls(b)) => a == b,
            (Session::Http(a), Session::Http(b)) => a == b,
            (Session::Dns(a), Session::Dns(b)) => a == b,
            (Session::Ssh(a), Session::Ssh(b)) => a == b,
            // Custom sessions are compared by identity of protocol only;
            // field-wise equality is not part of the trait contract.
            (Session::Custom(a), Session::Custom(b)) => a.protocol() == b.protocol(),
            _ => false,
        }
    }
}

impl SessionData for Session {
    fn protocol(&self) -> &str {
        match self {
            Session::Tls(_) => "tls",
            Session::Http(_) => "http",
            Session::Dns(_) => "dns",
            Session::Ssh(_) => "ssh",
            Session::Custom(c) => c.protocol(),
        }
    }

    fn field(&self, name: &str) -> Option<FieldValue<'_>> {
        match self {
            Session::Tls(t) => t.field(name),
            Session::Http(h) => h.field(name),
            Session::Dns(d) => d.field(name),
            Session::Ssh(s) => s.field(name),
            Session::Custom(c) => c.field(name),
        }
    }
}

/// What the framework should do with a connection after one of this
/// protocol's sessions has been handled — the paper's
/// `session_match_state` / `session_nomatch_state` (Figure 10), which
/// drive the Figure 4 state transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// The protocol produces no further sessions of interest; the
    /// connection's app-layer state can be torn down (TLS after the
    /// handshake, SSH after the banner exchange).
    Remove,
    /// More sessions may follow on the same connection (HTTP keep-alive
    /// transactions, repeated DNS exchanges).
    KeepParsing,
}

/// A connection-level protocol parser (the paper's `ConnParsable`).
///
/// The framework probes a connection's first payload bytes with every
/// registered parser; once one returns [`ProbeResult::Certain`] the
/// connection is parsed by that module until its sessions complete
/// (Figure 4's Probe → Parse transition).
pub trait ConnParser: Send {
    /// Protocol name, matching the filter-language identifier.
    fn name(&self) -> &'static str;

    /// Probes a stream prefix (first data of either direction).
    fn probe(&self, data: &[u8], dir: Direction) -> ProbeResult;

    /// Feeds one in-order segment.
    fn parse(&mut self, data: &[u8], dir: Direction) -> ParseResult;

    /// Removes and returns all completed sessions.
    fn drain_sessions(&mut self) -> Vec<Session>;

    /// Connection disposition after a session *matched* the filter.
    fn session_match_state(&self) -> SessionState {
        SessionState::KeepParsing
    }

    /// Connection disposition after a session *failed* the filter.
    fn session_nomatch_state(&self) -> SessionState {
        SessionState::KeepParsing
    }
}

/// Constructor for a boxed [`ConnParser`]; plain `fn` so registries
/// stay `Clone` + `'static` without allocation.
pub type ParserFactory = fn() -> Box<dyn ConnParser>;

/// Factory registry: maps protocol names to parser constructors.
///
/// The runtime populates this from the union of the filter's
/// connection-layer protocols and the subscription's required parsers
/// (the "Parser Registry" of Figure 2).
#[derive(Clone)]
pub struct ParserRegistry {
    factories: Vec<(&'static str, ParserFactory)>,
}

impl std::fmt::Debug for ParserRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParserRegistry")
            .field("protocols", &self.protocols())
            .finish()
    }
}

impl Default for ParserRegistry {
    /// Registry with all built-in protocols.
    fn default() -> Self {
        let mut r = ParserRegistry {
            factories: Vec::new(),
        };
        r.register("tls", || Box::new(crate::tls::TlsParser::new()));
        r.register("http", || Box::new(crate::http::HttpParser::new()));
        r.register("dns", || Box::new(crate::dns::DnsParser::new()));
        r.register("ssh", || Box::new(crate::ssh::SshParser::new()));
        r.register("quic", || Box::new(crate::quic::QuicParser::new()));
        r
    }
}

impl ParserRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        ParserRegistry {
            factories: Vec::new(),
        }
    }

    /// Registers a parser factory under a protocol name.
    pub fn register(&mut self, name: &'static str, factory: ParserFactory) {
        if !self.factories.iter().any(|(n, _)| *n == name) {
            self.factories.push((name, factory));
        }
    }

    /// Instantiates a parser by protocol name.
    pub fn new_parser(&self, name: &str) -> Option<Box<dyn ConnParser>> {
        self.factories
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, f)| f())
    }

    /// Instantiates parsers for a set of protocol names, skipping unknown
    /// names.
    pub fn new_parsers(&self, names: &[String]) -> Vec<Box<dyn ConnParser>> {
        names.iter().filter_map(|n| self.new_parser(n)).collect()
    }

    /// Registered protocol names.
    pub fn protocols(&self) -> Vec<&'static str> {
        self.factories.iter().map(|(n, _)| *n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_defaults() {
        let r = ParserRegistry::default();
        assert_eq!(r.protocols(), vec!["tls", "http", "dns", "ssh", "quic"]);
        assert!(r.new_parser("tls").is_some());
        assert!(r.new_parser("quic").is_some());
        assert!(r.new_parser("gopher").is_none());
        let parsers = r.new_parsers(&["tls".into(), "bogus".into(), "http".into()]);
        assert_eq!(parsers.len(), 2);
    }

    #[test]
    fn duplicate_registration_ignored() {
        let mut r = ParserRegistry::default();
        let before = r.protocols().len();
        r.register("tls", || Box::new(crate::tls::TlsParser::new()));
        assert_eq!(r.protocols().len(), before);
    }

    #[test]
    fn session_protocol_names() {
        let s = Session::Ssh(SshHandshake::default());
        assert_eq!(s.protocol(), "ssh");
    }
}
