//! End-to-end observability tests: a profiled campus-mix run must
//! produce exact outcome accounting (every packet and connection
//! attributed to exactly one drop reason or successful delivery),
//! coherent stage-latency percentiles, and identical state through all
//! four exporters.

use std::sync::Arc;
use std::time::Duration;

use retina_core::subscribables::ConnRecord;
use retina_core::telemetry::json;
use retina_core::{
    compile, CsvSink, DropReason, JsonSink, LogSink, Monitor, PrometheusSink, RunReport, Runtime,
    RuntimeConfig, SharedBuf,
};
use retina_telemetry::Sample;
use retina_trafficgen::campus::{generate, CampusConfig};
use retina_trafficgen::PreloadedSource;

/// One profiled campus-mix run with a session-level filter, so every
/// pipeline stage executes and both filter tiers discard connections.
fn profiled_run(seed: u64) -> RunReport {
    let packets = generate(&CampusConfig::small(seed));
    let mut config = RuntimeConfig::with_cores(2);
    config.profile_stages = true;
    let filter = compile("tls").unwrap();
    let mut rt = Runtime::<ConnRecord, _>::new(config, filter, |_| {}).unwrap();
    rt.run(PreloadedSource::new(packets))
}

#[test]
fn accounting_invariant_holds_end_to_end() {
    let report = profiled_run(0xE2E);
    report
        .check_accounting()
        .expect("every packet and connection attributed");

    // The connection ledger balances exactly: created = discarded +
    // terminated + expired + drained (the issue's headline invariant).
    let c = &report.cores;
    assert_eq!(
        c.conns_created,
        c.conns_discarded + c.conns_terminated + c.conns_expired + c.conns_drained,
    );
    assert_eq!(
        c.conns_discarded,
        c.discard_conn_filter + c.discard_session_filter + c.conns_completed_early,
    );

    // The drop breakdown is complete: its connection side re-derives
    // from the same ledger, and the packet side matches the NIC.
    let drops = report.drop_breakdown();
    assert_eq!(
        drops.get(DropReason::ConnFilterDiscard) + drops.get(DropReason::SessionFilterDiscard),
        c.discard_conn_filter + c.discard_session_filter,
    );
    assert_eq!(drops.get(DropReason::TimeoutExpiry), c.conns_expired);
    assert_eq!(drops.get(DropReason::HwRule), report.nic.hw_dropped);
    assert_eq!(drops.get(DropReason::ParseFailure), c.parse_failures);
    // A `tls` filter over the campus mix must actually exercise the
    // taxonomy, not just leave zeros everywhere.
    assert!(drops.get(DropReason::HwRule) > 0, "{drops:?}");
    assert!(drops.get(DropReason::ConnFilterDiscard) > 0, "{drops:?}");
}

#[test]
fn stage_histograms_expose_ordered_percentiles() {
    let report = profiled_run(0x0B5);
    let snap = report.telemetry();

    // All six stages appear, in pipeline order.
    let names: Vec<&str> = snap.stages.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(
        names,
        [
            "packet_filter",
            "conn_tracking",
            "reassembly",
            "app_parsing",
            "session_filter",
            "callbacks"
        ]
    );
    for (name, stage) in &snap.stages {
        assert!(stage.p50() <= stage.p95(), "{name}");
        assert!(stage.p95() <= stage.p99(), "{name}");
        if stage.runs > 0 {
            // Profiling was on, so runs imply recorded samples. The
            // histogram sums exactly what the flat counter accumulated;
            // its count can trail runs (reassembly counts per segment
            // but times per in-order batch).
            assert!(stage.hist.count() > 0, "{name}");
            assert!(stage.hist.count() <= stage.runs, "{name}");
            assert_eq!(stage.hist.sum(), stage.cycles, "{name}");
            assert!(stage.p99() > 0, "{name}");
            assert!(stage.avg_cycles() > 0.0, "{name}");
        }
    }
    // The cascade shrinks from the per-packet stages toward the
    // callback (Figure 7's reproduced property): every callback firing
    // was gated behind at least one tracked packet of its connection.
    assert!(snap.stage("packet_filter").unwrap().runs >= snap.stage("reassembly").unwrap().runs);
    assert!(snap.stage("conn_tracking").unwrap().runs >= snap.stage("callbacks").unwrap().runs);
}

#[test]
fn all_four_exporters_round_trip_final_snapshot() {
    let packets = generate(&CampusConfig::small(0x51CC));
    let mut config = RuntimeConfig::with_cores(2);
    config.profile_stages = true;
    let filter = compile("tls").unwrap();
    let mut rt = Runtime::<ConnRecord, _>::new(config, filter, |_| {}).unwrap();

    let log_buf = SharedBuf::new();
    let csv_buf = SharedBuf::new();
    let json_buf = SharedBuf::new();
    let prom_buf = SharedBuf::new();
    let monitor = Monitor::start_with_sinks(
        Arc::clone(rt.nic()),
        rt.gauges(),
        Duration::from_millis(2),
        vec![
            Box::new(LogSink::new(log_buf.clone())),
            Box::new(CsvSink::new(csv_buf.clone())),
            Box::new(JsonSink::new(json_buf.clone())),
            Box::new(PrometheusSink::new(prom_buf.clone())),
        ],
    );
    let report = rt.run(PreloadedSource::new(packets));
    // Force one synchronous sample after the run: the assertions below
    // are then guaranteed at least one row per exporter without any
    // dependence on wall-clock interval timing.
    let final_sample = monitor.sample_now();
    assert_eq!(final_sample.parse_failures, report.cores.parse_failures);
    // Workers clock only the frames they saw; the last frame may have
    // been hw-dropped, so the gauge can trail the ingest clock.
    assert!(final_sample.sim_clock_ns <= report.sim_duration_ns);
    assert!(final_sample.sim_clock_ns > 0);
    let samples = monitor.stop_with_snapshot(report.telemetry());
    assert!(!samples.is_empty(), "sample_now must be collected");
    let snap = report.telemetry();

    // JSON: parses with the in-tree parser and round-trips counters,
    // drops, and stage quantiles numerically.
    let doc = json::parse(&json_buf.contents()).expect("JSON exporter output parses");
    assert_eq!(
        doc.get("samples").unwrap().as_arr().unwrap().len(),
        samples.len()
    );
    let final_ = doc.get("final").expect("final snapshot present");
    let counters = final_.get("counters").unwrap();
    for (name, value) in &snap.counters {
        assert_eq!(
            counters
                .get(name)
                .and_then(retina_telemetry::json::Json::as_u64),
            Some(*value),
            "counter {name}"
        );
    }
    let jdrops = final_.get("drops").unwrap();
    for (reason, n) in snap.drops.iter() {
        assert_eq!(
            jdrops
                .get(reason.label())
                .and_then(retina_telemetry::json::Json::as_u64),
            Some(n),
            "drop {reason}"
        );
    }
    for (name, stage) in &snap.stages {
        let jstage = final_.get("stages").unwrap().get(name).unwrap();
        assert_eq!(
            jstage
                .get("runs")
                .and_then(retina_telemetry::json::Json::as_u64),
            Some(stage.runs)
        );
        assert_eq!(
            jstage
                .get("p99")
                .and_then(retina_telemetry::json::Json::as_u64),
            Some(stage.p99())
        );
    }

    // CSV: stable header, rows of matching arity. At least one sample
    // is guaranteed by the forced `sample_now` above.
    let csv = csv_buf.contents();
    let mut lines = csv.lines();
    assert_eq!(lines.next(), Some(Sample::CSV_HEADER));
    let n_cols = Sample::CSV_HEADER.split(',').count();
    let mut rows = 0;
    for row in lines {
        assert_eq!(row.split(',').count(), n_cols, "{row}");
        rows += 1;
    }
    assert_eq!(rows, samples.len());

    // Prometheus: every drop reason appears with its exact count.
    let prom = prom_buf.contents();
    for (reason, n) in snap.drops.iter() {
        let line = format!("retina_drop_total{{reason=\"{}\"}} {n}", reason.label());
        assert!(prom.contains(&line), "missing {line:?} in:\n{prom}");
    }
    for (name, stage) in &snap.stages {
        let line = format!("retina_stage_runs_total{{stage=\"{name}\"}} {}", stage.runs);
        assert!(prom.contains(&line), "missing {line:?}");
    }

    // Log sink: final summary table with the drop taxonomy.
    let log = log_buf.contents();
    assert!(log.contains("final drop breakdown:"), "{log}");
    for reason in DropReason::ALL {
        assert!(log.contains(reason.label()), "missing {reason} in log");
    }
}

#[test]
fn mbuf_high_water_is_surfaced_and_sane() {
    let report = profiled_run(0x3B5F);
    // The pool drained at run end, but the peak survives in the report.
    assert!(report.mbuf_high_water > 0);
    let snap = report.telemetry();
    assert_eq!(
        snap.gauge("mbuf_high_water"),
        Some(report.mbuf_high_water as u64)
    );
}
