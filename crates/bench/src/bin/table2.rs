//! Table 2 / Figure 13 (Appendix C): campus traffic characteristics,
//! measured — as in the paper — "through measurement applications
//! developed using Retina itself": a connection-record subscription for
//! the flow statistics and a raw-packet subscription for the packet-size
//! distribution.

// Narrowing casts in this file are intentional: test and bench harnesses narrow seeded draws and counter math to compact fields.
#![allow(clippy::cast_possible_truncation)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use retina_bench::{bench_args, rule};
use retina_core::subscribables::{ConnRecord, ZcFrame};
use retina_core::{compile, Runtime, RuntimeConfig};
use retina_trafficgen::campus::{generate, CampusConfig};
use retina_trafficgen::PreloadedSource;

fn main() {
    let args = bench_args();
    println!("generating campus mix (~{} packets)...", args.packets);
    let packets = generate(&CampusConfig {
        target_packets: args.packets,
        duration_secs: 60.0,
        ..CampusConfig::default()
    });
    let source = PreloadedSource::new(packets);

    // ---- packet-size distribution via a raw-packet subscription --------
    const BUCKETS: usize = 10;
    let histogram: Arc<Vec<AtomicU64>> =
        Arc::new((0..BUCKETS).map(|_| AtomicU64::new(0)).collect());
    let total_bytes = Arc::new(AtomicU64::new(0));
    let (h2, b2) = (Arc::clone(&histogram), Arc::clone(&total_bytes));
    let mut rt = Runtime::<ZcFrame, _>::new(
        RuntimeConfig::with_cores(1),
        compile("").unwrap(),
        move |frame| {
            let len = frame.mbuf.len();
            b2.fetch_add(len as u64, Ordering::Relaxed);
            // Figure 13's buckets: 56..1514 in equal steps.
            let bucket = ((len.saturating_sub(56)) * BUCKETS / (1514 - 56 + 1)).min(BUCKETS - 1);
            h2[bucket].fetch_add(1, Ordering::Relaxed);
        },
    )
    .unwrap();
    let report = rt.run(source.clone());
    let pkt_count = report.cores.callbacks.runs;

    // ---- flow statistics via a connection-record subscription ----------
    #[derive(Default)]
    struct FlowStats {
        conns: u64,
        tcp: u64,
        udp: u64,
        single_syn: u64,
        incomplete: u64,
        ooo_flows: u64,
        tcp_bytes: u64,
        all_bytes: u64,
        pkts: u64,
        data_flows: u64,
    }
    let stats = Arc::new(Mutex::new(FlowStats::default()));
    let s2 = Arc::clone(&stats);
    let mut rt = Runtime::<ConnRecord, _>::new(
        RuntimeConfig::with_cores(1),
        compile("").unwrap(),
        move |rec: ConnRecord| {
            let mut s = s2.lock().unwrap();
            s.conns += 1;
            s.pkts += rec.pkts_up + rec.pkts_down;
            s.all_bytes += rec.total_bytes();
            let is_tcp = rec.tuple.proto == 6;
            if is_tcp {
                s.tcp += 1;
                s.tcp_bytes += rec.total_bytes();
                if rec.single_syn {
                    s.single_syn += 1;
                }
                if rec.established && !rec.terminated {
                    s.incomplete += 1;
                }
                if rec.established {
                    s.data_flows += 1;
                    if rec.ooo_up + rec.ooo_down > 0 {
                        s.ooo_flows += 1;
                    }
                }
            } else if rec.tuple.proto == 17 {
                s.udp += 1;
            }
        },
    )
    .unwrap();
    let _ = rt.run(source);

    let s = stats.lock().unwrap();
    let pct = |num: u64, den: u64| 100.0 * num as f64 / den.max(1) as f64;
    let avg_pkt = total_bytes.load(Ordering::Relaxed) as f64 / pkt_count.max(1) as f64;

    println!("\nTable 2: campus traffic characteristics (measured with Retina itself)");
    println!(
        "{:<44} {:>10} {:>10}",
        "characteristic", "measured", "paper"
    );
    rule(66);
    let rows: Vec<(&str, String, &str)> = vec![
        ("Packet size (avg bytes)", format!("{avg_pkt:.0}"), "895"),
        (
            "Fraction of TCP connections (%)",
            format!("{:.1}", pct(s.tcp, s.conns)),
            "69.7",
        ),
        (
            "Fraction of UDP connections (%)",
            format!("{:.1}", pct(s.udp, s.conns)),
            "29.8",
        ),
        (
            "Fraction of TCP stream bytes (%)",
            format!("{:.1}", pct(s.tcp_bytes, s.all_bytes)),
            "72.4",
        ),
        (
            "Fraction of single-SYN connections (% of TCP)",
            format!("{:.1}", pct(s.single_syn, s.tcp)),
            "65",
        ),
        (
            "Fraction of incomplete flows (% of data flows)",
            format!("{:.1}", pct(s.incomplete, s.data_flows)),
            "4.6",
        ),
        (
            "Fraction of out-of-order flows (% of data flows)",
            format!("{:.1}", pct(s.ooo_flows, s.data_flows)),
            "6",
        ),
        (
            "Packets per connection (avg)",
            format!("{:.0}", s.pkts as f64 / s.conns.max(1) as f64),
            "121",
        ),
    ];
    for (name, measured, paper) in rows {
        println!("{name:<44} {measured:>10} {paper:>10}");
    }

    println!("\nFigure 13: packet-size distribution (fraction of packets)");
    let total: u64 = histogram.iter().map(|c| c.load(Ordering::Relaxed)).sum();
    for (i, counter) in histogram.iter().enumerate() {
        let lo = 56 + i * (1514 - 56) / BUCKETS;
        let hi = 56 + (i + 1) * (1514 - 56) / BUCKETS;
        let frac = counter.load(Ordering::Relaxed) as f64 / total.max(1) as f64;
        let bar = "#".repeat((frac * 120.0) as usize);
        println!("{lo:>5}-{hi:<5} {frac:>7.3} {bar}");
    }
    println!("\nexpected shape: bimodal — a small-packet mode (ACKs/control) and a\nfull-MSS mode, as in the paper's Figure 13.");
}
