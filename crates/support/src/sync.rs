//! Synchronization primitives: a poison-ignoring `RwLock`, a bounded
//! lock-free MPMC [`ArrayQueue`] (Vyukov's bounded queue, the shape of
//! `crossbeam::queue::ArrayQueue` and of a DPDK descriptor ring), and a
//! bounded [`channel`] for the queued callback executor.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A reader-writer lock that ignores poisoning.
///
/// Wraps [`std::sync::RwLock`] with the `parking_lot` calling convention:
/// `read()`/`write()` return guards directly. A panic while holding the
/// lock does not poison it for later users — packet-path state (RETA,
/// flow rules) must stay accessible after a worker dies.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A mutex that ignores poisoning, mirroring [`RwLock`].
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poison.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

struct Slot<T> {
    /// Ticket sequence number (Vyukov's scheme): equals the slot index
    /// when empty and ready for the `index`-th push, `index + 1` when
    /// full and ready for the matching pop.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded lock-free multi-producer multi-consumer queue.
///
/// This is Vyukov's bounded MPMC queue: one atomic ticket per slot, no
/// locks anywhere on the push/pop paths. It models a NIC descriptor
/// ring: `push` fails (returning the rejected element) when the ring is
/// full, which the device counts as `rx_missed`.
pub struct ArrayQueue<T> {
    slots: Box<[Slot<T>]>,
    capacity: usize,
    /// Next push ticket.
    tail: AtomicUsize,
    /// Next pop ticket.
    head: AtomicUsize,
}

// SAFETY: every slot is guarded by its `seq` ticket. A value is written
// exactly once by the producer that won the tail CAS and read exactly once
// by the consumer that won the head CAS; the Release store on `seq` after a
// write happens-before the Acquire load that lets the reader in, so no two
// threads ever touch the same `UnsafeCell` concurrently. Moving values
// across threads only needs `T: Send`.
unsafe impl<T: Send> Send for ArrayQueue<T> {}
// SAFETY: see the `Send` impl above — shared access is mediated entirely by
// the per-slot atomic tickets, so `&ArrayQueue<T>` is safe to share.
unsafe impl<T: Send> Sync for ArrayQueue<T> {}

impl<T> ArrayQueue<T> {
    /// Creates a queue holding at most `capacity` elements.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ArrayQueue capacity must be non-zero");
        let slots = (0..capacity)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        ArrayQueue {
            slots,
            capacity,
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
        }
    }

    /// Maximum number of elements.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Approximate number of queued elements.
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::SeqCst);
        let head = self.head.load(Ordering::SeqCst);
        tail.saturating_sub(head)
    }

    /// True when the queue is (approximately) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to push; on a full queue the element is handed back.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut tail = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[tail % self.capacity];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == tail {
                // Slot is free for this ticket: claim it.
                match self.tail.compare_exchange_weak(
                    tail,
                    tail.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the tail CAS just succeeded, so this
                        // thread exclusively owns the slot for ticket
                        // `tail`; no reader is admitted until the Release
                        // store of `tail + 1` to `seq` below.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(tail.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(t) => tail = t,
                }
            } else if seq < tail {
                // The slot still holds an element a lap behind: full.
                return Err(value);
            } else {
                // Another producer advanced past us; retry with a fresh
                // ticket.
                tail = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Attempts to pop the oldest element.
    pub fn pop(&self) -> Option<T> {
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[head % self.capacity];
            let seq = slot.seq.load(Ordering::Acquire);
            let expected = head.wrapping_add(1);
            if seq == expected {
                match self.head.compare_exchange_weak(
                    head,
                    head.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: `seq == head + 1` (Acquire) proves the
                        // producer's `write` is visible and complete, and
                        // the head CAS gave this thread exclusive ownership
                        // of the slot, so the value is initialized and read
                        // exactly once.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        // Mark the slot free for the push one lap ahead.
                        slot.seq
                            .store(head.wrapping_add(self.capacity), Ordering::Release);
                        return Some(value);
                    }
                    Err(h) => head = h,
                }
            } else if seq < expected {
                // Slot not yet published: empty.
                return None;
            } else {
                head = self.head.load(Ordering::Relaxed);
            }
        }
    }
}

impl<T> Drop for ArrayQueue<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

impl<T> std::fmt::Debug for ArrayQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArrayQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

/// Bounded channels, mirroring `crossbeam::channel` over
/// [`std::sync::mpsc`].
pub mod channel {
    /// The sending half of a bounded channel (cloneable).
    pub type Sender<T> = std::sync::mpsc::SyncSender<T>;
    /// The receiving half of a bounded channel.
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

    /// Creates a bounded channel of the given capacity. `send` blocks
    /// when the channel is full (backpressure); `recv` returns `Err`
    /// once every sender is dropped.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(capacity.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn queue_fifo_and_capacity() {
        let q = ArrayQueue::new(2);
        assert_eq!(q.push(1), Ok(()));
        assert_eq!(q.push(2), Ok(()));
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.push(3), Ok(()));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn queue_wraps_many_laps() {
        let q = ArrayQueue::new(3);
        for i in 0..1000 {
            q.push(i).unwrap();
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn queue_mpmc_stress() {
        const PRODUCERS: usize = 4;
        const PER: u64 = 5_000;
        let q = Arc::new(ArrayQueue::new(64));
        let mut handles = Vec::new();
        for p in 0..PRODUCERS as u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER {
                    let mut v = p * PER + i;
                    loop {
                        match q.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..2 {
            let q = Arc::clone(&q);
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match q.pop() {
                        Some(v) => got.push(v),
                        None => {
                            if got.len() as u64 >= PRODUCERS as u64 * PER {
                                break;
                            }
                            std::thread::yield_now();
                            // Exit once producers are done and queue drained.
                            if Arc::strong_count(&q) <= 3 && q.is_empty() {
                                break;
                            }
                        }
                    }
                }
                got
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut all: Vec<u64> = Vec::new();
        for c in consumers {
            all.extend(c.join().unwrap());
        }
        while let Some(v) = q.pop() {
            all.push(v);
        }
        all.sort_unstable();
        let expect: Vec<u64> = (0..PRODUCERS as u64 * PER).collect();
        assert_eq!(all, expect, "every element delivered exactly once");
    }

    #[test]
    fn queue_drops_remaining() {
        let q = ArrayQueue::new(8);
        let item = Arc::new(());
        q.push(Arc::clone(&item)).unwrap();
        q.push(Arc::clone(&item)).unwrap();
        drop(q);
        assert_eq!(Arc::strong_count(&item), 1);
    }

    #[test]
    fn rwlock_ignores_poison() {
        let lock = Arc::new(RwLock::new(7u32));
        let l2 = Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*lock.read(), 7);
        *lock.write() = 8;
        assert_eq!(*lock.read(), 8);
    }

    #[test]
    fn channel_bounded_backpressure() {
        let (tx, rx) = channel::bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(tx.try_send(3).is_err(), "channel should be full");
        assert_eq!(rx.recv().unwrap(), 1);
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 2);
        assert!(rx.recv().is_err(), "all senders dropped");
    }
}
