//! Shared filter data types: errors, results, and the traits through which
//! filters access connection and session data without depending on any
//! particular protocol implementation.

use core::fmt;

/// Errors from filter compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilterError {
    /// Tokenizer error at a byte offset.
    Lex {
        /// Byte offset in the source.
        pos: usize,
        /// Description.
        msg: String,
    },
    /// Parser error at a byte offset.
    Parse {
        /// Byte offset in the source.
        pos: usize,
        /// Description.
        msg: String,
    },
    /// The filter references a protocol the registry does not know.
    UnknownProtocol(String),
    /// The filter references a field the protocol does not expose.
    UnknownField(String, String),
    /// Operator/value combination invalid for the field's type.
    TypeMismatch(String),
    /// A regular expression failed to compile.
    BadRegex(String),
}

impl FilterError {
    pub(crate) fn lex(pos: usize, msg: impl Into<String>) -> Self {
        FilterError::Lex {
            pos,
            msg: msg.into(),
        }
    }

    pub(crate) fn parse(pos: usize, msg: impl Into<String>) -> Self {
        FilterError::Parse {
            pos,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterError::Lex { pos, msg } => write!(f, "lex error at byte {pos}: {msg}"),
            FilterError::Parse { pos, msg } => write!(f, "parse error at byte {pos}: {msg}"),
            FilterError::UnknownProtocol(p) => write!(f, "unknown protocol '{p}'"),
            FilterError::UnknownField(p, field) => {
                write!(f, "protocol '{p}' has no field '{field}'")
            }
            FilterError::TypeMismatch(msg) => write!(f, "type mismatch: {msg}"),
            FilterError::BadRegex(msg) => write!(f, "invalid regex: {msg}"),
        }
    }
}

impl std::error::Error for FilterError {}

/// Result of applying a sub-filter, mirroring the paper's `FilterResult`
/// (Figure 3).
///
/// The `usize` carries the ID of the deepest matched predicate-trie node,
/// which later sub-filters use to resume evaluation without re-walking the
/// trie.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterResult {
    /// No pattern can match this input; processing can stop.
    NoMatch,
    /// A complete filter pattern is satisfied (node ID of the pattern end).
    MatchTerminal(usize),
    /// The input matched a pattern prefix; deeper layers must continue
    /// evaluation from the given node.
    MatchNonTerminal(usize),
}

impl FilterResult {
    /// Returns true for either kind of match.
    pub fn is_match(&self) -> bool {
        !matches!(self, FilterResult::NoMatch)
    }

    /// Returns true only for a terminal (complete) match.
    pub fn is_terminal(&self) -> bool {
        matches!(self, FilterResult::MatchTerminal(_))
    }

    /// The matched node ID, if any.
    pub fn node(&self) -> Option<usize> {
        match self {
            FilterResult::NoMatch => None,
            FilterResult::MatchTerminal(n) | FilterResult::MatchNonTerminal(n) => Some(*n),
        }
    }
}

/// A set of subscription indices, represented as a 64-bit bitmap.
///
/// Multi-subscription filtering (one merged predicate trie serving N
/// subscriptions) tags every trie node with the set of subscriptions
/// whose pattern ends there; filter results carry these sets so the
/// runtime knows *which* subscriptions matched or remain live, not just
/// whether any did. The bitmap bounds a runtime to
/// [`SubscriptionSet::MAX`] concurrent subscriptions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct SubscriptionSet(u64);

impl SubscriptionSet {
    /// Maximum number of subscriptions a set can hold.
    pub const MAX: usize = 64;

    /// The empty set.
    pub const fn empty() -> Self {
        SubscriptionSet(0)
    }

    /// A set containing only subscription `i`.
    ///
    /// # Panics
    /// When `i >= SubscriptionSet::MAX`.
    pub const fn single(i: usize) -> Self {
        assert!(i < Self::MAX, "subscription index out of range");
        SubscriptionSet(1u64 << i)
    }

    /// The set `{0, 1, …, n-1}`.
    ///
    /// # Panics
    /// When `n > SubscriptionSet::MAX`.
    pub const fn first_n(n: usize) -> Self {
        assert!(n <= Self::MAX, "subscription count out of range");
        if n == Self::MAX {
            SubscriptionSet(u64::MAX)
        } else {
            SubscriptionSet((1u64 << n) - 1)
        }
    }

    /// Adds subscription `i` to the set.
    pub fn insert(&mut self, i: usize) {
        *self |= Self::single(i);
    }

    /// Removes subscription `i` from the set.
    pub fn remove(&mut self, i: usize) {
        self.0 &= !(1u64 << i);
    }

    /// Whether subscription `i` is in the set.
    pub const fn contains(&self, i: usize) -> bool {
        i < Self::MAX && self.0 & (1u64 << i) != 0
    }

    /// Whether the set is empty.
    pub const fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Number of subscriptions in the set.
    pub const fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// The raw bitmap (stable key for caching per-set derived state).
    pub const fn bits(&self) -> u64 {
        self.0
    }

    /// Iterates the subscription indices in the set, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(i)
            }
        })
    }
}

impl std::ops::BitOr for SubscriptionSet {
    type Output = SubscriptionSet;
    fn bitor(self, rhs: Self) -> Self {
        SubscriptionSet(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for SubscriptionSet {
    fn bitor_assign(&mut self, rhs: Self) {
        self.0 |= rhs.0;
    }
}

impl std::ops::BitAnd for SubscriptionSet {
    type Output = SubscriptionSet;
    fn bitand(self, rhs: Self) -> Self {
        SubscriptionSet(self.0 & rhs.0)
    }
}

impl std::ops::BitAndAssign for SubscriptionSet {
    fn bitand_assign(&mut self, rhs: Self) {
        self.0 &= rhs.0;
    }
}

impl std::ops::Sub for SubscriptionSet {
    type Output = SubscriptionSet;
    fn sub(self, rhs: Self) -> Self {
        SubscriptionSet(self.0 & !rhs.0)
    }
}

impl std::ops::SubAssign for SubscriptionSet {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 &= !rhs.0;
    }
}

impl fmt::Display for SubscriptionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (n, i) in self.iter().enumerate() {
            if n > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

/// The packet-filter frontier nodes a connection was tagged with: the
/// trie nodes at which evaluation resumes for the connection and session
/// layers.
///
/// A merged trie can leave several divergent branches live for the same
/// packet (e.g. one subscription's pattern through `tcp.port >= 100` and
/// another's through plain `tcp`), so the single "deepest node" of the
/// one-subscription design becomes a small set. Stored inline (no heap
/// allocation) for the common case of a handful of frontiers.
///
/// Frontier values are opaque to the runtime: it stores them at
/// connection creation and hands them back to
/// [`crate::FilterFns::conn_filter_set`] /
/// [`crate::FilterFns::session_filter_set`] unchanged. Filter
/// implementations may encode anything they need in the `u32` (the
/// interpreted engine uses trie node IDs; generated union filters pack a
/// sub-filter index into the high bits).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Frontiers {
    inline: [u32; Self::INLINE],
    len: u8,
    spill: Vec<u32>,
}

impl Frontiers {
    const INLINE: usize = 8;

    /// An empty frontier set.
    pub fn new() -> Self {
        Frontiers::default()
    }

    /// A set holding a single frontier.
    pub fn one(node: u32) -> Self {
        let mut f = Frontiers::default();
        f.push(node);
        f
    }

    /// Adds a frontier, ignoring duplicates.
    pub fn push(&mut self, node: u32) {
        if self.iter().any(|n| n == node) {
            return;
        }
        if (self.len as usize) < Self::INLINE {
            self.inline[self.len as usize] = node;
            self.len += 1;
        } else {
            self.spill.push(node);
        }
    }

    /// Number of frontiers.
    pub fn len(&self) -> usize {
        self.len as usize + self.spill.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The first frontier recorded, if any.
    pub fn first(&self) -> Option<u32> {
        (self.len > 0).then(|| self.inline[0])
    }

    /// Iterates the frontiers in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.inline[..self.len as usize]
            .iter()
            .chain(self.spill.iter())
            .copied()
    }

    /// Iterates the frontiers decoded per the generated-union packing
    /// convention: `(sub_filter_index, node_id)` where the sub-filter
    /// index lives in the high 8 bits and the node id in the low 24.
    ///
    /// Interpreted filters never pack a sub index, so their frontiers
    /// decode as `(0, node)` — the convention is backward compatible,
    /// which is what lets trace tooling render any filter's frontier
    /// uniformly.
    pub fn iter_decoded(&self) -> impl Iterator<Item = (u8, u32)> + '_ {
        self.iter().map(|v| ((v >> 24) as u8, v & 0x00ff_ffff))
    }
}

/// Multi-subscription result of the software packet filter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PacketVerdict {
    /// Subscriptions whose filter is fully satisfied by this packet.
    pub matched: SubscriptionSet,
    /// Subscriptions whose filter needs the connection and/or session
    /// layers to decide (disjoint from `matched`: a terminal disjunct
    /// subsumes deeper branches of the same subscription).
    pub live: SubscriptionSet,
    /// Frontier nodes at which later layers resume evaluation for the
    /// `live` subscriptions.
    pub frontiers: Frontiers,
}

impl PacketVerdict {
    /// Whether no subscription matched and none can still match.
    pub fn is_no_match(&self) -> bool {
        self.matched.is_empty() && self.live.is_empty()
    }
}

/// Multi-subscription result of the connection filter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnVerdict {
    /// Subscriptions whose filter became fully satisfied at the
    /// connection layer.
    pub matched: SubscriptionSet,
    /// Subscriptions still undecided (session-layer predicates pending).
    pub live: SubscriptionSet,
}

/// A dynamically-typed view of one protocol field's value, borrowed from
/// the underlying parsed data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldValue<'a> {
    /// Unsigned integer (ports, TTLs, lengths, versions…).
    Int(u64),
    /// String (SNI, user agent, banners…).
    Str(&'a str),
    /// IP address (for `addr`-style fields).
    Ip(std::net::IpAddr),
}

/// Connection-level data visible to the connection filter: the identity of
/// the application-layer protocol, once probed.
///
/// Implemented by the connection tracker's state; the filter crate only
/// needs the service name.
pub trait ConnData {
    /// The probed L7 protocol name (e.g. `"tls"`), or `None` if the
    /// protocol has not been identified (yet).
    fn service(&self) -> Option<&str>;
}

/// Session-level data visible to the session filter: a parsed
/// application-layer message exposing named fields.
///
/// Implemented by protocol modules (`retina-protocols`); the filter crate
/// accesses fields dynamically so new protocols need no filter changes
/// (§3.3 extensibility).
pub trait SessionData {
    /// Protocol name this session was parsed as (e.g. `"tls"`).
    fn protocol(&self) -> &str;

    /// Looks up a field by name. Returns `None` when the field is absent
    /// in this particular session (e.g. a TLS handshake without SNI).
    fn field(&self, name: &str) -> Option<FieldValue<'_>>;
}

/// Trivial [`ConnData`] impl for tests and simple callers.
impl ConnData for Option<&str> {
    fn service(&self) -> Option<&str> {
        *self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_result_accessors() {
        assert!(!FilterResult::NoMatch.is_match());
        assert!(FilterResult::MatchTerminal(3).is_match());
        assert!(FilterResult::MatchTerminal(3).is_terminal());
        assert!(!FilterResult::MatchNonTerminal(4).is_terminal());
        assert_eq!(FilterResult::MatchNonTerminal(4).node(), Some(4));
        assert_eq!(FilterResult::NoMatch.node(), None);
    }

    #[test]
    fn error_display() {
        let e = FilterError::UnknownField("tcp".into(), "bogus".into());
        assert_eq!(e.to_string(), "protocol 'tcp' has no field 'bogus'");
        assert!(FilterError::lex(3, "x").to_string().contains("byte 3"));
    }

    #[test]
    fn conn_data_for_option() {
        let c: Option<&str> = Some("tls");
        assert_eq!(ConnData::service(&c), Some("tls"));
    }

    #[test]
    fn frontier_decoding_splits_sub_and_node() {
        let mut f = Frontiers::new();
        f.push(7); // interpreted-style: bare node id
        f.push((3 << 24) | 0x00_1234); // union-style: sub 3, node 0x1234
        f.push((255 << 24) | 0x00ff_ffff); // both fields saturated
        assert_eq!(
            f.iter_decoded().collect::<Vec<_>>(),
            vec![(0, 7), (3, 0x1234), (255, 0x00ff_ffff)]
        );
        // Decoding never loses information: re-packing reproduces the
        // raw values in order.
        let repacked: Vec<u32> = f
            .iter_decoded()
            .map(|(sub, node)| (u32::from(sub) << 24) | node)
            .collect();
        assert_eq!(repacked, f.iter().collect::<Vec<_>>());
    }

    #[test]
    fn subscription_set_ops() {
        let mut s = SubscriptionSet::empty();
        assert!(s.is_empty());
        s.insert(0);
        s.insert(5);
        s.insert(63);
        assert_eq!(s.len(), 3);
        assert!(s.contains(5) && s.contains(63) && !s.contains(4));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 5, 63]);
        s.remove(5);
        assert!(!s.contains(5));
        let a = SubscriptionSet::single(1) | SubscriptionSet::single(2);
        let b = SubscriptionSet::single(2) | SubscriptionSet::single(3);
        assert_eq!((a & b).iter().collect::<Vec<_>>(), vec![2]);
        assert_eq!((a - b).iter().collect::<Vec<_>>(), vec![1]);
        assert_eq!((a | b).len(), 3);
        assert_eq!(
            SubscriptionSet::first_n(3).iter().collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(SubscriptionSet::first_n(64).len(), 64);
        assert_eq!(a.to_string(), "{1,2}");
    }

    #[test]
    fn frontiers_inline_and_spill() {
        let mut f = Frontiers::new();
        assert!(f.is_empty());
        for n in 0..12u32 {
            f.push(n);
            f.push(n); // duplicates ignored
        }
        assert_eq!(f.len(), 12);
        assert_eq!(f.first(), Some(0));
        assert_eq!(f.iter().collect::<Vec<_>>(), (0..12).collect::<Vec<_>>());
        assert_eq!(Frontiers::one(7).iter().collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn packet_verdict_no_match() {
        assert!(PacketVerdict::default().is_no_match());
        let v = PacketVerdict {
            matched: SubscriptionSet::single(0),
            ..PacketVerdict::default()
        };
        assert!(!v.is_no_match());
    }
}
