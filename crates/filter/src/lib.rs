//! # retina-filter
//!
//! The Retina filter language and its multi-layer decomposition (§4 of the
//! paper).
//!
//! A filter is a boolean expression over protocol predicates, e.g.
//!
//! ```text
//! (ipv4 and tcp.port >= 100 and tls.sni ~ 'netflix') or http
//! ```
//!
//! Filters are not a convenience — they are the performance mechanism: the
//! expression is decomposed into four hierarchical sub-filters, each of
//! which discards out-of-scope traffic before the next (more expensive)
//! processing stage runs:
//!
//! 1. a **hardware packet filter** — NIC flow rules, at zero CPU cost
//!    ([`hw`]);
//! 2. a **software packet filter** — per-packet header predicates
//!    ([`PacketFilter`]);
//! 3. a **connection filter** — L7 protocol identity, applied as soon as
//!    the protocol is probed ([`ConnFilter`]);
//! 4. an **application-layer session filter** — predicates on parsed
//!    session fields ([`SessionFilter`]).
//!
//! The pipeline is:
//!
//! ```text
//! source text --parse--> Expr --dnf--> patterns --expand--> PredicateTrie
//!     --split--> {hw rules, packet filter, conn filter, session filter}
//! ```
//!
//! Each stage lives in its own module: [`ast`], [`lexer`], [`parser`],
//! [`dnf`], [`trie`], [`subfilters`], [`hw`]. Execution is provided two
//! ways, matching Appendix B's ablation:
//!
//! - [`interp`] — a runtime trie-walker (the "interpreted" baseline);
//! - [`codegen`] — a Rust source generator used by the `retina-filtergen`
//!   proc-macro to bake the filter into the binary as a static sequence of
//!   conditionals (the paper's approach, Figure 3).
//!
//! Protocol and field identifiers are *not* hard-coded: they are resolved
//! against an extensible [`registry::ProtocolRegistry`] (§3.3).

#![warn(missing_docs)]

pub mod analysis;
pub mod ast;
pub mod codegen;
pub mod datatypes;
pub mod diag;
pub mod dnf;
pub mod hw;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod registry;
pub mod subfilters;
pub mod trie;
pub mod union;

pub use analysis::{analyze, analyze_union, Analysis};
pub use ast::{Expr, Op, Predicate, Span, Value};
pub use datatypes::{
    ConnData, ConnVerdict, FieldValue, FilterError, FilterResult, Frontiers, PacketVerdict,
    SessionData, SubscriptionSet,
};
pub use diag::{Diagnostic, Severity};
pub use interp::{CompiledFilter, ConnFilter, FilterFns, PacketFilter, SessionFilter};
pub use parser::parse;
pub use registry::ProtocolRegistry;
pub use trie::{FilterLayer, PredicateTrie};
pub use union::FilterUnion;

// Re-exported so macro-generated code can reference these crates through
// `retina_filter::` without the user adding direct dependencies.
pub use retina_support::rematch as regex;
pub use retina_wire as wire;

/// Parses and fully decomposes a filter with the default protocol registry.
///
/// This is the one-call entry point used by the runtime: it returns the
/// interpreted engines plus the predicate trie (from which hardware rules
/// and generated code can both be derived).
pub fn compile(src: &str) -> Result<CompiledFilter, FilterError> {
    let registry = ProtocolRegistry::default();
    CompiledFilter::build(src, &registry)
}
