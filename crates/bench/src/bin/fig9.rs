//! Figure 9: CDF of byte counts up/down for video sessions from Netflix
//! and YouTube (§7.3's feature-extraction application), followed by the
//! multicore callback-dispatch scaling experiment.
//!
//! Runs the video-features pipeline (TCP connection records filtered on
//! the services' TLS server names, aggregated into sessions) over the
//! streaming workload and prints the four CDFs. Byte volumes are scaled
//! down ~10x from production values (see EXPERIMENTS.md); the
//! distributional shape and Netflix-vs-YouTube ordering are preserved.
//!
//! The scaling section runs the merged four-subscription union with a
//! synthetic per-callback cost sweep, inline vs dedicated-dispatch,
//! across core counts: per-delivery RX-core cycles must stay flat under
//! dispatch as the callback cost grows (the cost moves to the workers),
//! and results must be identical everywhere. With `--json-out PATH`
//! the deterministic numbers gate via `scripts/bench_gate.sh`;
//! wall-clock throughput is record-only.

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use retina_bench::{bench_args, ci, gbps, percentiles, rule, stream_bytes, BenchArgs};
use retina_core::subscribables::{
    ConnRecord, DnsTransactionData, HttpTransactionData, TlsHandshakeData,
};
use retina_core::{compile, DispatchMode, Runtime, RuntimeBuilder, RuntimeConfig};
use retina_support::bytes::Bytes;
use retina_trafficgen::campus::{generate, CampusConfig};
use retina_trafficgen::video::{VideoConfig, VideoWorkload};
use retina_trafficgen::PreloadedSource;

/// Per-(responder IP, is-netflix) up/down byte totals, shared with the
/// runtime callback.
type ByteAgg = Arc<Mutex<HashMap<(IpAddr, bool), (u64, u64)>>>;

fn main() {
    let args = bench_args();
    let sessions = if args.quick { 40 } else { 150 };
    println!("generating {sessions} Netflix + {sessions} YouTube sessions...");
    let workload = VideoWorkload::generate(&VideoConfig {
        netflix_sessions: sessions,
        youtube_sessions: sessions,
        ..VideoConfig::default()
    });
    println!("workload: {} packets\n", workload.packets.len());

    let agg: ByteAgg = Arc::new(Mutex::new(HashMap::new()));
    let sink = Arc::clone(&agg);
    let filter_src =
        r"tcp.port = 443 and (tls.sni ~ '(.+?\.)?nflxvideo\.net' or tls.sni ~ 'googlevideo')";
    let mut runtime = Runtime::<ConnRecord, _>::new(
        RuntimeConfig::with_cores(1),
        compile(filter_src).unwrap(),
        move |rec: ConnRecord| {
            let is_netflix = matches!(rec.tuple.resp.ip(), IpAddr::V4(v4) if v4.octets()[0] == 198);
            let mut sessions = sink.lock().unwrap();
            let e = sessions
                .entry((rec.tuple.orig.ip(), is_netflix))
                .or_insert((0, 0));
            e.0 += rec.bytes_up;
            e.1 += rec.bytes_down;
        },
    )
    .expect("runtime");
    let report = runtime.run(workload.source());

    let agg = agg.lock().unwrap();
    let mb = |b: u64| b as f64 / 1e6;
    let mut nf_up = Vec::new();
    let mut nf_down = Vec::new();
    let mut yt_up = Vec::new();
    let mut yt_down = Vec::new();
    for ((_, is_netflix), (up, down)) in agg.iter() {
        if *is_netflix {
            nf_up.push(mb(*up));
            nf_down.push(mb(*down));
        } else {
            yt_up.push(mb(*up));
            yt_down.push(mb(*down));
        }
    }

    println!(
        "reconstructed {} netflix + {} youtube sessions (zero loss: {})\n",
        nf_down.len(),
        yt_down.len(),
        report.zero_loss()
    );
    let pcts = [5.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0];
    println!("Figure 9: CDF of per-session MBytes (columns: percentile)");
    print!("{:<16}", "series");
    for p in pcts {
        print!("{:>9}", format!("p{p:.0}"));
    }
    println!();
    rule(16 + 9 * pcts.len());
    for (name, values) in [
        ("Netflix Up", nf_up),
        ("YouTube Up", yt_up),
        ("Netflix Down", nf_down),
        ("YouTube Down", yt_down),
    ] {
        print!("{name:<16}");
        for (_, v) in percentiles(values, &pcts) {
            print!("{v:>9.3}");
        }
        println!();
    }
    println!(
        "\nexpected shape (paper): Up curves sit 1-2 orders of magnitude left\n\
         of Down curves; Netflix Down sits right of YouTube Down."
    );

    scaling(&args);
}

/// Synthetic per-callback cost: `units` rounds of dependency-chained
/// arithmetic the optimizer cannot remove, so "expensive analysis" is
/// cycle-denominated rather than wall-clock-denominated.
fn spin(units: u64) {
    let mut acc = 0u64;
    for i in 0..units * 64 {
        acc = std::hint::black_box(acc.wrapping_mul(0x9E37_79B9).wrapping_add(i));
    }
    std::hint::black_box(acc);
}

/// Runs the merged four-subscription union over `packets` with a
/// per-callback cost of `units`, either inline or dedicated-dispatched,
/// returning (per-sub delivered counts, avg RX-core cycles per
/// delivery, wall-clock Gbps).
fn run_union(
    packets: &[(Bytes, u64)],
    cores: u16,
    mode: DispatchMode,
    units: u64,
) -> ([u64; 4], f64, f64) {
    let mut config = RuntimeConfig::with_cores(cores);
    config.paced_ingest = true; // the sweep measures work, not loss
    config.profile_stages = true;
    let counts: Arc<[AtomicU64; 4]> = Arc::new(std::array::from_fn(|_| AtomicU64::new(0)));
    let (c0, c1, c2, c3) = (
        Arc::clone(&counts),
        Arc::clone(&counts),
        Arc::clone(&counts),
        Arc::clone(&counts),
    );
    let mut rt = RuntimeBuilder::new(config)
        .subscribe_dispatched::<TlsHandshakeData>("tls", "tls", mode, move |_| {
            spin(units);
            c0[0].fetch_add(1, Ordering::Relaxed);
        })
        .subscribe_dispatched::<HttpTransactionData>("http", "http", mode, move |_| {
            spin(units);
            c1[1].fetch_add(1, Ordering::Relaxed);
        })
        .subscribe_dispatched::<DnsTransactionData>("dns", "dns", mode, move |_| {
            spin(units);
            c2[2].fetch_add(1, Ordering::Relaxed);
        })
        .subscribe_dispatched::<ConnRecord>("conns", "ipv4 and tcp", mode, move |_| {
            spin(units);
            c3[3].fetch_add(1, Ordering::Relaxed);
        })
        .build()
        .expect("union runtime");
    let report = rt.run(PreloadedSource::new(packets.to_vec()));
    if !report.zero_loss() {
        eprintln!("fig9 scaling FAILED: union run lost packets");
        std::process::exit(1);
    }
    if let Err(msg) = report.check_accounting() {
        eprintln!("fig9 scaling FAILED: accounting: {msg}");
        std::process::exit(1);
    }
    let delivered = std::array::from_fn(|i| report.subs[i].delivered);
    // The callbacks stage is timed on the RX core around `deliver`: the
    // full callback inline, only the ring handoff when dispatched.
    let cb = &report.cores.callbacks;
    let rx_cycles = cb.cycles as f64 / cb.runs.max(1) as f64;
    let rate = gbps(
        stream_bytes(packets),
        report.elapsed.as_secs_f64().max(1e-9),
    );
    (delivered, rx_cycles, rate)
}

/// The dispatch-scaling experiment behind the figure's second panel.
fn scaling(args: &BenchArgs) {
    let packets = generate(&CampusConfig {
        target_packets: if args.quick {
            8_000
        } else {
            args.packets.min(60_000)
        },
        duration_secs: 10.0,
        ..CampusConfig::default()
    });
    println!(
        "\nFigure 9 (scaling): merged 4-subscription union, callback cost sweep\n\
         workload: {} packets",
        packets.len()
    );

    // Cost sweep at a fixed core count: RX-core cycles per delivery
    // grow with cost when inline, stay flat under dedicated dispatch.
    let costs = [0u64, 8, 64];
    println!(
        "\n{:<26}{:>14}{:>16}{:>12}",
        "series", "cost (units)", "RX cyc/deliver", "Gbps"
    );
    rule(26 + 14 + 16 + 12);
    let mut baseline: Option<[u64; 4]> = None;
    let mut results_match = true;
    let mut inline_hi = 0.0f64;
    let mut disp_hi = 0.0f64;
    let mut disp_lo = 0.0f64;
    for &units in &costs {
        for (name, mode) in [
            ("inline", DispatchMode::Inline),
            ("dedicated", DispatchMode::dedicated(256)),
        ] {
            let (delivered, rx_cycles, rate) = run_union(&packets, 2, mode, units);
            println!("{name:<26}{units:>14}{rx_cycles:>16.0}{rate:>12.3}");
            match &baseline {
                None => baseline = Some(delivered),
                Some(b) => results_match &= *b == delivered,
            }
            match (name, units) {
                ("inline", u) if u == costs[2] => inline_hi = rx_cycles,
                ("dedicated", 0) => disp_lo = rx_cycles,
                ("dedicated", u) if u == costs[2] => disp_hi = rx_cycles,
                _ => {}
            }
        }
    }
    // Flat = the RX-side handoff cost under the heaviest callback stays
    // far below the inline callback cost, and within a small factor of
    // the zero-cost handoff.
    let rx_flat = disp_hi * 4.0 < inline_hi && disp_hi < disp_lo.max(1.0) * 8.0;

    // Core sweep at the heaviest cost, dispatched: the union keeps
    // delivering identical results as RX cores scale (throughput is
    // wall-clock and machine-dependent, so it records but never gates).
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut sweep: Vec<u16> = vec![1, 2, 4, 8];
    sweep.retain(|&c| usize::from(c) <= host.max(2) * 2);
    println!(
        "\n{:<26}{:>14}{:>12}",
        "cores (dedicated, cost 64)", "", "Gbps"
    );
    rule(26 + 14 + 12);
    let mut core_rates: Vec<(u16, f64)> = Vec::new();
    for &cores in &sweep {
        let (delivered, _, rate) =
            run_union(&packets, cores, DispatchMode::dedicated(256), costs[2]);
        results_match &= baseline == Some(delivered);
        core_rates.push((cores, rate));
        println!("{cores:<26}{:>14}{rate:>12.3}", "");
    }

    println!(
        "\nexpected shape (paper): dispatched RX work per delivery is flat in\n\
         callback cost (flat: {rx_flat}), and the merged union scales with RX\n\
         cores while results stay identical (match: {results_match})."
    );
    if !rx_flat || !results_match {
        eprintln!("fig9 scaling FAILED: rx_flat={rx_flat} results_match={results_match}");
        std::process::exit(1);
    }

    if let Some(path) = &args.json_out {
        let d = baseline.unwrap_or_default();
        let mut metrics: Vec<(String, f64)> = vec![
            ("packets".into(), packets.len() as f64),
            ("delivered_tls".into(), d[0] as f64),
            ("delivered_http".into(), d[1] as f64),
            ("delivered_dns".into(), d[2] as f64),
            ("delivered_conns".into(), d[3] as f64),
            ("results_match".into(), 1.0),
            ("rx_work_flat".into(), 1.0),
            ("_inline_hi_cycles".into(), inline_hi),
            ("_dispatched_hi_cycles".into(), disp_hi),
            ("_dispatched_lo_cycles".into(), disp_lo),
        ];
        for (cores, rate) in &core_rates {
            metrics.push((format!("_gbps_c{cores}"), *rate));
        }
        let named: Vec<(&str, f64)> = metrics.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        ci::merge_section(path, "fig9_scaling", &named).expect("write json-out");
        println!("merged section fig9_scaling into {path}");
    }
}
