//! Property test: merging per-shard histograms preserves percentile
//! bounds.
//!
//! The registry's shard-then-merge discipline only works for
//! distribution metrics if merging is lossless at the bucket level: the
//! merged histogram must be exactly the histogram of the concatenated
//! samples, and any quantile of the merged histogram must lie within
//! the range spanned by the per-shard quantiles (a mixture quantile is
//! bounded by the component quantiles).

use retina_support::proptest::prelude::*;
use retina_telemetry::LogHistogram;

fn hist_of(samples: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

proptest! {
    #[test]
    fn merge_equals_histogram_of_concatenation(
        a in retina_support::proptest::collection::vec(0u64..1_000_000, 0..200),
        b in retina_support::proptest::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let ha = hist_of(&a);
        let hb = hist_of(&b);
        let mut merged = ha;
        merged.merge(&hb);

        let mut both = a.clone();
        both.extend_from_slice(&b);
        let direct = hist_of(&both);

        prop_assert_eq!(merged, direct);
        prop_assert_eq!(merged.count(), (a.len() + b.len()) as u64);
    }

    #[test]
    fn merged_percentiles_bounded_by_shard_percentiles(
        a in retina_support::proptest::collection::vec(1u64..1_000_000, 1..200),
        b in retina_support::proptest::collection::vec(1u64..1_000_000, 1..200),
        q_pct in 0u64..=100,
    ) {
        let q = q_pct as f64;
        let ha = hist_of(&a);
        let hb = hist_of(&b);
        let mut merged = ha;
        merged.merge(&hb);

        // A quantile of a mixture lies between the min and max of the
        // component quantiles.
        let lo = ha.percentile(q).min(hb.percentile(q));
        let hi = ha.percentile(q).max(hb.percentile(q));
        let m = merged.percentile(q);
        prop_assert!(m >= lo, "p{q}: merged {m} < min-shard {lo}");
        prop_assert!(m <= hi, "p{q}: merged {m} > max-shard {hi}");
    }

    #[test]
    fn percentiles_are_monotone_in_q(
        samples in retina_support::proptest::collection::vec(0u64..1_000_000, 1..300),
    ) {
        let h = hist_of(&samples);
        let mut prev = 0u64;
        for q in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0] {
            let v = h.percentile(q);
            prop_assert!(v >= prev, "p{q}={v} dropped below {prev}");
            prev = v;
        }
        // Max percentile never exceeds the bucket bound of the true max.
        let max = *samples.iter().max().unwrap();
        prop_assert!(h.percentile(100.0) >= max);
    }
}
