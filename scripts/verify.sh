#!/usr/bin/env bash
# Tier-1 verification: the whole workspace must build and test fully
# offline — no registry packages, no network. `--offline` makes cargo
# fail loudly if anything tries to leave the tree (every dependency is
# an in-tree path dep on a workspace crate; see crates/support and
# tests/tests/hermetic.rs).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
# All bench/figure binaries must keep building, not just the libraries.
cargo build --release --offline --bins
cargo test -q --offline

# Telemetry smoke: a short profiled run through every exporter, checking
# that the JSON output parses and the stage/drop accounting is exact
# (created == discarded + terminated + expired + drained). Exits
# non-zero on any violation.
cargo run --release --offline -q -p retina-bench --bin telemetry_smoke -- --quick
