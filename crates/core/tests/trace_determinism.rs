//! Acceptance tests for per-flow causal tracing: the canonical span
//! tree of a sampled flow must be *byte-identical* between the
//! threaded runtime ([`MultiRuntime::run`]) and the virtual-time
//! stepped executor ([`MultiRuntime::run_stepped`]) for the same
//! workload and trace seed — across dispatch-mode mixes and seeded
//! worker schedules — and a chaos-triggered flight-recorder dump must
//! replay bit-for-bit across same-seed stepped runs.
//!
//! Byte-identity holds because the canonical rendering excludes
//! everything schedule-dependent (timestamps, lane ids, ring
//! occupancy, RSS queue choice) while keeping everything
//! deterministic (filter verdict bitsets, frontier node ids, conn
//! lifecycle reasons, ingest sequence numbers, subscription ids).
//! The workload pins the remaining sources of divergence: one RX
//! core, `hw_filtering = false` (no rules → both modes see the same
//! RSS verdict), paced ingest (no load-dependent drops), lossless
//! Block dispatch, and FIN-terminated conns (no timeout races).

// Narrowing casts in this file are intentional: test harnesses narrow
// loop counters to compact header fields by design.
#![allow(clippy::cast_possible_truncation)]

use std::net::SocketAddr;

use retina_core::runtime::TrafficSource;
use retina_core::subscribables::ConnRecord;
use retina_core::{
    DispatchMode, MultiRuntime, RuntimeBuilder, RuntimeConfig, StepConfig, TraceConfig,
    TriggerReason, WorkerStall,
};
use retina_filter::CompiledFilter;
use retina_support::bytes::Bytes;
use retina_support::proptest::prelude::*;
use retina_wire::build::{build_tcp, TcpSpec};
use retina_wire::TcpFlags;

/// The 4-subscription union under test: three tiers that match the
/// all-TCP workload plus `udp`, which matches nothing (the
/// empty-delivery path must also trace identically — i.e. not at all).
const FILTERS: [&str; 4] = ["tcp", "ipv4 and tcp", "tcp.port = 443", "udp"];

fn frame(src: SocketAddr, dst: SocketAddr, seq: u32, ack: u32, flags: u8, payload: &[u8]) -> Bytes {
    Bytes::from(build_tcp(&TcpSpec {
        src,
        dst,
        seq,
        ack,
        flags,
        window: 65535,
        ttl: 64,
        payload,
    }))
}

/// One graceful TCP conversation: handshake, one payload exchange,
/// FIN teardown. Every frame is a fixed function of the endpoints, so
/// both execution modes ingest byte-identical packets.
fn conversation(client: SocketAddr, server: SocketAddr, start_ts: u64) -> Vec<(Bytes, u64)> {
    let (mut cseq, mut sseq) = (1000u32, 5000u32);
    let mut ts = start_ts;
    let mut out = Vec::new();
    let mut push = |f: Bytes| {
        ts += 1_000_000; // 1 ms apart
        out.push((f, ts));
    };
    push(frame(client, server, cseq, 0, TcpFlags::SYN, &[]));
    cseq += 1;
    push(frame(
        server,
        client,
        sseq,
        cseq,
        TcpFlags::SYN | TcpFlags::ACK,
        &[],
    ));
    sseq += 1;
    push(frame(client, server, cseq, sseq, TcpFlags::ACK, &[]));
    let up = [0xAA; 64];
    push(frame(
        client,
        server,
        cseq,
        sseq,
        TcpFlags::ACK | TcpFlags::PSH,
        &up,
    ));
    cseq += up.len() as u32;
    let down = [0xBB; 128];
    push(frame(
        server,
        client,
        sseq,
        cseq,
        TcpFlags::ACK | TcpFlags::PSH,
        &down,
    ));
    sseq += down.len() as u32;
    push(frame(
        client,
        server,
        cseq,
        sseq,
        TcpFlags::FIN | TcpFlags::ACK,
        &[],
    ));
    push(frame(
        server,
        client,
        sseq,
        cseq + 1,
        TcpFlags::FIN | TcpFlags::ACK,
        &[],
    ));
    push(frame(
        client,
        server,
        cseq + 1,
        sseq + 1,
        TcpFlags::ACK,
        &[],
    ));
    out
}

/// `conns` conversations to distinct client endpoints, concatenated in
/// a fixed order — the shared ingest order of both execution modes.
fn workload(conns: usize) -> Vec<(Bytes, u64)> {
    let server: SocketAddr = "198.51.100.1:443".parse().unwrap();
    let mut all = Vec::new();
    for c in 0..conns {
        let client: SocketAddr = format!(
            "10.2.{}.{}:{}",
            c / 200,
            (c % 200) + 1,
            u16::try_from(40_000 + c).unwrap()
        )
        .parse()
        .unwrap();
        all.extend(conversation(client, server, c as u64 * 10_000_000));
    }
    all
}

/// Feeds every frame in one batch, preserving order: the single
/// ingest thread then assigns the same `rx_offered` sequence numbers
/// the stepped run derives from packet indices.
struct Seq(Vec<(Bytes, u64)>);

impl TrafficSource for Seq {
    fn next_batch(&mut self, out: &mut Vec<(Bytes, u64)>) -> bool {
        if self.0.is_empty() {
            return false;
        }
        out.append(&mut self.0);
        true
    }
}

fn build_runtime(mix: &[DispatchMode], trace: TraceConfig) -> MultiRuntime<CompiledFilter> {
    // No hardware rules: both modes must see the same RSS verdict for
    // every packet (a stepped run has no rule engine in front of it).
    let config = RuntimeConfig {
        hw_filtering: false,
        ..RuntimeConfig::default()
    };
    let mut b = RuntimeBuilder::new(config);
    for (i, mode) in mix.iter().enumerate() {
        b = b.subscribe_dispatched::<ConnRecord>(format!("s{i}"), FILTERS[i], *mode, |_c| {});
    }
    b.trace(trace).build().expect("union builds")
}

fn trace_config(seed: u64) -> TraceConfig {
    TraceConfig {
        // Sample every flow: the strongest identity check.
        sample_one_in: 1,
        seed,
        ..TraceConfig::default()
    }
}

fn mode_from(kind: u8, depth: usize) -> DispatchMode {
    if kind == 0 {
        DispatchMode::shared(depth)
    } else {
        DispatchMode::dedicated(depth)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A sampled flow through the 4-subscription dispatched union
    /// yields the same span tree — byte for byte — whether the
    /// pipeline ran on real threads or under a seeded virtual-time
    /// schedule, for every dispatch-mode mix and schedule shape.
    #[test]
    fn span_trees_identical_across_run_and_run_stepped(
        sched_seed in any::<u64>(),
        trace_seed in any::<u64>(),
        conns in 1usize..5,
        rx_batch in 1usize..5,
        worker_batch in 1usize..5,
        kinds in collection::vec((0u8..2, prop_oneof![Just(2usize), Just(8)]), 4),
    ) {
        let packets = workload(conns);
        let mix: Vec<DispatchMode> = kinds
            .iter()
            .map(|&(kind, depth)| mode_from(kind, depth))
            .collect();

        let mut threaded_rt = build_runtime(&mix, trace_config(trace_seed));
        let threaded = threaded_rt.run(Seq(packets.clone()));
        threaded.check_accounting().expect("threaded accounting");

        let stepped_rt = build_runtime(&mix, trace_config(trace_seed));
        let cfg = StepConfig {
            seed: sched_seed,
            rx_batch,
            worker_batch,
            ..StepConfig::default()
        };
        let stepped = stepped_rt.run_stepped(&packets, &cfg);
        stepped.check_accounting().expect("stepped accounting");

        let t = threaded.trace.as_ref().expect("threaded trace report");
        let s = stepped.trace.as_ref().expect("stepped trace report");
        prop_assert_eq!(t.session.dropped_events, 0, "threaded trace buffers overflowed");
        prop_assert_eq!(s.session.dropped_events, 0, "stepped trace buffers overflowed");

        let ids = t.session.trace_ids();
        prop_assert!(!ids.is_empty(), "every flow is sampled at 1-in-1");
        prop_assert_eq!(&ids, &s.session.trace_ids(), "sampled populations diverged");
        for id in &ids {
            let a = t.session.flow(*id).expect("threaded flow");
            let b = s.session.flow(*id).expect("stepped flow");
            prop_assert_eq!(
                String::from_utf8(a.canonical_bytes()).unwrap(),
                String::from_utf8(b.canonical_bytes()).unwrap(),
                "span tree diverged for flow {:016x}",
                id
            );
        }
    }
}

/// A chaos-style worker stall under the stepped executor freezes the
/// flight recorder, and the dump replays bit-for-bit across two runs
/// of the same seed: same triggers, same rings, same bytes.
#[test]
fn chaos_stall_flight_dump_replays_bit_for_bit() {
    let packets = workload(6);
    let mix = [
        DispatchMode::dedicated(2),
        DispatchMode::dedicated(2),
        DispatchMode::shared(2),
        DispatchMode::shared(2),
    ];
    let cfg = StepConfig::seeded(11).with_stall(WorkerStall {
        sub: 0,
        from_step: 2,
        steps: 64,
    });
    let run = || {
        let rt = build_runtime(&mix, trace_config(3));
        rt.run_stepped(&packets, &cfg)
    };
    let r1 = run();
    let r2 = run();
    let f1 = r1
        .trace
        .expect("trace report")
        .flight
        .expect("the stall's first activation froze the flight recorder");
    let f2 = r2.trace.expect("trace report").flight.expect("flight dump");
    assert!(
        f1.triggers
            .iter()
            .any(|t| t.reason == TriggerReason::ChaosFault),
        "triggers: {:?}",
        f1.triggers
    );
    assert!(f1.event_count() > 0, "flight rings captured events");
    assert_eq!(
        f1.to_bytes(),
        f2.to_bytes(),
        "flight dump must replay exactly"
    );
}

/// The sampled span tree is structurally complete end to end: ingest
/// events, pipeline verdicts, per-subscription worker segments with
/// paired dispatch and callback spans, and a renderable text form.
#[test]
fn span_tree_covers_every_stage() {
    let packets = workload(2);
    let mix = [
        DispatchMode::dedicated(8),
        DispatchMode::dedicated(8),
        DispatchMode::shared(8),
        DispatchMode::shared(8),
    ];
    let stepped_rt = build_runtime(&mix, trace_config(0));
    let report = stepped_rt.run_stepped(&packets, &StepConfig::seeded(5));
    let session = report.trace.expect("trace report").session;
    let flows = session.assemble();
    assert_eq!(flows.len(), 2, "both conns sampled at 1-in-1");
    for flow in &flows {
        assert!(!flow.ingest.is_empty(), "NIC-side events present");
        assert!(!flow.pipeline.is_empty(), "RX-core events present");
        // Subs 0..3 match TCP traffic and are all dispatched; sub 3
        // (udp) must not appear.
        let subs: Vec<u16> = flow.workers.iter().map(|(s, _)| *s).collect();
        assert_eq!(
            subs,
            vec![0, 1, 2],
            "exactly the matching subs have worker spans"
        );
        let text = flow.canonical_text();
        assert!(text.contains("rx seq="), "{text}");
        assert!(text.contains("packet-verdict"), "{text}");
        assert!(text.contains("conn-insert"), "{text}");
        assert!(text.contains("conn-expire"), "{text}");
        assert!(text.contains("dispatch-enqueue"), "{text}");
        assert!(text.contains("dispatch-dequeue"), "{text}");
        assert!(text.contains("callback-start"), "{text}");
        // Latency attribution pairs every enqueue with a dequeue.
        for (_, waits, execs) in flow.dispatch_latencies() {
            assert!(!waits.is_empty());
            assert_eq!(waits.len(), execs.len());
        }
        assert!(!flow.render_text().is_empty());
    }
}
