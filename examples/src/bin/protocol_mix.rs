//! Traffic profiling: per-protocol session and byte shares across the
//! whole link — the "understand what's on my network" starter analysis,
//! using the generic [`SessionRecord`] subscription over every built-in
//! protocol module.

// Narrowing casts in this file are intentional: synthetic traffic narrows seeded PRNG draws into ports, lengths, and header bytes.
#![allow(clippy::cast_possible_truncation)]

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use retina_core::subscribables::SessionRecord;
use retina_core::{Runtime, RuntimeConfig};
use retina_examples::cli_args;
use retina_filter::SessionData;
use retina_filtergen::filter;
use retina_protocols::Session;
use retina_trafficgen::campus::{campus_source, CampusConfig};

filter!(AnyKnownL7, "tls or http or dns or ssh or quic");

fn main() {
    let args = cli_args();
    let tally: Arc<Mutex<HashMap<String, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    let detail: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let (t2, d2) = (Arc::clone(&tally), Arc::clone(&detail));

    let callback = move |rec: SessionRecord| {
        let proto = rec.session.protocol().to_string();
        *t2.lock().unwrap().entry(proto).or_insert(0) += 1;
        let mut d = d2.lock().unwrap();
        if d.len() < 10 {
            let line = match &rec.session {
                Session::Tls(t) => format!("tls  sni={} cipher={}", t.sni(), t.cipher()),
                Session::Http(h) => {
                    format!("http {} {} -> {}", h.method, h.uri, h.status)
                }
                Session::Dns(m) => format!(
                    "dns  {} type {} rcode {:?}",
                    m.query_name, m.query_type, m.resp_code
                ),
                Session::Ssh(s) => format!(
                    "ssh  client={:?} server={:?}",
                    s.client_banner, s.server_banner
                ),
                Session::Custom(c) => format!("{} (custom protocol)", c.protocol()),
            };
            d.push(line);
        }
    };

    let mut runtime = Runtime::new(
        RuntimeConfig::with_cores(args.cores as u16),
        AnyKnownL7,
        callback,
    )
    .expect("runtime");
    let source = campus_source(&CampusConfig {
        seed: args.seed,
        target_packets: args.packets as usize,
        ..CampusConfig::default()
    });
    let report = runtime.run(source);

    println!("sample sessions:");
    for line in detail.lock().unwrap().iter() {
        println!("  {line}");
    }
    let tally = tally.lock().unwrap();
    let total: u64 = tally.values().sum();
    println!(
        "\nsession mix over {} sessions ({:.2} Gbps, zero loss: {}):",
        total,
        report.gbps(),
        report.zero_loss()
    );
    let mut rows: Vec<_> = tally.iter().collect();
    rows.sort_by(|a, b| b.1.cmp(a.1));
    for (proto, count) in rows {
        println!(
            "  {:<5} {:>8}  {:>5.1}%",
            proto,
            count,
            100.0 * *count as f64 / total.max(1) as f64
        );
    }
}
