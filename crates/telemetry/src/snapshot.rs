//! The final merged telemetry view of a run.

use crate::drops::DropBreakdown;
use crate::histogram::LogHistogram;
use crate::json;

/// Distribution summary for one pipeline stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageSummary {
    /// Times the stage ran.
    pub runs: u64,
    /// Total cycles spent (when profiling was on).
    pub cycles: u64,
    /// Cycle distribution (when profiling was on).
    pub hist: LogHistogram,
}

impl StageSummary {
    /// Mean cycles per run.
    pub fn avg_cycles(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.cycles as f64 / self.runs as f64
        }
    }

    /// Median cycles (histogram upper bound).
    pub fn p50(&self) -> u64 {
        self.hist.p50()
    }

    /// 95th percentile cycles.
    pub fn p95(&self) -> u64 {
        self.hist.p95()
    }

    /// 99th percentile cycles.
    pub fn p99(&self) -> u64 {
        self.hist.p99()
    }
}

/// A merged, point-in-time view of every telemetry source: named
/// counters and gauges, per-stage cycle distributions, and the
/// drop-reason breakdown. This is what the exporters render and what
/// `RunReport::telemetry()` returns.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Counter totals, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Pipeline stages in pipeline order.
    pub stages: Vec<(String, StageSummary)>,
    /// Why packets and connections left the pipeline.
    pub drops: DropBreakdown,
}

impl TelemetrySnapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a stage by name.
    pub fn stage(&self, name: &str) -> Option<&StageSummary> {
        self.stages.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Renders the snapshot as one JSON document:
    ///
    /// ```json
    /// {
    ///   "counters": {"name": 1, ...},
    ///   "gauges": {"name": 2, ...},
    ///   "stages": {"name": {"runs":1,"cycles":9,"avg":9.0,
    ///                        "p50":15,"p95":15,"p99":15}, ...},
    ///   "drops": {"hw_rule": 0, ...}
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}{}: {v}", json::escape(name));
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}{}: {v}", json::escape(name));
        }
        out.push_str("},\n  \"stages\": {");
        for (i, (name, s)) in self.stages.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(
                out,
                "{sep}{}: {{\"runs\": {}, \"cycles\": {}, \"avg\": {:.1}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                json::escape(name),
                s.runs,
                s.cycles,
                s.avg_cycles(),
                s.p50(),
                s.p95(),
                s.p99(),
            );
        }
        out.push_str("},\n  \"drops\": {");
        for (i, (reason, n)) in self.drops.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}{}: {n}", json::escape(reason.label()));
        }
        out.push_str("}\n}");
        out
    }

    /// Renders the snapshot as Prometheus text exposition.
    ///
    /// Metric names sanitize `.` to `_` and carry a `retina_` prefix;
    /// stage distributions become summary-style quantile series.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write;
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect()
        }
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE retina_{n} counter");
            let _ = writeln!(out, "retina_{n} {v}");
        }
        for (name, v) in &self.gauges {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE retina_{n} gauge");
            let _ = writeln!(out, "retina_{n} {v}");
        }
        if !self.stages.is_empty() {
            let _ = writeln!(out, "# TYPE retina_stage_runs_total counter");
            for (name, s) in &self.stages {
                let _ = writeln!(
                    out,
                    "retina_stage_runs_total{{stage=\"{}\"}} {}",
                    sanitize(name),
                    s.runs
                );
            }
            let _ = writeln!(out, "# TYPE retina_stage_cycles summary");
            for (name, s) in &self.stages {
                let stage = sanitize(name);
                for (q, v) in [(0.5, s.p50()), (0.95, s.p95()), (0.99, s.p99())] {
                    let _ = writeln!(
                        out,
                        "retina_stage_cycles{{stage=\"{stage}\",quantile=\"{q}\"}} {v}"
                    );
                }
                let _ = writeln!(
                    out,
                    "retina_stage_cycles_sum{{stage=\"{stage}\"}} {}",
                    s.cycles
                );
                let _ = writeln!(
                    out,
                    "retina_stage_cycles_count{{stage=\"{stage}\"}} {}",
                    s.runs
                );
            }
        }
        let _ = writeln!(out, "# TYPE retina_drop_total counter");
        for (reason, n) in self.drops.iter() {
            let _ = writeln!(
                out,
                "retina_drop_total{{reason=\"{}\"}} {n}",
                reason.label()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drops::DropReason;
    use crate::json;

    fn sample_snapshot() -> TelemetrySnapshot {
        let mut hist = LogHistogram::new();
        hist.record_n(10, 9);
        hist.record(1000);
        let mut drops = DropBreakdown::new();
        drops.add(DropReason::HwRule, 3);
        drops.add(DropReason::ConnFilterDiscard, 2);
        TelemetrySnapshot {
            counters: vec![("core.rx_packets".into(), 100)],
            gauges: vec![("mbuf_high_water".into(), 8)],
            stages: vec![(
                "packet_filter".into(),
                StageSummary {
                    runs: 10,
                    cycles: 1090,
                    hist,
                },
            )],
            drops,
        }
    }

    #[test]
    fn json_parses_and_preserves_values() {
        let snap = sample_snapshot();
        let doc = snap.to_json();
        let v = json::parse(&doc).expect("snapshot JSON must parse");
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("core.rx_packets")
                .unwrap()
                .as_u64(),
            Some(100)
        );
        assert_eq!(
            v.get("gauges")
                .unwrap()
                .get("mbuf_high_water")
                .unwrap()
                .as_u64(),
            Some(8)
        );
        let stage = v.get("stages").unwrap().get("packet_filter").unwrap();
        assert_eq!(stage.get("runs").unwrap().as_u64(), Some(10));
        assert_eq!(
            stage.get("p50").unwrap().as_u64(),
            Some(snap.stages[0].1.p50())
        );
        assert_eq!(
            v.get("drops").unwrap().get("hw_rule").unwrap().as_u64(),
            Some(3)
        );
        // Every reason appears, including zeros.
        for reason in DropReason::ALL {
            assert!(v.get("drops").unwrap().get(reason.label()).is_some());
        }
    }

    #[test]
    fn prometheus_exposition_shape() {
        let snap = sample_snapshot();
        let text = snap.to_prometheus();
        assert!(text.contains("retina_core_rx_packets 100"));
        assert!(text.contains("retina_mbuf_high_water 8"));
        assert!(text.contains("retina_stage_cycles{stage=\"packet_filter\",quantile=\"0.5\"}"));
        assert!(text.contains("retina_drop_total{reason=\"hw_rule\"} 3"));
        assert!(text.contains("retina_drop_total{reason=\"timeout_expiry\"} 0"));
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn lookups() {
        let snap = sample_snapshot();
        assert_eq!(snap.counter("core.rx_packets"), Some(100));
        assert_eq!(snap.gauge("mbuf_high_water"), Some(8));
        assert_eq!(snap.stage("packet_filter").unwrap().runs, 10);
        assert!(snap.stage("nope").is_none());
    }
}
