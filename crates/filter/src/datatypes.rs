//! Shared filter data types: errors, results, and the traits through which
//! filters access connection and session data without depending on any
//! particular protocol implementation.

use core::fmt;

/// Errors from filter compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilterError {
    /// Tokenizer error at a byte offset.
    Lex {
        /// Byte offset in the source.
        pos: usize,
        /// Description.
        msg: String,
    },
    /// Parser error at a byte offset.
    Parse {
        /// Byte offset in the source.
        pos: usize,
        /// Description.
        msg: String,
    },
    /// The filter references a protocol the registry does not know.
    UnknownProtocol(String),
    /// The filter references a field the protocol does not expose.
    UnknownField(String, String),
    /// Operator/value combination invalid for the field's type.
    TypeMismatch(String),
    /// A regular expression failed to compile.
    BadRegex(String),
}

impl FilterError {
    pub(crate) fn lex(pos: usize, msg: impl Into<String>) -> Self {
        FilterError::Lex {
            pos,
            msg: msg.into(),
        }
    }

    pub(crate) fn parse(pos: usize, msg: impl Into<String>) -> Self {
        FilterError::Parse {
            pos,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterError::Lex { pos, msg } => write!(f, "lex error at byte {pos}: {msg}"),
            FilterError::Parse { pos, msg } => write!(f, "parse error at byte {pos}: {msg}"),
            FilterError::UnknownProtocol(p) => write!(f, "unknown protocol '{p}'"),
            FilterError::UnknownField(p, field) => {
                write!(f, "protocol '{p}' has no field '{field}'")
            }
            FilterError::TypeMismatch(msg) => write!(f, "type mismatch: {msg}"),
            FilterError::BadRegex(msg) => write!(f, "invalid regex: {msg}"),
        }
    }
}

impl std::error::Error for FilterError {}

/// Result of applying a sub-filter, mirroring the paper's `FilterResult`
/// (Figure 3).
///
/// The `usize` carries the ID of the deepest matched predicate-trie node,
/// which later sub-filters use to resume evaluation without re-walking the
/// trie.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterResult {
    /// No pattern can match this input; processing can stop.
    NoMatch,
    /// A complete filter pattern is satisfied (node ID of the pattern end).
    MatchTerminal(usize),
    /// The input matched a pattern prefix; deeper layers must continue
    /// evaluation from the given node.
    MatchNonTerminal(usize),
}

impl FilterResult {
    /// Returns true for either kind of match.
    pub fn is_match(&self) -> bool {
        !matches!(self, FilterResult::NoMatch)
    }

    /// Returns true only for a terminal (complete) match.
    pub fn is_terminal(&self) -> bool {
        matches!(self, FilterResult::MatchTerminal(_))
    }

    /// The matched node ID, if any.
    pub fn node(&self) -> Option<usize> {
        match self {
            FilterResult::NoMatch => None,
            FilterResult::MatchTerminal(n) | FilterResult::MatchNonTerminal(n) => Some(*n),
        }
    }
}

/// A dynamically-typed view of one protocol field's value, borrowed from
/// the underlying parsed data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldValue<'a> {
    /// Unsigned integer (ports, TTLs, lengths, versions…).
    Int(u64),
    /// String (SNI, user agent, banners…).
    Str(&'a str),
    /// IP address (for `addr`-style fields).
    Ip(std::net::IpAddr),
}

/// Connection-level data visible to the connection filter: the identity of
/// the application-layer protocol, once probed.
///
/// Implemented by the connection tracker's state; the filter crate only
/// needs the service name.
pub trait ConnData {
    /// The probed L7 protocol name (e.g. `"tls"`), or `None` if the
    /// protocol has not been identified (yet).
    fn service(&self) -> Option<&str>;
}

/// Session-level data visible to the session filter: a parsed
/// application-layer message exposing named fields.
///
/// Implemented by protocol modules (`retina-protocols`); the filter crate
/// accesses fields dynamically so new protocols need no filter changes
/// (§3.3 extensibility).
pub trait SessionData {
    /// Protocol name this session was parsed as (e.g. `"tls"`).
    fn protocol(&self) -> &str;

    /// Looks up a field by name. Returns `None` when the field is absent
    /// in this particular session (e.g. a TLS handshake without SNI).
    fn field(&self, name: &str) -> Option<FieldValue<'_>>;
}

/// Trivial [`ConnData`] impl for tests and simple callers.
impl ConnData for Option<&str> {
    fn service(&self) -> Option<&str> {
        *self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_result_accessors() {
        assert!(!FilterResult::NoMatch.is_match());
        assert!(FilterResult::MatchTerminal(3).is_match());
        assert!(FilterResult::MatchTerminal(3).is_terminal());
        assert!(!FilterResult::MatchNonTerminal(4).is_terminal());
        assert_eq!(FilterResult::MatchNonTerminal(4).node(), Some(4));
        assert_eq!(FilterResult::NoMatch.node(), None);
    }

    #[test]
    fn error_display() {
        let e = FilterError::UnknownField("tcp".into(), "bogus".into());
        assert_eq!(e.to_string(), "protocol 'tcp' has no field 'bogus'");
        assert!(FilterError::lex(3, "x").to_string().contains("byte 3"));
    }

    #[test]
    fn conn_data_for_option() {
        let c: Option<&str> = Some("tls");
        assert_eq!(ConnData::service(&c), Some("tls"));
    }
}
