//! # retina-protocols
//!
//! Application-layer protocol modules (Appendix A of the paper).
//!
//! Each module implements the [`ConnParser`] trait — the crate's analogue
//! of the paper's `ConnParsable` — which defines how Retina probes a
//! connection's byte-stream for the protocol and parses it into
//! [`Session`] values once identified. Sessions implement
//! [`retina_filter::SessionData`], exposing named fields to the session
//! filter, so adding a protocol module automatically extends the filter
//! language (§3.3).
//!
//! Implemented protocols:
//!
//! - [`tls`] — TLS 1.0–1.3 handshakes: ClientHello/ServerHello (SNI,
//!   ALPN, ciphersuites, versions, client/server randoms), with record
//!   reassembly across TCP segment boundaries.
//! - [`http`] — HTTP/1.x request/response transactions (method, URI,
//!   host, user agent, status, content length), with pipelining support.
//! - [`dns`] — DNS queries/responses, including compressed-name parsing
//!   with loop bounds.
//! - [`ssh`] — SSH-2 banner + cleartext KEXINIT exchange.
//! - [`quic`] — QUIC long-header metadata (version, connection IDs).
//!
//! Every module also ships a `build_*` constructor used by the synthetic
//! traffic generator, which doubles as the round-trip test vector source.
//!
//! All parsers are panic-free on arbitrary input and bound their internal
//! buffering, per the security goals of §2.

#![warn(missing_docs)]

pub mod dns;
pub mod http;
pub mod parser;
pub mod quic;
pub mod ssh;
pub mod tls;

pub use parser::{
    ConnParser, CustomSession, Direction, ParseResult, ParserFactory, ParserRegistry, ProbeResult,
    Session, SessionState,
};
