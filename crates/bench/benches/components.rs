//! Criterion microbenchmarks for the substrate components on the hot
//! path: packet parsing, RSS hashing, TLS parsing, connection-table and
//! timer-wheel operations, and the two reassembly designs (Retina's
//! pass-through vs. the eager copy-based ablation).

// Narrowing casts in this file are intentional: test and bench harnesses narrow seeded draws and counter math to compact fields.
#![allow(clippy::cast_possible_truncation)]

use retina_support::bench::{Criterion, Throughput};
use retina_support::{criterion_group, criterion_main};
use std::hint::black_box;

use retina_conntrack::{ConnKey, ConnTable, StreamReassembler, TimeoutConfig, TimerWheel};
use retina_nic::{Mbuf, RssHasher};
use retina_protocols::tls::build::{client_hello_record, ClientHelloSpec};
use retina_protocols::{ConnParser, Direction};
use retina_wire::build::{build_tcp, TcpSpec};
use retina_wire::{ParsedPacket, TcpFlags};

fn sample_frame(payload_len: usize) -> Vec<u8> {
    build_tcp(&TcpSpec {
        src: "171.64.1.2:40000".parse().unwrap(),
        dst: "93.184.216.34:443".parse().unwrap(),
        seq: 1000,
        ack: 2000,
        flags: TcpFlags::ACK | TcpFlags::PSH,
        window: 65535,
        ttl: 64,
        payload: &vec![0xAB; payload_len],
    })
}

fn bench_parse(c: &mut Criterion) {
    let frame = sample_frame(1460);
    let mut group = c.benchmark_group("wire");
    group.throughput(Throughput::Bytes(frame.len() as u64));
    group.bench_function("parse_packet_1460B", |b| {
        b.iter(|| ParsedPacket::parse(black_box(&frame)).unwrap());
    });
    group.finish();
}

fn bench_rss(c: &mut Criterion) {
    let frame = sample_frame(0);
    let pkt = ParsedPacket::parse(&frame).unwrap();
    let hasher = RssHasher::symmetric();
    c.bench_function("rss/toeplitz_v4_tuple", |b| {
        b.iter(|| hasher.hash_packet(black_box(&pkt)));
    });
}

fn bench_tls_parse(c: &mut Criterion) {
    let ch = client_hello_record(&ClientHelloSpec {
        sni: Some("edge-042.cdn.example.com".into()),
        ciphers: vec![0x1301, 0x1302, 0x1303, 0xc02b, 0xc02f],
        random: [7; 32],
        version: 0x0303,
        alpn: Some("h2".into()),
    });
    let mut group = c.benchmark_group("tls");
    group.throughput(Throughput::Bytes(ch.len() as u64));
    group.bench_function("probe_client_hello", |b| {
        let parser = retina_protocols::tls::TlsParser::new();
        b.iter(|| parser.probe(black_box(&ch), Direction::ToServer));
    });
    group.bench_function("parse_client_hello", |b| {
        b.iter(|| {
            let mut parser = retina_protocols::tls::TlsParser::new();
            parser.parse(black_box(&ch), Direction::ToServer)
        });
    });
    group.finish();
}

fn bench_conn_table(c: &mut Criterion) {
    let keys: Vec<ConnKey> = (0..4096u32)
        .map(|i| {
            let frame = build_tcp(&TcpSpec {
                src: format!("10.{}.{}.{}:40000", i >> 16, (i >> 8) & 0xff, i & 0xff)
                    .parse()
                    .unwrap(),
                dst: "1.1.1.1:443".parse().unwrap(),
                seq: 0,
                ack: 0,
                flags: TcpFlags::SYN,
                window: 64,
                ttl: 64,
                payload: b"",
            });
            ConnKey::from_packet(&ParsedPacket::parse(&frame).unwrap())
        })
        .collect();
    let tuples: Vec<retina_conntrack::FiveTuple> = (0..4096u32)
        .map(|i| retina_conntrack::FiveTuple {
            orig: format!("10.{}.{}.{}:40000", i >> 16, (i >> 8) & 0xff, i & 0xff)
                .parse()
                .unwrap(),
            resp: "1.1.1.1:443".parse().unwrap(),
            proto: 6,
        })
        .collect();

    // Stand-in for the NIC-stamped symmetric RSS hash: any well-mixed
    // 32-bit value per flow exercises the sharded index the same way.
    let hashes: Vec<u32> = (0..4096u64)
        .map(|i| retina_support::hash::splitmix64(i) as u32)
        .collect();

    c.bench_function("conntrack/insert_4096", |b| {
        b.iter(|| {
            let mut table: ConnTable<u32> = ConnTable::new(TimeoutConfig::retina_default());
            for (i, (key, tuple)) in keys.iter().zip(&tuples).enumerate() {
                table.get_or_insert_with(hashes[i], *key, i as u64 * 1000, || (*tuple, 0u32));
            }
            black_box(table.len())
        });
    });
    c.bench_function("conntrack/lookup_hit", |b| {
        let mut table: ConnTable<u32> = ConnTable::new(TimeoutConfig::retina_default());
        for (i, (key, tuple)) in keys.iter().zip(&tuples).enumerate() {
            table.get_or_insert_with(hashes[i], *key, i as u64 * 1000, || (*tuple, 0u32));
        }
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(table.get_mut(hashes[i], &keys[i]).is_some())
        });
    });
}

fn bench_timer_wheel(c: &mut Criterion) {
    c.bench_function("timerwheel/schedule_advance_1024", |b| {
        b.iter(|| {
            let mut wheel = TimerWheel::new(100_000_000, 256);
            for token in 0..1024u64 {
                wheel.schedule(token, (token + 1) * 50_000_000);
            }
            let mut out = Vec::new();
            wheel.advance(60_000_000_000, &mut out);
            black_box(out.len())
        });
    });
}

/// The §5.2 ablation: pass-through reordering (Retina) vs. copy-based
/// stream buffering (traditional IDS) on an in-order segment train.
fn bench_reassembly_designs(c: &mut Criterion) {
    const SEGMENTS: usize = 64;
    let payload = vec![0x5Au8; 1460];
    let mbuf = Mbuf::from_bytes(retina_support::bytes::Bytes::from(sample_frame(1460)));
    let mut group = c.benchmark_group("reassembly_64x1460B_inorder");
    group.throughput(Throughput::Bytes((SEGMENTS * 1460) as u64));
    group.bench_function("retina_passthrough", |b| {
        b.iter(|| {
            let mut r = StreamReassembler::new(500);
            r.init_seq(0);
            for i in 0..SEGMENTS as u32 {
                black_box(r.offer(i * 1460, 1460, &mbuf));
            }
            black_box(r.next_seq())
        });
    });
    group.bench_function("eager_copy", |b| {
        b.iter(|| {
            let mut buf = retina_baselines::eager::StreamBuf::default();
            for i in 0..SEGMENTS as u32 {
                buf.add(i * 1460, black_box(&payload));
            }
            black_box(buf.data.len())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_parse,
    bench_rss,
    bench_tls_parse,
    bench_conn_table,
    bench_timer_wheel,
    bench_reassembly_designs
);
criterion_main!(benches);
