//! retina-telemetry: observability primitives for the Retina pipeline.
//!
//! The paper's §5.3 argues that a 100GbE system is only trustworthy if
//! it continuously reports its own loss, throughput, and memory
//! pressure. This crate is that reporting substrate, kept dependency-
//! free so every other crate can use it:
//!
//! * [`Registry`] — a lock-free per-core metric registry. Counters and
//!   gauges are registered up front and updated through per-core
//!   [`Shard`] views (one cache-line-padded atomic per core per metric);
//!   readers merge shards on demand.
//! * [`LogHistogram`] — log2-bucketed cycle histograms with cheap
//!   p50/p95/p99 extraction, replacing sum-only stage statistics when
//!   profiling is on.
//! * [`DropReason`] / [`DropBreakdown`] — the structured drop taxonomy:
//!   every way a packet or connection leaves the pipeline, attributed
//!   exclusively so breakdowns sum back to totals.
//! * [`MetricSink`] and the built-in [`LogSink`], [`CsvSink`],
//!   [`JsonSink`], and [`PrometheusSink`] exporters, driven by the
//!   runtime monitor with periodic [`Sample`]s and a final
//!   [`TelemetrySnapshot`].
//! * [`DispatchStats`] / [`DispatchHub`] — per-subscription callback
//!   dispatch counters (queue depth, drops by reason, blocked sends)
//!   whose worst-case occupancy feeds the governor as the
//!   queue-pressure shed input.
//! * [`GovernorEvent`] / [`EventLog`] — the overload governor's
//!   decision stream, with [`check_governor_accounting`] proving that
//!   every shed is matched by a restore and no decision exceeded the
//!   configured step bound.

#![warn(missing_docs)]

pub mod dispatch;
pub mod drops;
pub mod events;
pub mod export;
pub mod histogram;
pub mod json;
pub mod registry;
pub mod snapshot;
pub mod trace;

pub use dispatch::{DispatchHub, DispatchSnapshot, DispatchStats};
pub use drops::{DropBreakdown, DropReason, DropSubject};
pub use events::{
    check_governor_accounting, EventLog, GovernorAction, GovernorEvent, PressureSignals,
};
pub use export::{CsvSink, JsonSink, LogSink, MetricSink, PrometheusSink, Sample, SharedBuf};
pub use histogram::{LogHistogram, NUM_BUCKETS};
pub use registry::{CounterId, GaugeId, GaugeMerge, MetricsSnapshot, Registry, Shard};
pub use snapshot::{StageSummary, TelemetrySnapshot};
pub use trace::{
    FlightDump, FlowTrace, LaneKind, TraceConfig, TraceEvent, TraceKind, TraceReport, TraceSession,
    Tracer, TriggerReason, TriggerRecord,
};
