//! # retina-filtergen
//!
//! Compile-time filter code generation (§4 of the paper).
//!
//! Retina "uses static code generation to compile filters into performant
//! native assembly": the filter expression is parsed, decomposed into a
//! predicate trie, and rendered as a fixed sequence of conditionals that
//! the Rust compiler verifies and inlines at each processing layer. These
//! macros perform that step at *compile time*, so no filter interpretation
//! happens at runtime (Appendix B quantifies the benefit).
//!
//! Three forms are provided:
//!
//! ```ignore
//! // Function-like: declares the struct and its FilterFns impl.
//! retina_filtergen::filter!(ComFilter, r"tls.sni matches '.*\.com$'");
//!
//! // Attribute: annotate an existing unit struct.
//! #[retina_filtergen::filter(r"tls.sni matches '.*\.com$'")]
//! struct ComFilter;
//!
//! // Union: one multi-subscription filter from N sources, each source
//! // compiled to static code and composed via retina_filter::FilterUnion.
//! retina_filtergen::filter_union!(tls_and_http, "tls", "http");
//! let f = tls_and_http(); // FilterFns with num_subscriptions() == 2
//! ```
//!
//! The first two expand to `impl retina_filter::FilterFns for ComFilter`,
//! usable anywhere a filter is accepted (e.g. `Runtime::new`); the union
//! form produces a constructor function whose result drives a
//! `MultiRuntime` directly. Filter syntax or type errors surface as
//! compile errors with the offending message.
//!
//! The macro is deliberately built without `syn`/`quote`: the input
//! grammar is just an identifier and a string literal, parsed by hand from
//! the token stream, and the generated source comes from
//! `retina_filter::codegen` via `str::parse::<TokenStream>()`.

use proc_macro::{TokenStream, TokenTree};

use retina_filter::diag::render_filter_error;
use retina_filter::registry::ProtocolRegistry;
use retina_filter::trie::PredicateTrie;

/// Runs the semantic analyzer over the filter sources before codegen.
///
/// Hard E-code diagnostics (unsatisfiable conjunctions, contradictory
/// constraints, duplicate union subscriptions, …) abort the expansion with
/// the full rustc-style rendering — caret snippet included — as the
/// `compile_error!` message. Warnings (dead disjuncts, lost hardware
/// offload, redundant predicates) are printed to stderr as build notes,
/// exactly once per macro expansion.
fn analyze_sources(srcs: &[&str], origin: &str) -> Result<(), String> {
    let registry = ProtocolRegistry::default();
    match retina_filter::analyze_union(srcs, &registry, None) {
        Ok(analysis) => {
            for w in analysis.warnings() {
                let src = srcs.get(w.sub).copied().unwrap_or("");
                eprint!("{}", w.render(src, origin));
            }
            if analysis.has_errors() {
                let mut msg = String::new();
                for d in analysis.errors() {
                    let src = srcs.get(d.sub).copied().unwrap_or("");
                    msg.push_str(&d.render(src, origin));
                }
                return Err(msg);
            }
            Ok(())
        }
        Err(_) => {
            // Re-parse each source individually to attribute the lex/parse
            // error to the right subscription and render a caret snippet.
            for src in srcs {
                if let Err(err) = retina_filter::parse(src) {
                    return Err(render_filter_error(src, origin, &err));
                }
            }
            unreachable!("analyze_union failed but every source parses");
        }
    }
}

/// Function-like form: `filter!(StructName, "filter expression")`.
#[proc_macro]
pub fn filter(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (name, filter_src) = match parse_args(&tokens) {
        Ok(v) => v,
        Err(msg) => return compile_error(&msg),
    };
    match generate(&filter_src, &name, true) {
        Ok(code) => code,
        Err(msg) => compile_error(&msg),
    }
}

/// Attribute form: `#[filter("expression")] struct Name;`.
///
/// Re-emits the item followed by the generated `FilterFns` impl.
#[proc_macro_attribute]
pub fn filter_attr(attr: TokenStream, item: TokenStream) -> TokenStream {
    let attr_tokens: Vec<TokenTree> = attr.into_iter().collect();
    let filter_src = match attr_tokens.as_slice() {
        [TokenTree::Literal(lit)] => match parse_string_literal(&lit.to_string()) {
            Some(s) => s,
            None => return compile_error("expected a string literal filter"),
        },
        [] => String::new(),
        _ => return compile_error("expected exactly one string literal argument"),
    };
    // Find the struct name in the item.
    let item_tokens: Vec<TokenTree> = item.clone().into_iter().collect();
    let mut name = None;
    let mut iter = item_tokens.iter();
    while let Some(tok) = iter.next() {
        if let TokenTree::Ident(id) = tok {
            if id.to_string() == "struct" {
                if let Some(TokenTree::Ident(n)) = iter.next() {
                    name = Some(n.to_string());
                }
                break;
            }
        }
    }
    let Some(name) = name else {
        return compile_error("#[filter] must be applied to a struct");
    };
    let generated = match generate(&filter_src, &name, false) {
        Ok(code) => code,
        Err(msg) => return compile_error(&msg),
    };
    let mut out = item;
    out.extend(generated);
    out
}

/// Union form: `filter_union!(make_filter, "tls", "http", ...)`.
///
/// Generates one statically-compiled filter struct per source (exactly
/// what [`filter!`] would emit) plus a constructor function `make_filter()`
/// returning a `retina_filter::FilterUnion` that composes them: one
/// multi-subscription filter whose subscription `i` is source `i`, with
/// every predicate still baked into the binary as native conditionals.
///
/// ```ignore
/// retina_filtergen::filter_union!(tls_and_http, "tls", "http");
/// let filter = tls_and_http(); // FilterFns with num_subscriptions() == 2
/// ```
#[proc_macro]
pub fn filter_union(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut iter = tokens.iter();
    let Some(TokenTree::Ident(name)) = iter.next() else {
        return compile_error("expected `filter_union!(fn_name, \"src0\", \"src1\", ...)`");
    };
    let name = name.to_string();
    let mut sources = Vec::new();
    loop {
        match iter.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            _ => return compile_error("expected `,` between filter_union! arguments"),
        }
        match iter.next() {
            None => break, // trailing comma
            Some(TokenTree::Literal(lit)) => match parse_string_literal(&lit.to_string()) {
                Some(s) => sources.push(s),
                None => return compile_error("filter_union! sources must be string literals"),
            },
            _ => return compile_error("filter_union! sources must be string literals"),
        }
    }
    if sources.is_empty() {
        return compile_error("filter_union! needs at least one filter source");
    }
    let src_refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    if let Err(msg) = analyze_sources(&src_refs, "filter_union!") {
        return compile_error(&msg);
    }
    let mut out = String::new();
    let mut ctors = Vec::new();
    for (i, src) in sources.iter().enumerate() {
        let part = format!("__{name}_Part{i}");
        let registry = ProtocolRegistry::default();
        let trie = match PredicateTrie::from_source(src, &registry) {
            Ok(t) => t,
            Err(e) => return compile_error(&format!("invalid filter '{src}': {e}")),
        };
        out.push_str("#[allow(non_camel_case_types)]\n");
        out.push_str(&retina_filter::codegen::generate(&trie, &part));
        out.push('\n');
        ctors.push(format!("Box::new({part})"));
    }
    out.push_str(&format!(
        "/// Builds the `{name}` filter union ({} statically-generated parts).\n\
         pub fn {name}() -> retina_filter::FilterUnion {{\n    \
             retina_filter::FilterUnion::new(vec![{}])\n}}\n",
        sources.len(),
        ctors.join(", "),
    ));
    match out.parse::<TokenStream>() {
        Ok(ts) => ts,
        Err(e) => compile_error(&format!("internal codegen error: {e}")),
    }
}

fn parse_args(tokens: &[TokenTree]) -> Result<(String, String), String> {
    match tokens {
        [TokenTree::Ident(name), TokenTree::Punct(comma), TokenTree::Literal(lit)]
            if comma.as_char() == ',' =>
        {
            let src = parse_string_literal(&lit.to_string())
                .ok_or_else(|| "second argument must be a string literal".to_string())?;
            Ok((name.to_string(), src))
        }
        _ => Err("expected `filter!(StructName, \"filter expression\")`".to_string()),
    }
}

/// Decodes a Rust string-literal token (`"…"`, `r"…"`, `r#"…"#`) into its
/// value.
fn parse_string_literal(text: &str) -> Option<String> {
    if let Some(rest) = text.strip_prefix('r') {
        // Raw string: r"…" or r#"…"# (any number of #).
        let hashes = rest.chars().take_while(|&c| c == '#').count();
        let body = &rest[hashes..];
        let body = body.strip_prefix('"')?;
        let body = body.strip_suffix(&format!("\"{}", "#".repeat(hashes)))?;
        return Some(body.to_string());
    }
    let body = text.strip_prefix('"')?.strip_suffix('"')?;
    // Resolve the escapes a normal string literal can contain.
    let mut out = String::with_capacity(body.len());
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            'n' => out.push('\n'),
            't' => out.push('\t'),
            'r' => out.push('\r'),
            '\\' => out.push('\\'),
            '"' => out.push('"'),
            '\'' => out.push('\''),
            '0' => out.push('\0'),
            '\n' => {
                // Line continuation: `\` + newline swallows following
                // whitespace, as in Rust string literals.
                while matches!(chars.clone().next(), Some(' ' | '\t')) {
                    chars.next();
                }
            }
            other => {
                // Unknown escape: keep verbatim (regexes in plain strings).
                out.push('\\');
                out.push(other);
            }
        }
    }
    Some(out)
}

fn generate(filter_src: &str, name: &str, with_struct: bool) -> Result<TokenStream, String> {
    analyze_sources(&[filter_src], "filter!")?;
    let registry = ProtocolRegistry::default();
    let trie = PredicateTrie::from_source(filter_src, &registry)
        .map_err(|e| format!("invalid filter '{filter_src}': {e}"))?;
    let code = if with_struct {
        retina_filter::codegen::generate(&trie, name)
    } else {
        retina_filter::codegen::generate_impl(&trie, name)
    };
    code.parse::<TokenStream>()
        .map_err(|e| format!("internal codegen error: {e}"))
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

#[cfg(test)]
mod tests {
    use super::analyze_sources;

    // `filter!("tcp and udp")` must expand to a `compile_error!` whose
    // message carries the same stable E-codes `RuntimeBuilder::build`
    // reports for the same source (see
    // `tests/tests/analysis.rs::runtime_builder_rejects_unsatisfiable_filter_with_e_code`),
    // plus the caret snippet pointing at the offending predicate.
    #[test]
    fn unsatisfiable_filter_is_a_compile_error_with_span() {
        let msg = analyze_sources(&["tcp and udp"], "filter!").unwrap_err();
        assert!(msg.contains("error[E001]"), "{msg}");
        assert!(msg.contains("error[E004]"), "{msg}");
        assert!(msg.contains("--> filter!:1:"), "{msg}");
        assert!(msg.contains("tcp and udp"), "{msg}");
        assert!(msg.contains('^'), "{msg}");
    }

    #[test]
    fn contradictory_constraints_are_a_compile_error() {
        let msg =
            analyze_sources(&["tcp.src_port > 100 and tcp.src_port < 50"], "filter!").unwrap_err();
        assert!(msg.contains("error[E002]"), "{msg}");
    }

    #[test]
    fn union_duplicates_are_not_errors() {
        // W004 is a warning: the union still compiles.
        assert!(analyze_sources(&["tls", "tls"], "filter_union!").is_ok());
    }

    #[test]
    fn clean_filters_pass() {
        assert!(analyze_sources(
            &["(ipv4 and tcp.port >= 100 and tls.sni ~ 'netflix') or http"],
            "filter!"
        )
        .is_ok());
    }
}
