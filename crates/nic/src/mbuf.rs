//! Packet buffers and pools.
//!
//! [`Mbuf`] is the unit of packet data flowing through the framework, the
//! analogue of a DPDK `rte_mbuf`. It wraps a cheaply-cloneable [`Bytes`]
//! buffer plus receive metadata (timestamp, RSS hash, queue). Cloning an
//! `Mbuf` is a refcount bump, which is how the connection tracker holds
//! out-of-order packets "by reference" (§5.2) without copying payloads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use retina_support::bytes::Bytes;

/// A received packet buffer with metadata.
///
/// The buffer holds a complete Ethernet frame. Receive metadata is filled
/// in by the [`crate::VirtualNic`] on ingest.
///
/// Cloning an `Mbuf` is a refcount bump: all clones share one pool charge
/// (like DPDK's `rte_mbuf_refcnt_update`), released when the last clone
/// drops.
#[derive(Debug, Clone)]
pub struct Mbuf {
    data: Bytes,
    /// Receive timestamp in nanoseconds of simulation time.
    pub timestamp_ns: u64,
    /// RSS hash computed by the NIC.
    pub rss_hash: u32,
    /// RX queue this packet was delivered to.
    pub queue: u16,
    /// Packet-filter mark: the ID of the deepest predicate-trie node this
    /// packet matched, used to resume filter evaluation at later layers
    /// without re-walking the trie (§4.1). `0` means "not yet filtered".
    pub mark: u32,
    // Pool accounting guard: released (with the charge) when the last
    // clone drops. See [`Mbuf::pooled`].
    charge: Option<Arc<PoolCharge>>,
}

/// Shared accounting guard: decrements pool occupancy when the last
/// [`Mbuf`] clone drops.
#[derive(Debug)]
struct PoolCharge {
    pool: Arc<PoolInner>,
    bytes: usize,
}

impl Drop for PoolCharge {
    fn drop(&mut self) {
        self.pool.in_use.fetch_sub(1, Ordering::Relaxed);
        self.pool
            .bytes_in_use
            .fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

impl Mbuf {
    /// Wraps a raw frame with zeroed metadata (no pool accounting).
    pub fn from_bytes(data: Bytes) -> Self {
        Mbuf {
            data,
            timestamp_ns: 0,
            rss_hash: 0,
            queue: 0,
            mark: 0,
            charge: None,
        }
    }

    /// Wraps a raw frame, charging it to `pool` until the last clone drops.
    pub fn from_bytes_in(data: Bytes, pool: &Mempool) -> Self {
        // fetch_add returns the pre-increment occupancy; raising the
        // high-water mark here (rather than sampling in_use from the
        // monitor) captures peaks shorter than a monitoring interval.
        let occupied = pool.inner.in_use.fetch_add(1, Ordering::Relaxed) + 1;
        pool.inner.high_water.fetch_max(occupied, Ordering::Relaxed);
        pool.inner
            .bytes_in_use
            .fetch_add(data.len(), Ordering::Relaxed);
        let charge = PoolCharge {
            pool: pool.inner.clone(),
            bytes: data.len(),
        };
        Mbuf {
            data,
            timestamp_ns: 0,
            rss_hash: 0,
            queue: 0,
            mark: 0,
            charge: Some(Arc::new(charge)),
        }
    }

    /// The raw frame bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Frame length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns true if the frame is empty (never the case for real traffic).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A cheap owned handle to the underlying bytes.
    pub fn bytes(&self) -> Bytes {
        self.data.clone()
    }

    /// Whether this buffer is charged to a [`Mempool`] (true for frames
    /// delivered by the NIC, false for [`Mbuf::from_bytes`] wrappers).
    pub fn pooled(&self) -> bool {
        self.charge.is_some()
    }

    /// Handles (this mbuf plus clones) sharing the pool charge, or 0 for
    /// an unpooled buffer. Diagnostic mirror of DPDK's `rte_mbuf_refcnt`.
    pub fn refcnt(&self) -> usize {
        self.charge.as_ref().map_or(0, Arc::strong_count)
    }
}

#[derive(Debug, Default)]
struct PoolInner {
    in_use: AtomicUsize,
    bytes_in_use: AtomicUsize,
    high_water: AtomicUsize,
    capacity: usize,
}

/// A packet-buffer pool with occupancy accounting.
///
/// The virtual NIC charges every delivered [`Mbuf`] to a pool; the runtime's
/// memory monitor reads pool occupancy to produce the memory-usage series of
/// Figure 8.
#[derive(Debug, Clone)]
pub struct Mempool {
    inner: Arc<PoolInner>,
}

impl Mempool {
    /// Creates a pool that can account up to `capacity` buffers.
    pub fn new(capacity: usize) -> Self {
        Mempool {
            inner: Arc::new(PoolInner {
                capacity,
                ..Default::default()
            }),
        }
    }

    /// Buffers currently charged to the pool.
    pub fn in_use(&self) -> usize {
        self.inner.in_use.load(Ordering::Relaxed)
    }

    /// Bytes currently charged to the pool.
    pub fn bytes_in_use(&self) -> usize {
        self.inner.bytes_in_use.load(Ordering::Relaxed)
    }

    /// Pool capacity in buffers.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Peak buffer occupancy over the pool's lifetime.
    ///
    /// Unlike [`Mempool::in_use`], this never decreases: it records the
    /// worst pressure the pool has seen, even for spikes shorter than a
    /// monitoring interval.
    pub fn high_water(&self) -> usize {
        self.inner.high_water.load(Ordering::Relaxed)
    }

    /// Returns true when occupancy has reached capacity; the device drops
    /// ingress packets (`rx_nombuf`) in that state, as DPDK does.
    pub fn exhausted(&self) -> bool {
        self.in_use() >= self.inner.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_accounting() {
        let pool = Mempool::new(4);
        assert_eq!(pool.in_use(), 0);
        let m1 = Mbuf::from_bytes_in(Bytes::from_static(b"abcd"), &pool);
        let m2 = Mbuf::from_bytes_in(Bytes::from_static(b"efgh12"), &pool);
        assert!(m1.pooled());
        assert_eq!(m1.refcnt(), 1);
        assert_eq!(pool.in_use(), 2);
        assert_eq!(pool.bytes_in_use(), 10);
        drop(m1);
        assert_eq!(pool.in_use(), 1);
        assert_eq!(pool.bytes_in_use(), 6);
        drop(m2);
        assert_eq!(pool.in_use(), 0);
        assert_eq!(pool.bytes_in_use(), 0);
    }

    #[test]
    fn clones_do_not_double_charge() {
        let pool = Mempool::new(4);
        let m1 = Mbuf::from_bytes_in(Bytes::from_static(b"abcd"), &pool);
        let m2 = m1.clone();
        // A clone shares the charge: cloning is the "hold by reference"
        // mechanism, and the pool tracks delivered buffers, not handles.
        assert_eq!(pool.in_use(), 1);
        assert_eq!(m1.refcnt(), 2);
        drop(m1);
        // The clone still holds the charge.
        assert_eq!(pool.in_use(), 1);
        drop(m2);
        // Last clone dropped: the charge is released exactly once.
        assert_eq!(pool.in_use(), 0);
        assert_eq!(pool.bytes_in_use(), 0);
    }

    #[test]
    fn high_water_tracks_peak_not_current() {
        let pool = Mempool::new(8);
        assert_eq!(pool.high_water(), 0);
        let a = Mbuf::from_bytes_in(Bytes::from_static(b"a"), &pool);
        let b = Mbuf::from_bytes_in(Bytes::from_static(b"b"), &pool);
        let c = Mbuf::from_bytes_in(Bytes::from_static(b"c"), &pool);
        assert_eq!(pool.high_water(), 3);
        drop(a);
        drop(b);
        // Occupancy fell but the peak stays.
        assert_eq!(pool.in_use(), 1);
        assert_eq!(pool.high_water(), 3);
        // A new charge below the old peak does not move it.
        let d = Mbuf::from_bytes_in(Bytes::from_static(b"d"), &pool);
        assert_eq!(pool.high_water(), 3);
        drop(c);
        drop(d);
        assert_eq!(pool.high_water(), 3);
    }

    #[test]
    fn exhaustion() {
        let pool = Mempool::new(2);
        let _a = Mbuf::from_bytes_in(Bytes::from_static(b"a"), &pool);
        assert!(!pool.exhausted());
        let _b = Mbuf::from_bytes_in(Bytes::from_static(b"b"), &pool);
        assert!(pool.exhausted());
    }

    #[test]
    fn unpooled_mbuf() {
        let m = Mbuf::from_bytes(Bytes::from_static(b"frame"));
        assert_eq!(m.len(), 5);
        assert_eq!(m.data(), b"frame");
        assert!(!m.is_empty());
        assert!(!m.pooled());
        assert_eq!(m.refcnt(), 0);
    }
}
