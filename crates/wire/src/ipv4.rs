//! IPv4 packet view (RFC 791).

use std::net::Ipv4Addr;

use crate::checksum;
use crate::error::check_len;
use crate::ip::IpProtocol;
use crate::{WireError, WireResult};

/// Minimum IPv4 header length (IHL = 5).
pub const MIN_HEADER_LEN: usize = 20;

/// Zero-copy view of an IPv4 packet.
#[derive(Debug, Clone)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wraps a buffer, validating version, header length, and that the
    /// buffer can hold the full header.
    pub fn new_checked(buffer: T) -> WireResult<Self> {
        let buf = buffer.as_ref();
        check_len(buf, MIN_HEADER_LEN)?;
        if buf[0] >> 4 != 4 {
            return Err(WireError::Malformed("ipv4 version"));
        }
        let ihl = usize::from(buf[0] & 0x0f) * 4;
        if ihl < MIN_HEADER_LEN {
            return Err(WireError::Malformed("ipv4 ihl"));
        }
        check_len(buf, ihl)?;
        // total_length must cover at least the header; if it is shorter than
        // the buffer we trust total_length (Ethernet pads short frames).
        let total = usize::from(u16::from_be_bytes([buf[2], buf[3]]));
        if total < ihl {
            return Err(WireError::Malformed("ipv4 total length"));
        }
        Ok(Self { buffer })
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[0] & 0x0f) * 4
    }

    /// Differentiated services code point.
    pub fn dscp(&self) -> u8 {
        self.buffer.as_ref()[1] >> 2
    }

    /// Explicit congestion notification bits.
    pub fn ecn(&self) -> u8 {
        self.buffer.as_ref()[1] & 0x03
    }

    /// Total packet length from the header (header + payload).
    pub fn total_len(&self) -> usize {
        let b = self.buffer.as_ref();
        usize::from(u16::from_be_bytes([b[2], b[3]]))
    }

    /// Identification field.
    pub fn identification(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[4], b[5]])
    }

    /// Don't Fragment flag.
    pub fn dont_frag(&self) -> bool {
        self.buffer.as_ref()[6] & 0x40 != 0
    }

    /// More Fragments flag.
    pub fn more_frags(&self) -> bool {
        self.buffer.as_ref()[6] & 0x20 != 0
    }

    /// Fragment offset in 8-byte units.
    pub fn frag_offset(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[6] & 0x1f, b[7]])
    }

    /// Returns true if this packet is a fragment (non-first or non-last).
    pub fn is_fragment(&self) -> bool {
        self.more_frags() || self.frag_offset() != 0
    }

    /// Time-to-live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[8]
    }

    /// Encapsulated protocol.
    pub fn protocol(&self) -> IpProtocol {
        IpProtocol::from(self.buffer.as_ref()[9])
    }

    /// Header checksum field.
    pub fn header_checksum(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[10], b[11]])
    }

    /// Verifies the header checksum.
    pub fn verify_checksum(&self) -> bool {
        checksum::verify(&self.buffer.as_ref()[..self.header_len()])
    }

    /// Source address.
    pub fn src(&self) -> Ipv4Addr {
        let b = self.buffer.as_ref();
        Ipv4Addr::new(b[12], b[13], b[14], b[15])
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv4Addr {
        let b = self.buffer.as_ref();
        Ipv4Addr::new(b[16], b[17], b[18], b[19])
    }

    /// Raw options bytes (empty when IHL = 5).
    pub fn options(&self) -> &[u8] {
        &self.buffer.as_ref()[MIN_HEADER_LEN..self.header_len()]
    }

    /// Payload bytes. The length is bounded by `total_len` so Ethernet
    /// padding is not misattributed to the L4 payload.
    pub fn payload(&self) -> &[u8] {
        let b = self.buffer.as_ref();
        let start = self.header_len();
        let end = self.total_len().min(b.len());
        &b[start..end.max(start)]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
    /// Initializes version and IHL for a fresh header with no options.
    pub fn set_version_ihl(&mut self) {
        self.buffer.as_mut()[0] = 0x45;
    }

    /// Sets the total length field.
    pub fn set_total_len(&mut self, len: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&len.to_be_bytes());
    }

    /// Sets the identification field.
    pub fn set_identification(&mut self, id: u16) {
        self.buffer.as_mut()[4..6].copy_from_slice(&id.to_be_bytes());
    }

    /// Sets the TTL.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buffer.as_mut()[8] = ttl;
    }

    /// Sets the encapsulated protocol.
    pub fn set_protocol(&mut self, proto: IpProtocol) {
        self.buffer.as_mut()[9] = proto.into();
    }

    /// Sets the source address.
    pub fn set_src(&mut self, addr: Ipv4Addr) {
        self.buffer.as_mut()[12..16].copy_from_slice(&addr.octets());
    }

    /// Sets the destination address.
    pub fn set_dst(&mut self, addr: Ipv4Addr) {
        self.buffer.as_mut()[16..20].copy_from_slice(&addr.octets());
    }

    /// Recomputes and stores the header checksum.
    pub fn fill_checksum(&mut self) {
        let header_len = self.header_len();
        let buf = self.buffer.as_mut();
        buf[10] = 0;
        buf[11] = 0;
        let ck = checksum::checksum(&buf[..header_len]);
        buf[10..12].copy_from_slice(&ck.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packet() -> Vec<u8> {
        let mut buf = vec![0u8; 40];
        {
            let mut pkt = Ipv4Packet::new_unchecked_for_tests(&mut buf);
            pkt.set_version_ihl();
            pkt.set_total_len(40);
            pkt.set_identification(0x1234);
            pkt.set_ttl(64);
            pkt.set_protocol(IpProtocol::Tcp);
            pkt.set_src(Ipv4Addr::new(10, 1, 2, 3));
            pkt.set_dst(Ipv4Addr::new(192, 168, 0, 1));
            pkt.fill_checksum();
        }
        buf
    }

    impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
        fn new_unchecked_for_tests(mut buffer: T) -> Self {
            buffer.as_mut()[0] = 0x45;
            Self { buffer }
        }
    }

    #[test]
    fn parse_roundtrip() {
        let buf = sample_packet();
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.header_len(), 20);
        assert_eq!(pkt.total_len(), 40);
        assert_eq!(pkt.identification(), 0x1234);
        assert_eq!(pkt.ttl(), 64);
        assert_eq!(pkt.protocol(), IpProtocol::Tcp);
        assert_eq!(pkt.src(), Ipv4Addr::new(10, 1, 2, 3));
        assert_eq!(pkt.dst(), Ipv4Addr::new(192, 168, 0, 1));
        assert!(pkt.verify_checksum());
        assert_eq!(pkt.payload().len(), 20);
        assert!(!pkt.is_fragment());
        assert!(pkt.options().is_empty());
    }

    #[test]
    fn corrupted_checksum_detected() {
        let mut buf = sample_packet();
        buf[8] = 32; // change TTL without updating checksum
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(!pkt.verify_checksum());
    }

    #[test]
    fn reject_wrong_version() {
        let mut buf = sample_packet();
        buf[0] = 0x65;
        assert!(matches!(
            Ipv4Packet::new_checked(&buf[..]),
            Err(WireError::Malformed("ipv4 version"))
        ));
    }

    #[test]
    fn reject_bad_ihl() {
        let mut buf = sample_packet();
        buf[0] = 0x44; // IHL 4 -> 16 bytes, below minimum
        assert!(matches!(
            Ipv4Packet::new_checked(&buf[..]),
            Err(WireError::Malformed("ipv4 ihl"))
        ));
    }

    #[test]
    fn reject_total_len_below_header() {
        let mut buf = sample_packet();
        buf[2] = 0;
        buf[3] = 10;
        assert!(Ipv4Packet::new_checked(&buf[..]).is_err());
    }

    #[test]
    fn reject_truncated() {
        let buf = sample_packet();
        assert!(Ipv4Packet::new_checked(&buf[..19]).is_err());
    }

    #[test]
    fn payload_respects_total_len_with_padding() {
        // 60-byte buffer (Ethernet-padded) but total_len = 24.
        let mut buf = sample_packet();
        buf.resize(60, 0);
        buf[2] = 0;
        buf[3] = 24;
        // Checksum invalid now, but parseable.
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.payload().len(), 4);
    }

    #[test]
    fn fragment_flags() {
        let mut buf = sample_packet();
        buf[6] = 0x20; // MF set
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(pkt.more_frags() && pkt.is_fragment());
        buf[6] = 0x00;
        buf[7] = 0x08; // offset 8 (64 bytes)
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.frag_offset(), 8);
        assert!(pkt.is_fragment());
        buf[6] = 0x40;
        buf[7] = 0;
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(pkt.dont_frag() && !pkt.is_fragment());
    }

    #[test]
    fn options_parsed_with_larger_ihl() {
        let mut buf = [0u8; 32];
        buf[0] = 0x46; // IHL 6 -> 24 bytes
        buf[2] = 0;
        buf[3] = 32;
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.header_len(), 24);
        assert_eq!(pkt.options().len(), 4);
        assert_eq!(pkt.payload().len(), 8);
    }
}
