//! # retina-nic
//!
//! A virtual 100GbE NIC: the hardware substrate Retina runs on, simulated
//! in software.
//!
//! The paper deploys Retina on a Mellanox ConnectX-5 behind DPDK. This crate
//! reproduces the primitives that deployment provides, so the framework's
//! hardware-facing code paths (flow-rule synthesis and validation, RSS-based
//! load balancing, per-queue polling, loss accounting) are exercised
//! faithfully without physical hardware:
//!
//! - [`Mbuf`] / [`Mempool`] — reference-counted packet buffers with
//!   pool-level accounting, mirroring DPDK mbufs and mempools.
//! - [`rss`] — symmetric Toeplitz receive-side scaling, so both directions
//!   of a connection hash to the same core (§5.1).
//! - [`reta`] — the RSS redirection table, including the §6.1 trick of
//!   remapping a fraction of entries to a "sink" queue to control the
//!   effective ingress rate with per-flow consistency.
//! - [`flow`] — the hardware flow-rule engine with a per-device capability
//!   model: rules a given NIC cannot express are rejected at validation
//!   time, forcing the framework to fall back to broader rules plus software
//!   filtering, exactly as §4.1 describes for `tcp.port >= 100`.
//! - [`device`] — a multi-queue port tying the above together, with bounded
//!   descriptor rings and `rx_missed` loss accounting.
//! - [`faults`] — deterministic fault-injection hooks (mempool squeeze
//!   windows, RX-ring stalls, worker slowdowns) consulted by the device,
//!   so a chaos layer can reproduce production failure modes from a seed.

#![warn(missing_docs)]

pub mod device;
pub mod faults;
pub mod flow;
pub mod mbuf;
pub mod reta;
pub mod rss;

pub use device::{DeviceConfig, IngestOutcome, PortStats, PortStatsSnapshot, VirtualNic};
pub use faults::{FaultHooks, NoFaults};
pub use flow::{DeviceCaps, FlowAction, FlowRule, RuleItem};
pub use mbuf::{Mbuf, Mempool};
pub use reta::RedirectionTable;
pub use rss::RssHasher;
