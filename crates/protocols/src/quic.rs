//! QUIC long-header parsing (RFC 8999/9000).
//!
//! QUIC is the "extend the framework with a new protocol" example made
//! real: the module extracts what is visible *without* decryption — the
//! version and the connection IDs of Initial packets. (The ClientHello
//! inside a v1 Initial is encrypted with keys derived from the DCID;
//! recovering the SNI would require HKDF/AES-128-GCM, outside this
//! repository's dependency budget, so `quic.sni` is intentionally not a
//! field.)

// Narrowing casts in this file are intentional: wire formats pack values into fixed-width header fields.
#![allow(clippy::cast_possible_truncation)]

use retina_filter::FieldValue;

use crate::parser::{ConnParser, Direction, ParseResult, ProbeResult, Session, SessionState};

/// QUIC versions the probe recognizes.
const KNOWN_VERSIONS: [u32; 4] = [
    0x0000_0001, // v1 (RFC 9000)
    0x6b33_43cf, // v2 (RFC 9369)
    0xff00_001d, // draft-29
    0x0000_0000, // version negotiation
];

/// A parsed QUIC long header.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QuicHandshake {
    /// Wire version field.
    pub version: u32,
    /// Destination connection ID (client-chosen for Initials), hex.
    pub dcid: String,
    /// Source connection ID, hex.
    pub scid: String,
}

impl QuicHandshake {
    /// Field accessor backing [`retina_filter::SessionData`].
    pub fn field(&self, name: &str) -> Option<FieldValue<'_>> {
        match name {
            "version" => Some(FieldValue::Int(u64::from(self.version))),
            "dcid" => Some(FieldValue::Str(&self.dcid)),
            "scid" => Some(FieldValue::Str(&self.scid)),
            _ => None,
        }
    }
}

impl crate::parser::CustomSession for QuicHandshake {
    fn protocol(&self) -> &str {
        "quic"
    }

    fn field(&self, name: &str) -> Option<FieldValue<'_>> {
        QuicHandshake::field(self, name)
    }

    fn clone_box(&self) -> Box<dyn crate::parser::CustomSession> {
        Box::new(self.clone())
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Parses a long header from one UDP datagram payload.
fn parse_long_header(data: &[u8]) -> Option<QuicHandshake> {
    // Long form: bit 7 set; fixed bit (6) set except version negotiation.
    if data.len() < 7 || data[0] & 0x80 == 0 {
        return None;
    }
    let version = u32::from_be_bytes(data[1..5].try_into().ok()?);
    if !KNOWN_VERSIONS.contains(&version) {
        return None;
    }
    if version != 0 && data[0] & 0x40 == 0 {
        return None;
    }
    let dcid_len = usize::from(data[5]);
    if dcid_len > 20 || data.len() < 6 + dcid_len + 1 {
        return None;
    }
    let dcid = &data[6..6 + dcid_len];
    let scid_len = usize::from(data[6 + dcid_len]);
    if scid_len > 20 || data.len() < 7 + dcid_len + scid_len {
        return None;
    }
    let scid = &data[7 + dcid_len..7 + dcid_len + scid_len];
    Some(QuicHandshake {
        version,
        dcid: hex(dcid),
        scid: hex(scid),
    })
}

/// Builds a minimal v1 Initial-style long header followed by opaque
/// payload bytes (used by the traffic generator).
pub fn build_long_header(version: u32, dcid: &[u8], scid: &[u8], payload_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(7 + dcid.len() + scid.len() + payload_len);
    out.push(0xC0); // long form + fixed bit, type Initial
    out.extend_from_slice(&version.to_be_bytes());
    out.push(dcid.len() as u8);
    out.extend_from_slice(dcid);
    out.push(scid.len() as u8);
    out.extend_from_slice(scid);
    out.resize(out.len() + payload_len, 0xEB); // "encrypted" bytes
    out
}

/// Streaming QUIC parser: the first parseable long header yields the
/// session; everything after is encrypted and ignored.
#[derive(Debug, Default)]
pub struct QuicParser {
    sessions: Vec<Session>,
    done: bool,
}

impl QuicParser {
    /// Creates an empty parser.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ConnParser for QuicParser {
    fn name(&self) -> &'static str {
        "quic"
    }

    fn probe(&self, data: &[u8], _dir: Direction) -> ProbeResult {
        if data.is_empty() {
            return ProbeResult::Unsure;
        }
        if data[0] & 0x80 == 0 {
            // Short header first: could be mid-connection QUIC, but
            // indistinguishable from noise — not ours.
            return ProbeResult::NotForUs;
        }
        if data.len() < 7 {
            return ProbeResult::Unsure;
        }
        if parse_long_header(data).is_some() {
            ProbeResult::Certain
        } else {
            ProbeResult::NotForUs
        }
    }

    fn parse(&mut self, data: &[u8], _dir: Direction) -> ParseResult {
        if self.done {
            return ParseResult::Done;
        }
        match parse_long_header(data) {
            Some(hs) => {
                self.done = true;
                self.sessions.push(Session::Custom(Box::new(hs)));
                ParseResult::Done
            }
            None => ParseResult::Continue, // short-header / coalesced data
        }
    }

    fn drain_sessions(&mut self) -> Vec<Session> {
        std::mem::take(&mut self.sessions)
    }

    fn session_match_state(&self) -> SessionState {
        // Everything after the first packets is encrypted: stop.
        SessionState::Remove
    }

    fn session_nomatch_state(&self) -> SessionState {
        SessionState::Remove
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retina_filter::SessionData;

    #[test]
    fn long_header_roundtrip() {
        let pkt = build_long_header(1, &[0xAA, 0xBB, 0xCC], &[0x11], 120);
        let mut p = QuicParser::new();
        assert_eq!(p.probe(&pkt, Direction::ToServer), ProbeResult::Certain);
        assert_eq!(p.parse(&pkt, Direction::ToServer), ParseResult::Done);
        let sessions = p.drain_sessions();
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].protocol(), "quic");
        assert!(matches!(
            sessions[0].field("version"),
            Some(FieldValue::Int(1))
        ));
        assert!(matches!(
            sessions[0].field("dcid"),
            Some(FieldValue::Str("aabbcc"))
        ));
        assert!(matches!(
            sessions[0].field("scid"),
            Some(FieldValue::Str("11"))
        ));
    }

    #[test]
    fn probe_rejects_non_quic() {
        let p = QuicParser::new();
        assert_eq!(
            p.probe(b"GET / HTTP/1.1", Direction::ToServer),
            ProbeResult::NotForUs
        );
        // DNS query: high bits clear.
        let dns = crate::dns::build_query(0x1234, "a.example", 1);
        assert_eq!(p.probe(&dns, Direction::ToServer), ProbeResult::NotForUs);
        // Long form but unknown version.
        let mut bogus = build_long_header(1, &[1], &[2], 10);
        bogus[1..5].copy_from_slice(&0xdeadbeefu32.to_be_bytes());
        assert_eq!(p.probe(&bogus, Direction::ToServer), ProbeResult::NotForUs);
    }

    #[test]
    fn version_negotiation_parses() {
        let mut pkt = build_long_header(0, &[9; 8], &[7; 8], 0);
        pkt[0] = 0x80; // VN packets may clear the fixed bit
        assert!(parse_long_header(&pkt).is_some());
    }

    #[test]
    fn malformed_headers_rejected() {
        assert!(parse_long_header(&[]).is_none());
        assert!(parse_long_header(&[0xC0, 0, 0, 0, 1]).is_none()); // truncated
        let mut long_cid = build_long_header(1, &[1; 20], &[2], 0);
        long_cid[5] = 21; // dcid_len over RFC bound
        assert!(parse_long_header(&long_cid).is_none());
    }

    #[test]
    fn short_header_then_long_header() {
        // Mid-connection pickup: first datagram is a short header; the
        // parser keeps waiting, then catches a retransmitted Initial.
        let mut p = QuicParser::new();
        assert_eq!(
            p.parse(&[0x40, 1, 2, 3], Direction::ToClient),
            ParseResult::Continue
        );
        let init = build_long_header(1, &[5; 4], &[6; 4], 50);
        assert_eq!(p.parse(&init, Direction::ToServer), ParseResult::Done);
    }
}
