use core::fmt;

/// Errors produced while parsing or emitting wire-format data.
///
/// Parsing in this crate is total: any byte buffer either yields a valid
/// view or one of these errors. No parser panics on untrusted input, which
/// is a core security requirement of the framework (§2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is too short to contain the fixed header of the protocol.
    Truncated {
        /// Minimum number of bytes required.
        needed: usize,
        /// Number of bytes actually available.
        got: usize,
    },
    /// The buffer is long enough but a field has an invalid value
    /// (e.g. an IPv4 IHL below 5, or a version nibble mismatch).
    Malformed(&'static str),
    /// The payload uses a protocol this crate does not parse.
    Unsupported(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated: need {needed} bytes, have {got}")
            }
            WireError::Malformed(what) => write!(f, "malformed {what}"),
            WireError::Unsupported(what) => write!(f, "unsupported {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Convenience alias for results of wire-format operations.
pub type WireResult<T> = Result<T, WireError>;

/// Checks that `buf` holds at least `needed` bytes.
pub(crate) fn check_len(buf: &[u8], needed: usize) -> WireResult<()> {
    if buf.len() < needed {
        Err(WireError::Truncated {
            needed,
            got: buf.len(),
        })
    } else {
        Ok(())
    }
}
