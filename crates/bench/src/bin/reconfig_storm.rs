//! Reconfiguration storm smoke: gates the live hot-swap layer
//! (epoch-based RCU reconfiguration, PR 9) end to end.
//!
//! Three checks:
//!
//! 1. **Stepped equivalence** — `run_stepped_with_swap` at the workload
//!    midpoint across three seeded schedules: accounting stays exact
//!    and the surviving subscription's digest is byte-identical to a
//!    no-swap control run over the same traffic.
//! 2. **Orphan drain** — a stepped swap that removes a connection's
//!    last subscription must drain it through the `conns_swapped`
//!    accounting lane, keeping the conn identity
//!    (`created == discarded + terminated + expired + drained + swapped`)
//!    green.
//! 3. **Threaded storm** — a running 2-core `MultiRuntime` absorbs a
//!    back-and-forth sequence of live swaps (remove/re-add a
//!    subscription, add/drop a UDP log) against a gated wire: zero
//!    loss, exact accounting, strictly monotone swap generations, and
//!    every worker acknowledging every epoch (one pickup lag per core
//!    per swap).
//!
//! With `--json-out PATH` the results merge into the CI bench file
//! (see `retina_bench::ci`); `scripts/bench_gate.sh` compares them
//! against the committed baseline.

use std::process::exit;
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use retina_bench::{bench_args, ci};
use retina_core::subscribables::ConnRecord;
use retina_core::{
    MultiRuntime, RuntimeBuilder, RuntimeConfig, StepConfig, SwapSpec, TrafficSource,
};
use retina_filter::CompiledFilter;
use retina_support::bytes::Bytes;
use retina_trafficgen::campus::{generate, CampusConfig};

/// Worker cores for every phase.
const CORES: u16 = 2;

fn fail(msg: &str) -> ! {
    eprintln!("reconfig storm FAILED: {msg}");
    exit(1);
}

/// Original configuration: an all-TCP connection log (survives every
/// swap) plus a port-443 log (removed and re-added by the storm).
fn build(cfg: RuntimeConfig) -> MultiRuntime<CompiledFilter> {
    RuntimeBuilder::new(cfg)
        .subscribe_named::<ConnRecord>("conns", "ipv4 and tcp", |_| {})
        .subscribe_named::<ConnRecord>("tls443", "ipv4 and tcp.port = 443", |_| {})
        .build()
        .expect("runtime builds")
}

/// Swap target B: keep `conns`, drop `tls443`, add a UDP log.
fn spec_b() -> SwapSpec {
    SwapSpec::new()
        .subscribe_named::<ConnRecord>("conns", "ipv4 and tcp", |_| {})
        .subscribe_named::<ConnRecord>("udp-conns", "udp", |_| {})
}

/// Swap target A: back to the original shape (re-adds `tls443`).
fn spec_a() -> SwapSpec {
    SwapSpec::new()
        .subscribe_named::<ConnRecord>("conns", "ipv4 and tcp", |_| {})
        .subscribe_named::<ConnRecord>("tls443", "ipv4 and tcp.port = 443", |_| {})
}

/// A [`TrafficSource`] that parks the wire at each boundary until the
/// gate fires once — so the storm driver can line up a live swap with
/// an exactly-known number of offered frames, keeping the run
/// repeatable.
struct StormSource {
    packets: Vec<(Bytes, u64)>,
    boundaries: Vec<usize>,
    next_gate: usize,
    gate: mpsc::Receiver<()>,
    cursor: usize,
}

impl TrafficSource for StormSource {
    fn next_batch(&mut self, out: &mut Vec<(Bytes, u64)>) -> bool {
        const BATCH: usize = 256;
        if self.next_gate < self.boundaries.len() && self.cursor >= self.boundaries[self.next_gate]
        {
            let _ = self.gate.recv();
            self.next_gate += 1;
        }
        if self.cursor >= self.packets.len() {
            return false;
        }
        let mut end = (self.cursor + BATCH).min(self.packets.len());
        if self.next_gate < self.boundaries.len() {
            end = end.min(self.boundaries[self.next_gate]);
        }
        out.extend(self.packets[self.cursor..end].iter().cloned());
        self.cursor = end;
        true
    }
}

fn main() {
    let args = bench_args();
    let packets = generate(&CampusConfig {
        seed: 0x5AFE,
        target_packets: if args.quick {
            6_000
        } else {
            args.packets.min(60_000)
        },
        duration_secs: 5.0,
        ..CampusConfig::default()
    });
    let offered = packets.len();
    let swaps: usize = if args.quick { 4 } else { 8 };
    println!("reconfig storm: {offered} packets, {swaps} live swaps");
    let t0 = Instant::now();

    // 1. Stepped equivalence: the surviving subscription's ledger is
    //    byte-identical with and without a midpoint swap, across three
    //    seeded schedules.
    let mid = (offered / 2) as u64;
    for seed in [1u64, 2, 3] {
        let control = build(RuntimeConfig::with_cores(CORES))
            .run_stepped(&packets, &StepConfig::seeded(seed));
        if let Err(msg) = control.check_accounting() {
            fail(&format!("control accounting (seed {seed}): {msg}"));
        }
        let swapped = build(RuntimeConfig::with_cores(CORES))
            .run_stepped_with_swap(&packets, &StepConfig::seeded(seed), mid, &spec_b())
            .unwrap_or_else(|e| fail(&format!("stepped swap rejected (seed {seed}): {e}")));
        if let Err(msg) = swapped.check_accounting() {
            fail(&format!("stepped swap accounting (seed {seed}): {msg}"));
        }
        if swapped.sub_digest("conns") != control.sub_digest("conns") {
            fail(&format!(
                "survivor 'conns' digest diverged from the no-swap control at seed {seed}"
            ));
        }
        let udp = swapped
            .subs
            .iter()
            .find(|s| s.name == "udp-conns")
            .unwrap_or_else(|| fail("no report row for the added udp-conns subscription"));
        if udp.delivered == 0 {
            fail("added udp-conns subscription never delivered after the swap");
        }
    }
    println!("  stepped: survivor digest matches no-swap control across 3 schedules");

    // 2. Orphan drain: removing a connection's last subscription must
    //    route it through the conns_swapped accounting lane.
    let orphan_rt = RuntimeBuilder::new(RuntimeConfig::with_cores(CORES))
        .subscribe_named::<ConnRecord>("conns", "ipv4 and tcp", |_| {})
        .subscribe_named::<ConnRecord>("udp-conns", "udp", |_| {})
        .build()
        .expect("runtime builds");
    let to_tcp_only =
        SwapSpec::new().subscribe_named::<ConnRecord>("conns", "ipv4 and tcp", |_| {});
    let orphaned = orphan_rt
        .run_stepped_with_swap(&packets, &StepConfig::seeded(7), mid, &to_tcp_only)
        .unwrap_or_else(|e| fail(&format!("orphan swap rejected: {e}")));
    if let Err(msg) = orphaned.check_accounting() {
        fail(&format!("orphan swap accounting: {msg}"));
    }
    let conns_swapped_stepped = orphaned.cores.conns_swapped;
    if conns_swapped_stepped == 0 {
        fail("swap removed the UDP log but no connection was accounted as swapped");
    }
    println!("  orphan drain: {conns_swapped_stepped} connections accounted as swapped");

    // 3. Threaded storm: alternate B/A swaps against a live runtime,
    //    each lined up with a parked wire at a known frame boundary.
    let boundaries: Vec<usize> = (1..=swaps).map(|k| k * offered / (swaps + 1)).collect();
    let (tx, rx) = mpsc::channel();
    let source = StormSource {
        packets: packets.clone(),
        boundaries: boundaries.clone(),
        next_gate: 0,
        gate: rx,
        cursor: 0,
    };
    let mut rt = build(RuntimeConfig::with_cores(CORES));
    let controller = rt.swap_controller();
    let nic = Arc::clone(rt.nic());
    let handle = thread::spawn(move || rt.run(source));
    let mut max_lag_us: u64 = 0;
    for (k, boundary) in boundaries.iter().enumerate() {
        let deadline = Instant::now() + Duration::from_secs(30);
        while nic.stats().rx_offered < *boundary as u64 {
            if Instant::now() > deadline {
                fail(&format!(
                    "wire never reached swap boundary {k} ({boundary} frames)"
                ));
            }
            thread::sleep(Duration::from_millis(1));
        }
        let spec = if k % 2 == 0 { spec_b() } else { spec_a() };
        let event = controller
            .swap(&spec)
            .unwrap_or_else(|e| fail(&format!("live swap {k} rejected: {e}")));
        if event.generation != (k + 1) as u64 {
            fail(&format!(
                "swap {k} published generation {} (expected {})",
                event.generation,
                k + 1
            ));
        }
        if event.pickup_lag_us.len() != CORES as usize {
            fail(&format!(
                "swap {k} recorded {} pickup lags (expected one per core)",
                event.pickup_lag_us.len()
            ));
        }
        if event.retired_at < event.published_at {
            fail(&format!("swap {k} retired before it published"));
        }
        max_lag_us = max_lag_us.max(event.pickup_lag_us.iter().copied().max().unwrap_or(0));
        tx.send(()).expect("release the wire");
    }
    let report = handle.join().expect("runtime thread");
    if !report.zero_loss() {
        fail("threaded storm lost frames across the swap sequence");
    }
    if let Err(msg) = report.check_accounting() {
        fail(&format!("threaded storm accounting: {msg}"));
    }
    let survivor = report
        .subs
        .iter()
        .find(|s| s.name == "conns")
        .unwrap_or_else(|| fail("no report row for the surviving conns subscription"));
    if survivor.delivered == 0 {
        fail("surviving subscription delivered nothing across the storm");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    println!(
        "  threaded: {swaps} swaps, survivor delivered {}, {} conns swapped, max pickup lag {max_lag_us}us",
        survivor.delivered, report.cores.conns_swapped
    );
    println!("reconfig storm OK ({elapsed:.2}s)");

    if let Some(path) = &args.json_out {
        let metrics: Vec<(&str, f64)> = vec![
            ("packets", offered as f64),
            ("swaps_completed", swaps as f64),
            ("zero_loss", 1.0),
            ("accounting_ok", 1.0),
            ("digest_match", 1.0),
            ("orphans_drained", 1.0),
            ("generations_monotone", 1.0),
            ("pickups_complete", 1.0),
            ("_survivor_delivered", survivor.delivered as f64),
            ("_conns_swapped_stepped", conns_swapped_stepped as f64),
            ("_conns_swapped_threaded", report.cores.conns_swapped as f64),
            ("_pickup_lag_max_us", max_lag_us as f64),
            ("_elapsed_secs", elapsed),
        ];
        ci::merge_section(path, "reconfig_storm", &metrics).expect("write json-out");
        println!("merged section reconfig_storm into {path}");
        ci::print_gate_keys("reconfig_storm", &metrics);
    }
}
