//! Telemetry smoke test: runs the campus mix through the full pipeline
//! with every exporter attached and validates the observability
//! contract end to end:
//!
//! 1. the JSON exporter's output parses and carries the final snapshot,
//! 2. the run's accounting invariants hold (every ingress packet and
//!    created connection attributed to exactly one outcome),
//! 3. the CSV exporter's header matches the documented column set,
//! 4. the Prometheus exposition contains the drop taxonomy.
//!
//! Exits non-zero on any violation; `scripts/verify.sh` runs this with
//! `--quick` as a release-mode gate.

use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

use retina_bench::{bench_args, ci};
use retina_core::subscribables::ConnRecord;
use retina_core::telemetry::{json, CsvSink, JsonSink, LogSink, PrometheusSink, Sample, SharedBuf};
use retina_core::{compile, Monitor, Runtime, RuntimeConfig, StageSummary, TrafficSource};
use retina_support::bytes::Bytes;
use retina_trafficgen::campus::{generate, CampusConfig};

/// Dribbles batches so the monitor gets several sampling intervals.
struct DribbleSource(Vec<(Bytes, u64)>);

impl TrafficSource for DribbleSource {
    fn next_batch(&mut self, out: &mut Vec<(Bytes, u64)>) -> bool {
        if self.0.is_empty() {
            return false;
        }
        let n = self.0.len().min(2048);
        out.extend(self.0.drain(..n));
        std::thread::sleep(Duration::from_millis(1));
        true
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("telemetry smoke FAILED: {msg}");
    exit(1);
}

fn main() {
    let args = bench_args();
    let packets = generate(&CampusConfig {
        target_packets: args.packets.min(120_000),
        duration_secs: 30.0,
        ..CampusConfig::default()
    });
    let offered = packets.len();
    println!("telemetry smoke: {offered} packets through all four exporters");

    let mut config = RuntimeConfig::with_cores(2);
    config.profile_stages = true;
    config.paced_ingest = true;
    let filter = compile("tls").unwrap();
    let mut runtime = Runtime::<ConnRecord, _>::new(config, filter, |_rec| {}).expect("runtime");

    let log_buf = SharedBuf::new();
    let csv_buf = SharedBuf::new();
    let json_buf = SharedBuf::new();
    let prom_buf = SharedBuf::new();
    let monitor = Monitor::start_with_sinks(
        Arc::clone(runtime.nic()),
        runtime.gauges(),
        Duration::from_millis(5),
        vec![
            Box::new(LogSink::new(log_buf.clone())),
            Box::new(CsvSink::new(csv_buf.clone())),
            Box::new(JsonSink::new(json_buf.clone())),
            Box::new(PrometheusSink::new(prom_buf.clone())),
        ],
    );

    let report = runtime.run(DribbleSource(packets));
    let samples = monitor.stop_with_snapshot(report.telemetry());
    println!(
        "run complete: {} delivered, {} conns, {} samples",
        report.nic.rx_delivered,
        report.cores.conns_created,
        samples.len()
    );

    // 1. Accounting: every packet and connection has exactly one outcome.
    if let Err(msg) = report.check_accounting() {
        fail(&format!("accounting invariant violated: {msg}"));
    }
    let drops = report.drop_breakdown();
    let expected_conn_drops = report.cores.discard_conn_filter
        + report.cores.discard_session_filter
        + report.cores.conns_expired;
    if drops.conn_total() != expected_conn_drops {
        fail("drop breakdown disagrees with core counters");
    }

    // 2. JSON exporter output parses and round-trips key values.
    let doc = match json::parse(&json_buf.contents()) {
        Ok(doc) => doc,
        Err(e) => fail(&format!("JSON exporter output does not parse: {e}")),
    };
    let Some(final_) = doc.get("final") else {
        fail("JSON output missing \"final\"");
    };
    let delivered = final_
        .get("counters")
        .and_then(|c| c.get("nic.rx_delivered"))
        .and_then(json::Json::as_u64);
    if delivered != Some(report.nic.rx_delivered) {
        fail(&format!(
            "JSON final.counters[nic.rx_delivered] = {delivered:?}, want {}",
            report.nic.rx_delivered
        ));
    }
    let n_samples = doc
        .get("samples")
        .and_then(json::Json::as_arr)
        .map(<[json::Json]>::len);
    if n_samples != Some(samples.len()) {
        fail(&format!(
            "JSON samples array has {n_samples:?} entries, monitor collected {}",
            samples.len()
        ));
    }

    // 3. CSV: header is the documented column set; rows match it.
    let csv = csv_buf.contents();
    if samples.is_empty() {
        println!("note: run too fast for any monitor sample; skipping CSV row checks");
    } else {
        let mut lines = csv.lines();
        if lines.next() != Some(Sample::CSV_HEADER) {
            fail("CSV header does not match Sample::CSV_HEADER");
        }
        let n_cols = Sample::CSV_HEADER.split(',').count();
        for row in lines {
            if row.split(',').count() != n_cols {
                fail(&format!("CSV row has wrong arity: {row}"));
            }
        }
    }

    // 4. Prometheus exposition carries the full drop taxonomy and the
    //    stage summaries.
    let prom = prom_buf.contents();
    for reason in retina_core::DropReason::ALL {
        if !prom.contains(&format!(
            "retina_drop_total{{reason=\"{}\"}}",
            reason.label()
        )) {
            fail(&format!("Prometheus output missing drop reason {reason}"));
        }
    }
    if !prom.contains("retina_stage_cycles{stage=\"packet_filter\",quantile=\"0.99\"}") {
        fail("Prometheus output missing stage quantile series");
    }

    // 5. Log sink produced the final drop table.
    if !log_buf.contents().contains("final drop breakdown:") {
        fail("log sink missing final summary");
    }

    // 6. Stage percentiles are ordered and the snapshot exposes them.
    let snap = report.telemetry();
    for (name, stage) in &snap.stages {
        if !(stage.p50() <= stage.p95() && stage.p95() <= stage.p99()) {
            fail(&format!("stage {name} percentiles out of order"));
        }
    }
    if snap.stage("packet_filter").map(|s| s.runs) != Some(report.cores.packet_filter.runs) {
        fail("snapshot stage runs disagree with core stats");
    }

    println!("telemetry smoke OK: accounting exact, all four exporters consistent");
    println!("  drops: {}", {
        let mut parts = Vec::new();
        for (reason, n) in drops.iter() {
            parts.push(format!("{reason}={n}"));
        }
        parts.join(" ")
    });
    println!(
        "  mbuf high-water: {} buffers; stage p99 (cycles): packet_filter={} conn_tracking={}",
        report.mbuf_high_water,
        snap.stage("packet_filter").map_or(0, StageSummary::p99),
        snap.stage("conn_tracking").map_or(0, StageSummary::p99),
    );

    if let Some(path) = &args.json_out {
        // Gated metrics are deterministic for this seeded workload
        // (paced ingest, static sink); wall-clock-dependent numbers are
        // record-only ("_" prefix).
        let metrics: Vec<(&str, f64)> = vec![
            ("packets", offered as f64),
            ("delivered", report.nic.rx_delivered as f64),
            ("zero_loss", if report.zero_loss() { 1.0 } else { 0.0 }),
            ("accounting_ok", 1.0),
            ("exporters_ok", 1.0),
            ("_gbps", report.gbps()),
            ("_conns_created", report.cores.conns_created as f64),
            ("_samples", samples.len() as f64),
            ("_mbuf_high_water", report.mbuf_high_water as f64),
        ];
        if let Err(e) = ci::merge_section(path, "telemetry_smoke", &metrics) {
            fail(&format!("writing {path}: {e}"));
        }
        println!("  metrics merged into {path}");
        ci::print_gate_keys("telemetry_smoke", &metrics);
    }
}
