//! Connection identity: five-tuples and canonical table keys.

use std::net::{IpAddr, Ipv4Addr, SocketAddr};

use retina_wire::ParsedPacket;

/// Packet direction relative to the connection originator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Originator → responder.
    OrigToResp,
    /// Responder → originator.
    RespToOrig,
}

impl Dir {
    /// Flips the direction.
    pub fn flip(self) -> Dir {
        match self {
            Dir::OrigToResp => Dir::RespToOrig,
            Dir::RespToOrig => Dir::OrigToResp,
        }
    }
}

/// A connection five-tuple with originator/responder orientation.
///
/// The *originator* is whichever endpoint sent the first packet the
/// framework observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FiveTuple {
    /// Originator endpoint.
    pub orig: SocketAddr,
    /// Responder endpoint.
    pub resp: SocketAddr,
    /// IP protocol number (6 = TCP, 17 = UDP, …).
    pub proto: u8,
}

impl FiveTuple {
    /// Builds the tuple from a packet, treating its source as originator.
    pub fn from_packet(pkt: &ParsedPacket) -> FiveTuple {
        FiveTuple {
            orig: SocketAddr::new(pkt.src_ip, pkt.src_port),
            resp: SocketAddr::new(pkt.dst_ip, pkt.dst_port),
            proto: pkt.protocol.into(),
        }
    }

    /// The canonical, direction-independent table key.
    pub fn key(&self) -> ConnKey {
        ConnKey::new(self.orig, self.resp, self.proto)
    }

    /// The direction of a packet within this connection, or `None` if the
    /// packet belongs to a different connection.
    pub fn dir_of(&self, pkt: &ParsedPacket) -> Option<Dir> {
        let src = SocketAddr::new(pkt.src_ip, pkt.src_port);
        let dst = SocketAddr::new(pkt.dst_ip, pkt.dst_port);
        if src == self.orig && dst == self.resp {
            Some(Dir::OrigToResp)
        } else if src == self.resp && dst == self.orig {
            Some(Dir::RespToOrig)
        } else {
            None
        }
    }
}

impl std::fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} -> {} (proto {})", self.orig, self.resp, self.proto)
    }
}

/// Canonical connection key: the endpoint pair ordered so both directions
/// of a connection hash identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnKey {
    lo: SocketAddr,
    hi: SocketAddr,
    proto: u8,
}

impl ConnKey {
    /// Builds a key from an endpoint pair.
    pub fn new(a: SocketAddr, b: SocketAddr, proto: u8) -> ConnKey {
        let (lo, hi) = if cmp_addr(&a, &b) <= std::cmp::Ordering::Equal {
            (a, b)
        } else {
            (b, a)
        };
        ConnKey { lo, hi, proto }
    }

    /// Builds the key for a packet's connection.
    pub fn from_packet(pkt: &ParsedPacket) -> ConnKey {
        ConnKey::new(
            SocketAddr::new(pkt.src_ip, pkt.src_port),
            SocketAddr::new(pkt.dst_ip, pkt.dst_port),
            pkt.protocol.into(),
        )
    }

    /// IP protocol number.
    pub fn proto(&self) -> u8 {
        self.proto
    }
}

fn cmp_addr(a: &SocketAddr, b: &SocketAddr) -> std::cmp::Ordering {
    fn ip_key(ip: &IpAddr) -> (u8, u128) {
        match ip {
            IpAddr::V4(v4) => (4, u128::from(u32::from(*v4))),
            IpAddr::V6(v6) => (6, u128::from(*v6)),
        }
    }
    ip_key(&a.ip())
        .cmp(&ip_key(&b.ip()))
        .then(a.port().cmp(&b.port()))
}

/// A placeholder address for empty slots (used by tests).
pub fn unspecified() -> SocketAddr {
    SocketAddr::new(IpAddr::V4(Ipv4Addr::UNSPECIFIED), 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use retina_wire::build::{build_tcp, TcpSpec};
    use retina_wire::TcpFlags;

    fn pkt(src: &str, dst: &str) -> ParsedPacket {
        let frame = build_tcp(&TcpSpec {
            src: src.parse().unwrap(),
            dst: dst.parse().unwrap(),
            seq: 0,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 64,
            ttl: 64,
            payload: b"",
        });
        ParsedPacket::parse(&frame).unwrap()
    }

    #[test]
    fn key_is_direction_independent() {
        let fwd = ConnKey::from_packet(&pkt("10.0.0.1:5000", "1.1.1.1:443"));
        let rev = ConnKey::from_packet(&pkt("1.1.1.1:443", "10.0.0.1:5000"));
        assert_eq!(fwd, rev);
        assert_eq!(fwd.proto(), 6);
    }

    #[test]
    fn different_connections_different_keys() {
        let a = ConnKey::from_packet(&pkt("10.0.0.1:5000", "1.1.1.1:443"));
        let b = ConnKey::from_packet(&pkt("10.0.0.1:5001", "1.1.1.1:443"));
        let c = ConnKey::from_packet(&pkt("10.0.0.2:5000", "1.1.1.1:443"));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn five_tuple_orientation() {
        let first = pkt("10.0.0.1:5000", "1.1.1.1:443");
        let tuple = FiveTuple::from_packet(&first);
        assert_eq!(tuple.orig.port(), 5000);
        assert_eq!(tuple.resp.port(), 443);
        assert_eq!(tuple.dir_of(&first), Some(Dir::OrigToResp));
        let reply = pkt("1.1.1.1:443", "10.0.0.1:5000");
        assert_eq!(tuple.dir_of(&reply), Some(Dir::RespToOrig));
        let other = pkt("9.9.9.9:1:".trim_end_matches(':'), "1.1.1.1:443");
        assert_eq!(tuple.dir_of(&other), None);
    }

    #[test]
    fn v6_and_v4_keys_disjoint() {
        let v4 = ConnKey::from_packet(&pkt("10.0.0.1:5000", "1.1.1.1:443"));
        let v6 = ConnKey::from_packet(&pkt("[2001:db8::1]:5000", "[2001:db8::2]:443"));
        assert_ne!(v4, v6);
    }

    #[test]
    fn dir_flip() {
        assert_eq!(Dir::OrigToResp.flip(), Dir::RespToOrig);
        assert_eq!(Dir::RespToOrig.flip(), Dir::OrigToResp);
    }

    retina_support::proptest! {
        #[test]
        fn key_symmetry_property(
            a in retina_support::proptest::any::<u32>(),
            b in retina_support::proptest::any::<u32>(),
            pa in retina_support::proptest::any::<u16>(),
            pb in retina_support::proptest::any::<u16>(),
        ) {
            let sa = SocketAddr::new(IpAddr::V4(a.into()), pa);
            let sb = SocketAddr::new(IpAddr::V4(b.into()), pb);
            retina_support::prop_assert_eq!(ConnKey::new(sa, sb, 6), ConnKey::new(sb, sa, 6));
        }
    }
}
