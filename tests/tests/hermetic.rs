//! Guards the workspace's zero-dependency invariant.
//!
//! The whole tree must build and test offline with only the standard
//! library: every dependency in every manifest has to be an in-tree
//! path dependency (directly or via `workspace = true` inheritance),
//! and the lockfile must not reference any registry. A crates.io
//! dependency sneaking into any `Cargo.toml` fails here before it fails
//! in an offline build.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // tests/ is a direct member of the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("tests/ has a parent")
        .to_path_buf()
}

fn member_manifests(root: &Path) -> Vec<PathBuf> {
    let mut out = vec![root.join("Cargo.toml")];
    for dir in ["examples", "tests"] {
        out.push(root.join(dir).join("Cargo.toml"));
    }
    let crates = root.join("crates");
    let mut entries: Vec<_> = std::fs::read_dir(&crates)
        .expect("crates/ exists")
        .map(|e| e.expect("readable dir entry").path())
        .collect();
    entries.sort();
    for entry in entries {
        let manifest = entry.join("Cargo.toml");
        if manifest.is_file() {
            out.push(manifest);
        }
    }
    out
}

/// Extracts `name = spec` entries from the dependency-ish sections of a
/// manifest. A deliberately small TOML subset: sections are `[header]`
/// lines, entries are `key = value` lines; that is all our manifests
/// use, and `cargo metadata` isn't callable offline from a unit test.
fn dependency_entries(toml: &str) -> BTreeMap<String, String> {
    let mut deps = BTreeMap::new();
    let mut section = String::new();
    for raw in toml.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') && line.ends_with(']') {
            section = line[1..line.len() - 1].trim().to_string();
            continue;
        }
        let is_dep_section = matches!(
            section.as_str(),
            "dependencies" | "dev-dependencies" | "build-dependencies" | "workspace.dependencies"
        ) || section.starts_with("target.");
        if !is_dep_section {
            continue;
        }
        if let Some((name, spec)) = line.split_once('=') {
            deps.insert(
                format!("{section}.{}", name.trim()),
                spec.trim().to_string(),
            );
        }
    }
    deps
}

#[test]
fn every_manifest_dependency_is_in_tree() {
    let root = workspace_root();
    for manifest in member_manifests(&root) {
        let toml = std::fs::read_to_string(&manifest)
            .unwrap_or_else(|e| panic!("read {}: {e}", manifest.display()));
        for (name, spec) in dependency_entries(&toml) {
            let in_tree = spec.contains("path =")
                || spec.contains("path=")
                || spec.contains("workspace = true")
                || spec.contains("workspace=true");
            assert!(
                in_tree,
                "{}: dependency `{name} = {spec}` is not an in-tree path \
                 dependency; the workspace must stay buildable offline with \
                 no registry packages (see retina-support)",
                manifest.display()
            );
        }
    }
}

#[test]
fn workspace_dependency_table_only_names_workspace_crates() {
    let root = workspace_root();
    let toml = std::fs::read_to_string(root.join("Cargo.toml")).expect("root manifest");
    for (name, spec) in dependency_entries(&toml) {
        let Some(dep) = name.strip_prefix("workspace.dependencies.") else {
            continue;
        };
        assert!(
            dep.starts_with("retina-"),
            "workspace dependency `{dep}` is not a workspace crate: {spec}"
        );
        assert!(
            spec.contains("path ="),
            "workspace dependency `{dep}` must use a path spec, got: {spec}"
        );
    }
}

#[test]
fn lockfile_has_no_registry_sources() {
    let root = workspace_root();
    let lock = std::fs::read_to_string(root.join("Cargo.lock")).expect("Cargo.lock exists");
    for line in lock.lines() {
        let line = line.trim();
        assert!(
            !line.starts_with("source ="),
            "Cargo.lock references an external source: {line}"
        );
        assert!(
            !line.starts_with("checksum ="),
            "Cargo.lock carries a registry checksum: {line}"
        );
    }
    assert!(
        lock.contains("name = \"retina-support\""),
        "Cargo.lock should lock the in-tree support crate"
    );
}

#[test]
fn no_legacy_proptest_regression_files() {
    // Regression seeds from the previous proptest harness are pinned as
    // explicit named tests now (see oracle.rs); stray seed files would
    // silently stop replaying.
    fn scan(dir: &Path, hits: &mut Vec<PathBuf>) {
        for entry in std::fs::read_dir(dir).expect("readable dir") {
            let path = entry.expect("dir entry").path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name == ".git" {
                continue;
            }
            if path.is_dir() {
                scan(&path, hits);
            } else if name.ends_with(".proptest-regressions") {
                hits.push(path);
            }
        }
    }
    let mut hits = Vec::new();
    scan(&workspace_root(), &mut hits);
    assert!(
        hits.is_empty(),
        "legacy proptest regression files present: {hits:?}; \
         port their shrunk cases into explicit #[test] regressions"
    );
}
