#!/usr/bin/env bash
# CI pipeline, split into named stages so a failure is attributable at
# a glance. Runs every requested stage even after one fails, then
# summarizes. Everything is offline — no network, no registry.
#
#   scripts/ci.sh                 # all stages, in order
#   scripts/ci.sh fmt clippy      # just these stages
#
# Stages:
#   fmt           cargo fmt --check (no diffs tolerated)
#   clippy        cargo clippy --offline --all-targets -- -D warnings
#   pedantic      curated clippy::pedantic subset, denied (see below)
#   safety        every unsafe site carries a // SAFETY: comment
#   lint-filters  retina-flint --json over scripts/filters.flt (the
#                 filters used by benches/examples); fails on E-codes
#   build         release build of every lib and binary
#   doc           cargo doc --offline --no-deps with warnings denied
#   test          cargo test -q --offline (whole workspace)
#   smoke         telemetry_smoke + governor_storm + fig_multi +
#                 dispatch_storm + fig9 (--quick), emitting
#                 results/BENCH_ci.json
#   trace-overhead  trace_smoke (--quick): proves tracing disabled
#                 costs <1% and 1-in-1024 sampling <5% on the
#                 telemetry-smoke workload, merging trace_off_overhead
#                 and trace_sampled_overhead into results/BENCH_ci.json
#   churn         churn_storm (--quick): scan-heavy conn-table churn
#                 with exact accounting, merging conns_peak and the
#                 arena memory high-water into results/BENCH_ci.json
#   reconfig      reconfig_storm (--quick): live hot-swap storm — stepped
#                 survivor-digest equivalence, conns_swapped orphan
#                 drain, and a threaded back-and-forth swap sequence
#                 with zero loss, merging its pass/fail keys into
#                 results/BENCH_ci.json
#   bench-gate    scripts/bench_gate.sh vs results/BENCH_baseline.json
set -uo pipefail
cd "$(dirname "$0")/.."

ALL_STAGES=(fmt clippy pedantic safety lint-filters build doc test smoke trace-overhead churn reconfig bench-gate)
if [ "$#" -gt 0 ]; then STAGES=("$@"); else STAGES=("${ALL_STAGES[@]}"); fi

FAILED=()

run_stage() {
    local name="$1"
    shift
    echo
    echo "==> CI stage: ${name}"
    if "$@"; then
        echo "==> CI stage ${name}: OK"
    else
        echo "==> CI stage ${name}: FAILED"
        FAILED+=("$name")
    fi
}

stage_fmt() { cargo fmt --check; }

stage_clippy() { cargo clippy --offline --all-targets -- -D warnings; }

# Curated subset of clippy::pedantic, denied. Deliberately curated, not
# the whole group: documentation-volume lints (missing_panics_doc,
# missing_errors_doc) and pure-style churn (module_name_repetitions,
# uninlined_format_args) are excluded; correctness-adjacent and
# API-shape lints are enforced. cast_sign_loss and unused_self were
# evaluated and left out: both fire only on intentional patterns here
# (f64 statistics rounding; &self kept for API symmetry).
stage_pedantic() {
    cargo clippy --offline --workspace --all-targets -- \
        -D clippy::cast_possible_truncation \
        -D clippy::needless_pass_by_value \
        -D clippy::semicolon_if_nothing_returned \
        -D clippy::redundant_closure_for_method_calls \
        -D clippy::inefficient_to_string \
        -D clippy::map_unwrap_or \
        -D clippy::unnecessary_wraps \
        -D clippy::manual_let_else \
        -D clippy::explicit_iter_loop \
        -D clippy::cloned_instead_of_copied
}

stage_safety() { scripts/check_safety_comments.sh; }

# Lint the filter corpus (every filter the benches, figure binaries and
# examples use) with the semantic analyzer. retina-flint exits non-zero
# on any E-code; warnings are printed but tolerated. --json so a CI
# consumer can archive the findings.
stage_lint_filters() {
    cargo run --release --offline -q -p retina-filter --bin retina-flint -- \
        --json scripts/filters.flt
}

stage_build() {
    cargo build --release --offline &&
        cargo build --release --offline --bins
}

stage_doc() { RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps; }

stage_test() { cargo test -q --offline; }

stage_smoke() {
    rm -f results/BENCH_ci.json
    cargo run --release --offline -q -p retina-bench --bin telemetry_smoke -- \
        --quick --json-out results/BENCH_ci.json &&
        cargo run --release --offline -q -p retina-bench --bin governor_storm -- \
            --quick --json-out results/BENCH_ci.json &&
        cargo run --release --offline -q -p retina-bench --bin fig_multi -- \
            --quick --json-out results/BENCH_ci.json &&
        cargo run --release --offline -q -p retina-bench --bin dispatch_storm -- \
            --quick --json-out results/BENCH_ci.json &&
        cargo run --release --offline -q -p retina-bench --bin fig9 -- \
            --quick --json-out results/BENCH_ci.json
}

# Trace-overhead gate: the bin itself enforces the hard budgets
# (disabled <1%, 1-in-1024 sampling <5%) and exits non-zero past them;
# the merged trace_off_overhead / trace_sampled_overhead metrics are
# additionally tracked by the bench gate.
stage_trace_overhead() {
    cargo run --release --offline -q -p retina-bench --bin trace_smoke -- \
        --quick --json-out results/BENCH_ci.json
}

# Churn gate: conn-table stress under the scan-storm mix. The bin
# enforces exact accounting and stepped-run determinism itself; the
# merged conns_peak / arena_high_water_bytes keys (the gate's first
# memory key) are additionally tracked by the bench gate.
stage_churn() {
    cargo run --release --offline -q -p retina-bench --bin churn_storm -- \
        --quick --json-out results/BENCH_ci.json
}

# Reconfiguration gate: live hot-swap of the subscription set on a
# running pipeline. The bin enforces the swap contract itself (stepped
# survivor-digest equivalence, orphan drain through conns_swapped,
# zero-loss threaded storm with per-core epoch pickups); the merged
# pass/fail keys are additionally tracked by the bench gate.
stage_reconfig() {
    cargo run --release --offline -q -p retina-bench --bin reconfig_storm -- \
        --quick --json-out results/BENCH_ci.json
}

stage_bench_gate() { scripts/bench_gate.sh; }

for stage in "${STAGES[@]}"; do
    case "$stage" in
    fmt) run_stage fmt stage_fmt ;;
    clippy) run_stage clippy stage_clippy ;;
    pedantic) run_stage pedantic stage_pedantic ;;
    safety) run_stage safety stage_safety ;;
    lint-filters) run_stage lint-filters stage_lint_filters ;;
    build) run_stage build stage_build ;;
    doc) run_stage doc stage_doc ;;
    test) run_stage test stage_test ;;
    smoke) run_stage smoke stage_smoke ;;
    trace-overhead) run_stage trace-overhead stage_trace_overhead ;;
    churn) run_stage churn stage_churn ;;
    reconfig) run_stage reconfig stage_reconfig ;;
    bench-gate) run_stage bench-gate stage_bench_gate ;;
    *)
        echo "unknown CI stage: ${stage} (known: ${ALL_STAGES[*]})" >&2
        FAILED+=("$stage")
        ;;
    esac
done

echo
if [ "${#FAILED[@]}" -gt 0 ]; then
    echo "CI FAILED — stage(s): ${FAILED[*]}"
    exit 1
fi
echo "CI OK — stage(s): ${STAGES[*]}"
