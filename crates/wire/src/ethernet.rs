//! Ethernet II frames and 802.1Q VLAN tags.

use core::fmt;

use crate::error::check_len;
use crate::{WireError, WireResult};

/// Length of an Ethernet II header (dst + src + ethertype).
pub const HEADER_LEN: usize = 14;
/// Length of an 802.1Q VLAN tag.
pub const VLAN_LEN: usize = 4;

/// A 48-bit IEEE 802 MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Returns true if this is a group (multicast/broadcast) address.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = &self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

/// EtherType values relevant to the framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806).
    Arp,
    /// 802.1Q VLAN tag (0x8100).
    Vlan,
    /// IPv6 (0x86dd).
    Ipv6,
    /// Anything else.
    Unknown(u16),
}

impl From<u16> for EtherType {
    fn from(value: u16) -> Self {
        match value {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x8100 => EtherType::Vlan,
            0x86dd => EtherType::Ipv6,
            other => EtherType::Unknown(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(value: EtherType) -> Self {
        match value {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Vlan => 0x8100,
            EtherType::Ipv6 => 0x86dd,
            EtherType::Unknown(other) => other,
        }
    }
}

/// Zero-copy view of an Ethernet II frame.
///
/// ```
/// use retina_wire::{EthernetFrame, EtherType};
/// let mut buf = vec![0u8; 64];
/// buf[12] = 0x08; buf[13] = 0x00; // IPv4
/// let frame = EthernetFrame::new_checked(&buf[..]).unwrap();
/// assert_eq!(frame.ethertype(), EtherType::Ipv4);
/// ```
#[derive(Debug, Clone)]
pub struct EthernetFrame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> EthernetFrame<T> {
    /// Wraps a buffer, validating that it can hold an Ethernet header.
    pub fn new_checked(buffer: T) -> WireResult<Self> {
        check_len(buffer.as_ref(), HEADER_LEN)?;
        Ok(Self { buffer })
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Destination MAC address.
    pub fn dst(&self) -> MacAddr {
        let b = self.buffer.as_ref();
        MacAddr(b[0..6].try_into().unwrap())
    }

    /// Source MAC address.
    pub fn src(&self) -> MacAddr {
        let b = self.buffer.as_ref();
        MacAddr(b[6..12].try_into().unwrap())
    }

    /// EtherType of the outermost tag (may be [`EtherType::Vlan`]).
    pub fn ethertype(&self) -> EtherType {
        let b = self.buffer.as_ref();
        EtherType::from(u16::from_be_bytes([b[12], b[13]]))
    }

    /// Parses the (possibly stacked) VLAN tags following the header and
    /// returns the ultimate payload EtherType together with the payload
    /// offset from the start of the frame.
    pub fn payload_ethertype(&self) -> WireResult<(EtherType, usize)> {
        let b = self.buffer.as_ref();
        let mut offset = HEADER_LEN;
        let mut ethertype = self.ethertype();
        // At most two stacked tags (QinQ) are accepted; deeper stacks are
        // treated as malformed to bound parsing work on adversarial input.
        for _ in 0..2 {
            if ethertype != EtherType::Vlan {
                return Ok((ethertype, offset));
            }
            check_len(b, offset + VLAN_LEN)?;
            ethertype = EtherType::from(u16::from_be_bytes([b[offset + 2], b[offset + 3]]));
            offset += VLAN_LEN;
        }
        if ethertype == EtherType::Vlan {
            return Err(WireError::Malformed("vlan stack deeper than 2"));
        }
        Ok((ethertype, offset))
    }

    /// First VLAN tag, if present.
    pub fn vlan(&self) -> WireResult<Option<VlanTag>> {
        if self.ethertype() != EtherType::Vlan {
            return Ok(None);
        }
        let b = self.buffer.as_ref();
        check_len(b, HEADER_LEN + VLAN_LEN)?;
        let tci = u16::from_be_bytes([b[HEADER_LEN], b[HEADER_LEN + 1]]);
        Ok(Some(VlanTag { tci }))
    }

    /// Payload bytes (after the header and any VLAN tags).
    pub fn payload(&self) -> WireResult<&[u8]> {
        let (_, offset) = self.payload_ethertype()?;
        Ok(&self.buffer.as_ref()[offset..])
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> EthernetFrame<T> {
    /// Sets the destination MAC address.
    pub fn set_dst(&mut self, addr: MacAddr) {
        self.buffer.as_mut()[0..6].copy_from_slice(&addr.0);
    }

    /// Sets the source MAC address.
    pub fn set_src(&mut self, addr: MacAddr) {
        self.buffer.as_mut()[6..12].copy_from_slice(&addr.0);
    }

    /// Sets the EtherType.
    pub fn set_ethertype(&mut self, ethertype: EtherType) {
        let raw: u16 = ethertype.into();
        self.buffer.as_mut()[12..14].copy_from_slice(&raw.to_be_bytes());
    }
}

/// A parsed 802.1Q tag control word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VlanTag {
    tci: u16,
}

impl VlanTag {
    /// VLAN identifier (12 bits).
    pub fn vid(&self) -> u16 {
        self.tci & 0x0fff
    }

    /// Priority code point (3 bits).
    pub fn pcp(&self) -> u8 {
        (self.tci >> 13) as u8
    }

    /// Drop eligible indicator.
    pub fn dei(&self) -> bool {
        self.tci & 0x1000 != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_bytes(ethertype: u16) -> Vec<u8> {
        let mut buf = vec![0u8; 60];
        buf[0..6].copy_from_slice(&[0xaa; 6]);
        buf[6..12].copy_from_slice(&[0xbb; 6]);
        buf[12..14].copy_from_slice(&ethertype.to_be_bytes());
        buf
    }

    #[test]
    fn parse_plain_frame() {
        let buf = frame_bytes(0x0800);
        let frame = EthernetFrame::new_checked(&buf[..]).unwrap();
        assert_eq!(frame.dst(), MacAddr([0xaa; 6]));
        assert_eq!(frame.src(), MacAddr([0xbb; 6]));
        assert_eq!(frame.ethertype(), EtherType::Ipv4);
        let (et, off) = frame.payload_ethertype().unwrap();
        assert_eq!(et, EtherType::Ipv4);
        assert_eq!(off, HEADER_LEN);
        assert!(frame.vlan().unwrap().is_none());
    }

    #[test]
    fn parse_vlan_frame() {
        let mut buf = frame_bytes(0x8100);
        // TCI: pcp=5, dei=0, vid=100.
        buf[14..16].copy_from_slice(&0xa064u16.to_be_bytes());
        buf[16..18].copy_from_slice(&0x86ddu16.to_be_bytes());
        let frame = EthernetFrame::new_checked(&buf[..]).unwrap();
        let tag = frame.vlan().unwrap().unwrap();
        assert_eq!(tag.vid(), 100);
        assert_eq!(tag.pcp(), 5);
        assert!(!tag.dei());
        let (et, off) = frame.payload_ethertype().unwrap();
        assert_eq!(et, EtherType::Ipv6);
        assert_eq!(off, HEADER_LEN + VLAN_LEN);
    }

    #[test]
    fn parse_qinq_frame() {
        let mut buf = frame_bytes(0x8100);
        buf[14..16].copy_from_slice(&1u16.to_be_bytes());
        buf[16..18].copy_from_slice(&0x8100u16.to_be_bytes());
        buf[18..20].copy_from_slice(&2u16.to_be_bytes());
        buf[20..22].copy_from_slice(&0x0800u16.to_be_bytes());
        let frame = EthernetFrame::new_checked(&buf[..]).unwrap();
        let (et, off) = frame.payload_ethertype().unwrap();
        assert_eq!(et, EtherType::Ipv4);
        assert_eq!(off, HEADER_LEN + 2 * VLAN_LEN);
    }

    #[test]
    fn reject_deep_vlan_stack() {
        let mut buf = frame_bytes(0x8100);
        buf[16..18].copy_from_slice(&0x8100u16.to_be_bytes());
        buf[20..22].copy_from_slice(&0x8100u16.to_be_bytes());
        let frame = EthernetFrame::new_checked(&buf[..]).unwrap();
        assert!(frame.payload_ethertype().is_err());
    }

    #[test]
    fn reject_short_buffer() {
        let buf = [0u8; 13];
        assert_eq!(
            EthernetFrame::new_checked(&buf[..]).unwrap_err(),
            WireError::Truncated {
                needed: 14,
                got: 13
            }
        );
    }

    #[test]
    fn truncated_vlan_tag() {
        let buf = &frame_bytes(0x8100)[..15];
        let frame = EthernetFrame::new_checked(buf).unwrap();
        assert!(frame.payload_ethertype().is_err());
    }

    #[test]
    fn setters_roundtrip() {
        let mut buf = frame_bytes(0);
        let mut frame = EthernetFrame::new_checked(&mut buf[..]).unwrap();
        frame.set_dst(MacAddr([1, 2, 3, 4, 5, 6]));
        frame.set_src(MacAddr([7, 8, 9, 10, 11, 12]));
        frame.set_ethertype(EtherType::Ipv6);
        assert_eq!(frame.dst(), MacAddr([1, 2, 3, 4, 5, 6]));
        assert_eq!(frame.src(), MacAddr([7, 8, 9, 10, 11, 12]));
        assert_eq!(frame.ethertype(), EtherType::Ipv6);
    }

    #[test]
    fn multicast_detection() {
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(MacAddr([0x01, 0, 0x5e, 0, 0, 1]).is_multicast());
        assert!(!MacAddr([0xaa, 0, 0, 0, 0, 1]).is_multicast());
    }

    #[test]
    fn mac_display() {
        assert_eq!(
            MacAddr([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]).to_string(),
            "de:ad:be:ef:00:01"
        );
    }
}
