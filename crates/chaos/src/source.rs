//! Wire-level fault injection: a [`TrafficSource`] adapter.
//!
//! [`ChaosSource`] wraps any traffic source and perturbs its frames —
//! truncation, single-byte corruption, duplication, adjacent-frame
//! reordering — with every decision a pure function of the plan seed
//! and the frame's global index. Batch boundaries, thread scheduling,
//! and wall-clock time cannot change which frames are perturbed, so a
//! chaos run replays exactly from its seed.

// Narrowing casts in this file are intentional: synthetic traffic narrows seeded PRNG draws into ports, lengths, and header bytes.
#![allow(clippy::cast_possible_truncation)]

use retina_core::runtime::TrafficSource;
use retina_support::bytes::Bytes;

use crate::plan::{index_draw, index_fires, Fault, FaultPlan};

const SALT_TRUNCATE: u64 = 1;
const SALT_CORRUPT: u64 = 2;
const SALT_DUPLICATE: u64 = 3;
const SALT_REORDER: u64 = 4;

/// A traffic source that deterministically mangles frames per a
/// [`FaultPlan`].
pub struct ChaosSource<S> {
    inner: S,
    seed: u64,
    truncate_ppm: u32,
    corrupt_ppm: u32,
    duplicate_ppm: u32,
    reorder_ppm: u32,
    /// Global index of the next inner frame (counts original frames,
    /// not injected duplicates, so indices match across runs).
    index: u64,
    /// Frames injected (duplicates) so far.
    injected: u64,
    /// Frames modified (truncated or corrupted) so far.
    modified: u64,
    /// Adjacent swaps performed so far.
    reordered: u64,
    scratch: Vec<(Bytes, u64)>,
}

impl<S> ChaosSource<S> {
    /// Wraps `inner`, reading the wire-level fault rates from `plan`.
    pub fn new(inner: S, plan: &FaultPlan) -> Self {
        let mut src = ChaosSource {
            inner,
            seed: plan.seed,
            truncate_ppm: 0,
            corrupt_ppm: 0,
            duplicate_ppm: 0,
            reorder_ppm: 0,
            index: 0,
            injected: 0,
            modified: 0,
            reordered: 0,
            scratch: Vec::new(),
        };
        for fault in &plan.faults {
            match fault {
                Fault::TruncateFrames { ppm } => src.truncate_ppm = src.truncate_ppm.max(*ppm),
                Fault::CorruptFrames { ppm } => src.corrupt_ppm = src.corrupt_ppm.max(*ppm),
                Fault::DuplicateFrames { ppm } => src.duplicate_ppm = src.duplicate_ppm.max(*ppm),
                Fault::ReorderFrames { ppm } => src.reorder_ppm = src.reorder_ppm.max(*ppm),
                _ => {}
            }
        }
        src
    }

    /// Frames injected as duplicates so far.
    pub fn frames_injected(&self) -> u64 {
        self.injected
    }

    /// Frames truncated or corrupted so far.
    pub fn frames_modified(&self) -> u64 {
        self.modified
    }

    /// Adjacent swaps performed so far.
    pub fn frames_reordered(&self) -> u64 {
        self.reordered
    }

    fn mangle(&mut self, frame: Bytes) -> Bytes {
        let idx = self.index;
        let mut frame = frame;
        if self.truncate_ppm > 0
            && frame.len() > 1
            && index_fires(self.seed, SALT_TRUNCATE, idx, self.truncate_ppm)
        {
            // Cut to a random proper prefix: mid-header cuts exercise
            // the L2–L4 parse-failure path, mid-payload cuts exercise
            // short-segment reassembly.
            let keep = 1 + index_draw(self.seed, SALT_TRUNCATE, idx, frame.len() as u64 - 1);
            frame = frame.slice(..keep as usize);
            self.modified += 1;
        }
        if self.corrupt_ppm > 0
            && !frame.is_empty()
            && index_fires(self.seed, SALT_CORRUPT, idx, self.corrupt_ppm)
        {
            // Flip one bit past the Ethernet header when possible so
            // corruption lands in IP/TCP headers or payload.
            let lo = if frame.len() > 15 { 14 } else { 0 };
            let span = (frame.len() - lo) as u64;
            let off = lo + index_draw(self.seed, SALT_CORRUPT, idx, span) as usize;
            let bit = index_draw(self.seed, SALT_CORRUPT | 0x100, idx, 8) as u8;
            let mut bytes = frame.to_vec();
            bytes[off] ^= 1 << bit;
            frame = Bytes::from(bytes);
            self.modified += 1;
        }
        frame
    }
}

impl<S: TrafficSource> TrafficSource for ChaosSource<S> {
    fn next_batch(&mut self, out: &mut Vec<(Bytes, u64)>) -> bool {
        self.scratch.clear();
        if !self.inner.next_batch(&mut self.scratch) {
            return false;
        }
        let base = out.len();
        let batch: Vec<(Bytes, u64)> = self.scratch.drain(..).collect();
        for (frame, ts) in batch {
            let idx = self.index;
            let frame = self.mangle(frame);
            out.push((frame.clone(), ts));
            if self.duplicate_ppm > 0
                && index_fires(self.seed, SALT_DUPLICATE, idx, self.duplicate_ppm)
            {
                // Back-to-back redelivery, same timestamp: a wire-level
                // duplicate the tracker must absorb without double
                // counting connections.
                out.push((frame, ts));
                self.injected += 1;
            }
            if self.reorder_ppm > 0
                && out.len() >= base + 2
                && index_fires(self.seed, SALT_REORDER, idx, self.reorder_ppm)
            {
                // Swap the two most recent frames: late delivery of the
                // earlier one, exercising out-of-order reassembly.
                let n = out.len();
                out.swap(n - 2, n - 1);
                self.reordered += 1;
            }
            self.index += 1;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FixedSource {
        frames: Vec<(Bytes, u64)>,
        served: bool,
    }

    impl TrafficSource for FixedSource {
        fn next_batch(&mut self, out: &mut Vec<(Bytes, u64)>) -> bool {
            if self.served {
                return false;
            }
            self.served = true;
            out.extend(self.frames.iter().cloned());
            true
        }
    }

    fn frames(n: usize) -> Vec<(Bytes, u64)> {
        (0..n)
            .map(|i| (Bytes::from(vec![i as u8; 64]), i as u64))
            .collect()
    }

    fn collect(plan: &FaultPlan, n: usize) -> Vec<(Bytes, u64)> {
        let mut src = ChaosSource::new(
            FixedSource {
                frames: frames(n),
                served: false,
            },
            plan,
        );
        let mut out = Vec::new();
        while src.next_batch(&mut out) {}
        out
    }

    #[test]
    fn no_faults_passes_through() {
        let plan = FaultPlan::new(1);
        let out = collect(&plan, 50);
        assert_eq!(out, frames(50));
    }

    #[test]
    fn same_plan_same_stream() {
        let plan = FaultPlan::new(42)
            .with(Fault::TruncateFrames { ppm: 200_000 })
            .with(Fault::CorruptFrames { ppm: 200_000 })
            .with(Fault::DuplicateFrames { ppm: 200_000 })
            .with(Fault::ReorderFrames { ppm: 200_000 });
        let a = collect(&plan, 200);
        let b = collect(&plan, 200);
        assert_eq!(a, b, "identical plans must emit identical streams");
        assert_ne!(a, frames(200), "at those rates something must fire");
    }

    #[test]
    fn duplicates_add_frames_and_truncation_shortens() {
        let plan = FaultPlan::new(7).with(Fault::DuplicateFrames { ppm: 500_000 });
        let out = collect(&plan, 100);
        assert!(out.len() > 100, "~half the frames duplicate");
        let plan = FaultPlan::new(7).with(Fault::TruncateFrames { ppm: 1_000_000 });
        let out = collect(&plan, 10);
        assert_eq!(out.len(), 10);
        assert!(out.iter().all(|(f, _)| f.len() < 64));
        assert!(out.iter().all(|(f, _)| !f.is_empty()));
    }

    #[test]
    fn counters_track_what_happened() {
        let plan = FaultPlan::new(3)
            .with(Fault::CorruptFrames { ppm: 1_000_000 })
            .with(Fault::ReorderFrames { ppm: 1_000_000 });
        let mut src = ChaosSource::new(
            FixedSource {
                frames: frames(20),
                served: false,
            },
            &plan,
        );
        let mut out = Vec::new();
        while src.next_batch(&mut out) {}
        assert_eq!(src.frames_modified(), 20);
        assert_eq!(src.frames_reordered(), 19, "first frame has no partner");
        assert_eq!(src.frames_injected(), 0);
    }
}
