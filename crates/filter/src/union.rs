//! Composing independently compiled filters into one multi-subscription
//! filter.
//!
//! [`CompiledFilter::build_union`](crate::CompiledFilter::build_union)
//! merges N filter *sources* into one trie — the right tool when sources
//! are available at runtime. [`FilterUnion`] solves the complementary
//! problem: composing N already-built [`FilterFns`] values — typically
//! structs generated at compile time by the `retina-filtergen` macros —
//! into a single filter whose `*_set` methods decide every subscription
//! per call, without giving up static code generation for the per-part
//! predicate logic.
//!
//! Each part keeps its private trie-node ID space; `FilterUnion` tags
//! every frontier it hands the runtime with the owning part's index (in
//! the upper bits of the opaque `u32`), so later layers route resume
//! nodes back to the right part.

// Narrowing casts in this file are intentional: tick, index, and counter arithmetic narrows to compact fields by design.
#![allow(clippy::cast_possible_truncation)]

use retina_nic::{DeviceCaps, FlowRule};
use retina_wire::ParsedPacket;

use crate::datatypes::{
    ConnVerdict, FilterError, FilterResult, Frontiers, PacketVerdict, SessionData, SubscriptionSet,
};
use crate::interp::FilterFns;
use crate::registry::ProtocolRegistry;

/// How many low bits of a frontier word hold the part-local node ID; the
/// remaining high bits hold the part index.
const SUB_SHIFT: u32 = 24;
const NODE_MASK: u32 = (1 << SUB_SHIFT) - 1;

/// N filters composed into one multi-subscription [`FilterFns`]:
/// subscription `i`'s verdict at every layer comes from part `i`.
///
/// Parts are boxed trait objects, so generated (static-code) filters,
/// [`crate::CompiledFilter`]s, and hand-written implementations can be
/// mixed freely in one union.
pub struct FilterUnion {
    parts: Vec<Box<dyn FilterFns>>,
    source: String,
}

impl FilterUnion {
    /// Composes `parts` (subscription `i` = `parts[i]`).
    ///
    /// # Panics
    /// When `parts` is empty, when there are more than
    /// [`SubscriptionSet::MAX`], or when a part's trie is too large for
    /// the frontier encoding (node IDs must fit in 24 bits).
    pub fn new(parts: Vec<Box<dyn FilterFns>>) -> Self {
        assert!(!parts.is_empty(), "FilterUnion needs at least one part");
        assert!(
            parts.len() <= SubscriptionSet::MAX,
            "at most {} subscriptions per union",
            SubscriptionSet::MAX
        );
        // Mirror `PredicateTrie::combined_source`: any match-everything
        // part makes the whole union match everything.
        let source = if parts.iter().any(|p| p.source().is_empty()) {
            String::new()
        } else {
            parts
                .iter()
                .map(|p| format!("({})", p.source()))
                .collect::<Vec<_>>()
                .join(" or ")
        };
        FilterUnion { parts, source }
    }

    /// The composed parts, in subscription order.
    pub fn parts(&self) -> &[Box<dyn FilterFns>] {
        &self.parts
    }

    fn encode(sub: usize, node: usize) -> u32 {
        debug_assert!(node as u32 <= NODE_MASK, "trie node ID exceeds 24 bits");
        ((sub as u32) << SUB_SHIFT) | (node as u32 & NODE_MASK)
    }

    /// The part-local resume node subscription `sub` was tagged with.
    fn frontier_for(frontiers: &Frontiers, sub: usize) -> Option<usize> {
        frontiers
            .iter()
            .find(|f| (f >> SUB_SHIFT) as usize == sub)
            .map(|f| (f & NODE_MASK) as usize)
    }
}

impl std::fmt::Debug for FilterUnion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FilterUnion")
            .field("parts", &self.parts.len())
            .field("source", &self.source)
            .finish()
    }
}

impl FilterFns for FilterUnion {
    // Single-subscription view: "did any part match", with encoded
    // resume nodes so the scalar methods round-trip through each other.
    fn packet_filter(&self, pkt: &ParsedPacket) -> FilterResult {
        let mut frontier = None;
        for (i, p) in self.parts.iter().enumerate() {
            match p.packet_filter(pkt) {
                FilterResult::NoMatch => {}
                FilterResult::MatchTerminal(n) => {
                    return FilterResult::MatchTerminal(Self::encode(i, n) as usize)
                }
                FilterResult::MatchNonTerminal(n) => {
                    frontier.get_or_insert(Self::encode(i, n) as usize);
                }
            }
        }
        match frontier {
            Some(n) => FilterResult::MatchNonTerminal(n),
            None => FilterResult::NoMatch,
        }
    }

    fn conn_filter(&self, service: Option<&str>, pkt_term_node: usize) -> FilterResult {
        let sub = pkt_term_node >> SUB_SHIFT;
        let node = pkt_term_node & NODE_MASK as usize;
        match self.parts[sub].conn_filter(service, node) {
            FilterResult::NoMatch => FilterResult::NoMatch,
            FilterResult::MatchTerminal(n) => {
                FilterResult::MatchTerminal(Self::encode(sub, n) as usize)
            }
            FilterResult::MatchNonTerminal(n) => {
                FilterResult::MatchNonTerminal(Self::encode(sub, n) as usize)
            }
        }
    }

    fn session_filter(&self, session: &dyn SessionData, pkt_term_node: usize) -> bool {
        let sub = pkt_term_node >> SUB_SHIFT;
        let node = pkt_term_node & NODE_MASK as usize;
        self.parts[sub].session_filter(session, node)
    }

    fn conn_protocols(&self) -> Vec<String> {
        let mut protos: Vec<String> = Vec::new();
        for p in &self.parts {
            for proto in p.conn_protocols() {
                if !protos.contains(&proto) {
                    protos.push(proto);
                }
            }
        }
        protos
    }

    fn source(&self) -> &str {
        &self.source
    }

    fn needs_conn_layer(&self) -> bool {
        self.parts.iter().any(|p| p.needs_conn_layer())
    }

    fn needs_session_layer(&self) -> bool {
        self.parts.iter().any(|p| p.needs_session_layer())
    }

    // Multi-subscription view: one call per layer decides every part.
    fn num_subscriptions(&self) -> usize {
        self.parts.len()
    }

    fn packet_filter_set(&self, pkt: &ParsedPacket) -> PacketVerdict {
        let mut v = PacketVerdict::default();
        for (i, p) in self.parts.iter().enumerate() {
            match p.packet_filter(pkt) {
                FilterResult::NoMatch => {}
                FilterResult::MatchTerminal(_) => v.matched.insert(i),
                FilterResult::MatchNonTerminal(n) => {
                    v.live.insert(i);
                    v.frontiers.push(Self::encode(i, n));
                }
            }
        }
        v
    }

    fn conn_filter_set(
        &self,
        service: Option<&str>,
        frontiers: &Frontiers,
        live: SubscriptionSet,
    ) -> ConnVerdict {
        let mut v = ConnVerdict::default();
        for i in live.iter() {
            let Some(node) = Self::frontier_for(frontiers, i) else {
                continue;
            };
            match self.parts[i].conn_filter(service, node) {
                FilterResult::NoMatch => {}
                FilterResult::MatchTerminal(_) => v.matched.insert(i),
                // Still undecided: the session filter resumes from the
                // same packet-layer frontier (scalar contract).
                FilterResult::MatchNonTerminal(_) => v.live.insert(i),
            }
        }
        v
    }

    fn session_filter_set(
        &self,
        session: &dyn SessionData,
        frontiers: &Frontiers,
        live: SubscriptionSet,
    ) -> SubscriptionSet {
        let mut matched = SubscriptionSet::empty();
        for i in live.iter() {
            let Some(node) = Self::frontier_for(frontiers, i) else {
                continue;
            };
            if self.parts[i].session_filter(session, node) {
                matched.insert(i);
            }
        }
        matched
    }

    fn conn_protocols_for(&self, sub: usize) -> Vec<String> {
        self.parts[sub].conn_protocols()
    }

    fn needs_conn_layer_for(&self, sub: usize) -> bool {
        self.parts[sub].needs_conn_layer()
    }

    fn needs_session_layer_for(&self, sub: usize) -> bool {
        self.parts[sub].needs_session_layer()
    }

    fn hw_rules(
        &self,
        caps: DeviceCaps,
        registry: &ProtocolRegistry,
    ) -> Result<Vec<FlowRule>, FilterError> {
        let mut rules: Vec<FlowRule> = Vec::new();
        for p in &self.parts {
            let part_rules = p.hw_rules(caps, registry)?;
            if part_rules.is_empty() {
                // One part wants everything: no rules is the broadest
                // possible set, so the union installs none.
                return Ok(Vec::new());
            }
            for r in part_rules {
                if !rules.contains(&r) {
                    rules.push(r);
                }
            }
        }
        Ok(rules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::CompiledFilter;
    use crate::registry::ProtocolRegistry;
    use retina_wire::build::{build_tcp, build_udp, TcpSpec, UdpSpec};
    use retina_wire::TcpFlags;

    const SRCS: [&str; 3] = ["tls", "ipv4 and tcp.port = 80", "udp"];

    fn union() -> FilterUnion {
        let reg = ProtocolRegistry::default();
        FilterUnion::new(
            SRCS.iter()
                .map(|s| Box::new(CompiledFilter::build(s, &reg).unwrap()) as Box<dyn FilterFns>)
                .collect(),
        )
    }

    fn tcp_pkt(dport: u16) -> ParsedPacket {
        let frame = build_tcp(&TcpSpec {
            src: "10.0.0.1:40000".parse().unwrap(),
            dst: format!("93.184.216.34:{dport}").parse().unwrap(),
            seq: 1,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 64,
            ttl: 64,
            payload: b"",
        });
        ParsedPacket::parse(&frame).unwrap()
    }

    fn udp_pkt() -> ParsedPacket {
        let frame = build_udp(&UdpSpec {
            src: "10.0.0.1:40000".parse().unwrap(),
            dst: "8.8.8.8:53".parse().unwrap(),
            ttl: 64,
            payload: b"x",
        });
        ParsedPacket::parse(&frame).unwrap()
    }

    #[test]
    fn packet_sets_match_trie_union() {
        // The composed union and the merged-trie union agree on which
        // subscriptions match / stay live (frontier encodings differ).
        let u = union();
        let reg = ProtocolRegistry::default();
        let merged = CompiledFilter::build_union(&SRCS, &reg).unwrap();
        for pkt in [tcp_pkt(80), tcp_pkt(443), udp_pkt()] {
            let a = u.packet_filter_set(&pkt);
            let b = merged.packet_filter_set(&pkt);
            assert_eq!(a.matched, b.matched, "matched sets differ");
            assert_eq!(a.live, b.live, "live sets differ");
        }
    }

    #[test]
    fn conn_layer_routes_to_owning_part() {
        let u = union();
        let v = u.packet_filter_set(&tcp_pkt(443));
        // Port-80 sub misses; tls stays live pending the conn layer.
        assert!(v.matched.is_empty());
        assert_eq!(v.live, SubscriptionSet::single(0));
        let cv = u.conn_filter_set(Some("tls"), &v.frontiers, v.live);
        assert_eq!(cv.matched, SubscriptionSet::single(0));
        let cv = u.conn_filter_set(Some("http"), &v.frontiers, v.live);
        assert!(cv.matched.is_empty() && cv.live.is_empty());
    }

    #[test]
    fn packet_terminal_subs_decided_immediately() {
        let u = union();
        let v = u.packet_filter_set(&tcp_pkt(80));
        assert!(v.matched.contains(1));
        let v = u.packet_filter_set(&udp_pkt());
        assert!(v.matched.contains(2));
        assert!(!v.matched.contains(1));
    }

    #[test]
    fn hw_rules_union_dedups_and_widens_to_empty() {
        let reg = ProtocolRegistry::default();
        let u = union();
        let rules = u.hw_rules(retina_nic::DeviceCaps::full(), &reg).unwrap();
        assert!(!rules.is_empty());
        for (i, r) in rules.iter().enumerate() {
            assert!(!rules[i + 1..].contains(r), "duplicate rule");
        }
        // Adding a match-everything part collapses the rule set to the
        // broadest possible (none installed = deliver all).
        let all = FilterUnion::new(vec![
            Box::new(CompiledFilter::build("tls", &reg).unwrap()),
            Box::new(CompiledFilter::build("", &reg).unwrap()),
        ]);
        assert!(all
            .hw_rules(retina_nic::DeviceCaps::full(), &reg)
            .unwrap()
            .is_empty());
        assert_eq!(all.source(), "");
    }

    #[test]
    fn metadata_is_per_subscription() {
        let u = union();
        assert_eq!(u.num_subscriptions(), 3);
        assert!(u.needs_conn_layer_for(0));
        assert!(!u.needs_conn_layer_for(1));
        assert!(!u.needs_conn_layer_for(2));
        assert_eq!(u.conn_protocols_for(0), vec!["tls".to_string()]);
        assert!(u.conn_protocols_for(1).is_empty());
        assert_eq!(u.source(), "(tls) or (ipv4 and tcp.port = 80) or (udp)");
    }
}
