//! Ablation studies for the design choices DESIGN.md calls out (beyond
//! those with their own figures: compiled-vs-interpreted filters =
//! fig12, timeout schemes = fig8, lazy-vs-eager reassembly = the
//! `components` Criterion bench).
//!
//! 1. **Hardware pre-filtering on vs off** — how much software work the
//!    NIC-level rules save for a narrow subscription (§4.1).
//! 2. **Early discard vs callback filtering** — Retina's session filter
//!    discards non-matching connections mid-pipeline; the ablation
//!    parses *every* TLS handshake and filters in the callback, the
//!    anti-pattern the paper's lazy design eliminates (§5.2, §6.3).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use retina_bench::{bench_args, rule, timed};
use retina_core::subscribables::TlsHandshakeData;
use retina_core::{compile, Runtime, RuntimeConfig};
use retina_trafficgen::campus::{generate, CampusConfig};
use retina_trafficgen::PreloadedSource;

fn main() {
    let args = bench_args();
    println!("generating campus mix (~{} packets)...", args.packets);
    let source = PreloadedSource::new(generate(&CampusConfig {
        target_packets: args.packets,
        duration_secs: 30.0,
        ..CampusConfig::default()
    }));
    println!(
        "workload: {} packets, {} MB\n",
        source.len(),
        source.total_bytes() / 1_000_000
    );

    ablation_hw_filtering(&source);
    ablation_early_discard(&source);
}

fn run(
    source: &PreloadedSource,
    filter_src: &str,
    hw: bool,
    callback: impl Fn(TlsHandshakeData) + Send + Sync + 'static,
) -> (retina_core::RunReport, f64) {
    let mut config = RuntimeConfig::with_cores(1);
    config.hw_filtering = hw;
    config.paced_ingest = true;
    let mut runtime =
        Runtime::<TlsHandshakeData, _>::new(config, compile(filter_src).unwrap(), callback)
            .expect("runtime");
    let mut src = source.clone();
    src.rewind();
    let (report, secs) = timed(|| runtime.run(src));
    (report, secs)
}

fn ablation_hw_filtering(source: &PreloadedSource) {
    println!("Ablation 1: hardware pre-filtering (filter: tcp.port = 443 and tls)");
    println!(
        "{:<12} {:>10} {:>16} {:>16} {:>12}",
        "hw filter", "time (s)", "sw pkts seen", "hw dropped", "Gbps"
    );
    rule(70);
    for hw in [true, false] {
        let (report, secs) = run(source, "tcp.port = 443 and tls", hw, |_| {});
        println!(
            "{:<12} {:>10.2} {:>16} {:>16} {:>12.2}",
            if hw { "on" } else { "off" },
            secs,
            report.cores.rx_packets,
            report.nic.hw_dropped,
            report.offered_gbps(),
        );
    }
    println!(
        "expected: with rules installed the software path sees only the\n\
         TCP/443 share of traffic; with them off every packet crosses the\n\
         software packet filter (§4.1's zero-CPU-cost winnowing).\n"
    );
}

fn ablation_early_discard(source: &PreloadedSource) {
    println!("Ablation 2: in-pipeline session filter vs callback filtering");
    println!("task: deliver only Netflix-video TLS handshakes");
    println!(
        "{:<22} {:>10} {:>12} {:>14} {:>10}",
        "strategy", "time (s)", "callbacks", "conns parsed", "matches"
    );
    rule(74);

    // Retina way: the session filter discards non-matching conns in the
    // pipeline; the callback only ever sees matches.
    let matches = Arc::new(AtomicU64::new(0));
    let m = Arc::clone(&matches);
    let (report, secs) = run(
        source,
        r"tls.sni ~ '(.+?\.)?nflxvideo\.net'",
        true,
        move |_| {
            m.fetch_add(1, Ordering::Relaxed);
        },
    );
    println!(
        "{:<22} {:>10.2} {:>12} {:>14} {:>10}",
        "session filter",
        secs,
        report.cores.callbacks.runs,
        report.cores.app_parsing.runs,
        matches.load(Ordering::Relaxed),
    );

    // Anti-pattern: subscribe to *all* TLS handshakes and regex-filter in
    // the callback. Every handshake is fully parsed and delivered.
    let matches = Arc::new(AtomicU64::new(0));
    let m = Arc::clone(&matches);
    let re = retina_filter::regex::Regex::new(r"(.+?\.)?nflxvideo\.net").unwrap();
    let (report, secs) = run(source, "tls", true, move |hs| {
        if re.is_match(hs.tls.sni()) {
            m.fetch_add(1, Ordering::Relaxed);
        }
    });
    println!(
        "{:<22} {:>10.2} {:>12} {:>14} {:>10}",
        "callback filtering",
        secs,
        report.cores.callbacks.runs,
        report.cores.app_parsing.runs,
        matches.load(Ordering::Relaxed),
    );
    println!(
        "expected: identical match counts; the session-filter run executes\n\
         orders of magnitude fewer callbacks (and discards non-matching\n\
         connection state as soon as the SNI is known)."
    );
}
