//! Sampled per-flow causal tracing plus an always-on anomaly flight
//! recorder.
//!
//! The §5.3 monitoring loop reports *how much* was dropped or shed but
//! never *which* flow, *at which layer*, or *why that one*. This module
//! closes that gap with two cooperating mechanisms sharing one event
//! vocabulary:
//!
//! 1. **Causal tracing** — a lock-free per-lane tracepoint API
//!    ([`Tracer::emit`], a no-op when disabled) records fixed-size
//!    binary [`TraceEvent`]s keyed by a flow trace id. Flows are
//!    sampled 1-in-N by mixing a seed into the NIC's symmetric RSS
//!    hash ([`Tracer::sample_flow`]) — direction-independent for free,
//!    already computed per packet, so the sampling decision costs one
//!    multiply-mix on the hot path and the same connection is sampled
//!    in a threaded run, a virtual-time stepped run, and a chaos
//!    replay. [`TraceSession::assemble`] reconstructs
//!    per-flow span trees with per-stage latency attribution and
//!    text/JSON renderers; [`FlowTrace::canonical_bytes`] is a
//!    timestamp-free form that is byte-identical across execution
//!    modes.
//! 2. **Flight recorder** — every lane continuously overwrites a fixed
//!    ring with the last K events of *all* flows (sampled or not).
//!    Anomaly triggers ([`Tracer::trigger`]) freeze the rings on first
//!    fire, so the moments before an incident are always
//!    reconstructable as a black-box [`FlightDump`].
//!
//! # Event layout
//!
//! An event is exactly five little-endian `u64` words (40 bytes):
//!
//! | word | contents                                            |
//! |------|-----------------------------------------------------|
//! | 0    | flow trace id (0 = unsampled flow)                  |
//! | 1    | timestamp (cycles, or virtual step in stepped runs) |
//! | 2    | `kind` (bits 0..8) · `lane` (8..24) · `sub` (24..40)|
//! | 3    | argument `a` (kind-specific)                        |
//! | 4    | argument `b` (kind-specific)                        |
//!
//! # Lanes
//!
//! Each writer thread owns a lane: lane 0 is the ingest (NIC) thread,
//! lanes `1..=rx_cores` the RX cores, and the rest dispatch workers.
//! Per-lane buffers are single-writer, so emission is a `fetch_add`
//! plus five relaxed stores — no locks, no CAS loops. Cross-lane
//! ordering for one flow needs no global clock: a flow lives on one RX
//! core (symmetric RSS) and each of its per-subscription deliveries
//! crosses one SPSC ring in FIFO order, so the k-th enqueue pairs with
//! the k-th worker-side dequeue.

// Narrowing casts in this file are intentional: lane/sub indices and
// packed event words narrow to compact fields by design.
#![allow(clippy::cast_possible_truncation)]

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::json;

/// Number of `u64` words per event.
pub const EVENT_WORDS: usize = 5;
/// Size of one encoded event in bytes.
pub const EVENT_BYTES: usize = EVENT_WORDS * 8;

/// What a tracepoint records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum TraceKind {
    /// Packet received by the NIC; `b` = ingress sequence number.
    Rx = 1,
    /// Hardware-rule verdict; `a` = action code
    /// (0 drop, 1 queue, 2 rss, 3 sunk), `b` = queue chosen.
    HwVerdict = 2,
    /// Software packet-filter verdict; `a` = matched subscription
    /// bitmap, `b` = live subscription bitmap.
    PacketVerdict = 3,
    /// One packet-filter frontier node left live for later layers;
    /// `a` = raw node id (union filters pack `sub << 24 | node`),
    /// `b` = layer (0 = packet).
    FilterNode = 4,
    /// Connection-filter verdict; `a` = matched bitmap, `b` = live.
    ConnVerdict = 5,
    /// Session-filter verdict; `a` = matched bitmap, `b` = live.
    SessionVerdict = 6,
    /// Connection inserted into the tracker table.
    ConnInsert = 7,
    /// Existing connection updated by a packet; `a` = direction
    /// (0 originator, 1 responder).
    ConnUpdate = 8,
    /// Connection left the table; `a` = reason
    /// (1 terminated, 2 expired, 3 drained, 4 completed early).
    ConnExpire = 9,
    /// Result enqueued onto a dispatch ring; `sub` = subscription,
    /// `b` = ring depth after the enqueue (not canonical).
    DispatchEnqueue = 10,
    /// Result dequeued by a dispatch worker; `sub` = subscription,
    /// `b` = ring depth before the dequeue (not canonical).
    DispatchDequeue = 11,
    /// Callback invocation started; `sub` = subscription.
    CallbackStart = 12,
    /// Callback invocation finished; `sub` = subscription.
    CallbackEnd = 13,
    /// Packet or result dropped; `a` = [`TraceDropCode`], `b` = aux
    /// (ingress sequence for NIC drops).
    Drop = 14,
}

impl TraceKind {
    /// Decodes a kind byte; `None` for unknown values.
    #[must_use]
    pub fn from_u8(v: u8) -> Option<TraceKind> {
        Some(match v {
            1 => TraceKind::Rx,
            2 => TraceKind::HwVerdict,
            3 => TraceKind::PacketVerdict,
            4 => TraceKind::FilterNode,
            5 => TraceKind::ConnVerdict,
            6 => TraceKind::SessionVerdict,
            7 => TraceKind::ConnInsert,
            8 => TraceKind::ConnUpdate,
            9 => TraceKind::ConnExpire,
            10 => TraceKind::DispatchEnqueue,
            11 => TraceKind::DispatchDequeue,
            12 => TraceKind::CallbackStart,
            13 => TraceKind::CallbackEnd,
            14 => TraceKind::Drop,
            _ => return None,
        })
    }

    /// Stable lowercase name used by the renderers.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::Rx => "rx",
            TraceKind::HwVerdict => "hw-verdict",
            TraceKind::PacketVerdict => "packet-verdict",
            TraceKind::FilterNode => "filter-node",
            TraceKind::ConnVerdict => "conn-verdict",
            TraceKind::SessionVerdict => "session-verdict",
            TraceKind::ConnInsert => "conn-insert",
            TraceKind::ConnUpdate => "conn-update",
            TraceKind::ConnExpire => "conn-expire",
            TraceKind::DispatchEnqueue => "dispatch-enqueue",
            TraceKind::DispatchDequeue => "dispatch-dequeue",
            TraceKind::CallbackStart => "callback-start",
            TraceKind::CallbackEnd => "callback-end",
            TraceKind::Drop => "drop",
        }
    }
}

/// Reason codes carried in the `a` argument of [`TraceKind::Drop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceDropCode {
    /// RX descriptor ring was full.
    RxMissed = 1,
    /// Mempool exhausted at ingest.
    NoMbuf = 2,
    /// Dispatch ring full under the Shed policy.
    DispatchShed = 3,
    /// Dispatch worker disconnected.
    WorkerDisconnected = 4,
}

/// Hardware-rule action codes carried in the `a` argument of
/// [`TraceKind::HwVerdict`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceHwAction {
    /// Dropped in "hardware".
    Drop = 0,
    /// Steered to an explicit queue.
    Queue = 1,
    /// RSS-hashed to a queue.
    Rss = 2,
    /// Steered to the sink queue.
    Sunk = 3,
}

/// Connection-retirement reason codes carried in the `a` argument of
/// [`TraceKind::ConnExpire`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceConnEnd {
    /// FIN/RST teardown observed.
    Terminated = 1,
    /// Idle timeout.
    Expired = 2,
    /// Drained at end of run.
    Drained = 3,
    /// Removed mid-stream because every subscription completed early
    /// (e.g. a delivered TLS handshake).
    CompletedEarly = 4,
}

/// One fixed-size tracepoint record. See the module docs for the
/// binary layout and per-kind argument semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Flow trace id (0 for unsampled flows — flight recorder only).
    pub trace_id: u64,
    /// Timestamp: CPU cycles, or the virtual step in stepped runs.
    pub tsc: u64,
    /// What happened.
    pub kind: TraceKind,
    /// Lane (writer thread) that recorded the event.
    pub lane: u16,
    /// Subscription index, where applicable (otherwise 0).
    pub sub: u16,
    /// Kind-specific argument.
    pub a: u64,
    /// Kind-specific argument.
    pub b: u64,
}

impl TraceEvent {
    /// Encodes the event into its five-word binary form.
    #[must_use]
    pub fn to_words(&self) -> [u64; EVENT_WORDS] {
        let packed =
            u64::from(self.kind as u8) | (u64::from(self.lane) << 8) | (u64::from(self.sub) << 24);
        [self.trace_id, self.tsc, packed, self.a, self.b]
    }

    /// Decodes an event from its five-word binary form; `None` when
    /// the kind byte is unknown (e.g. an unwritten flight-ring slot).
    #[must_use]
    pub fn from_words(words: [u64; EVENT_WORDS]) -> Option<TraceEvent> {
        let kind = TraceKind::from_u8((words[2] & 0xff) as u8)?;
        Some(TraceEvent {
            trace_id: words[0],
            tsc: words[1],
            kind,
            lane: ((words[2] >> 8) & 0xffff) as u16,
            sub: ((words[2] >> 24) & 0xffff) as u16,
            a: words[3],
            b: words[4],
        })
    }
}

/// The role of a lane's writer thread, fixed at tracer construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneKind {
    /// The NIC ingest thread (rx + hardware verdicts + ingest drops).
    Ingest,
    /// An RX core's processing loop (filter, conntrack, enqueue).
    Rx(u16),
    /// A dispatch worker thread (dequeue + callback execution).
    Worker(u16),
}

impl LaneKind {
    fn tag(self) -> (u8, u16) {
        match self {
            LaneKind::Ingest => (0, 0),
            LaneKind::Rx(i) => (1, i),
            LaneKind::Worker(i) => (2, i),
        }
    }
}

/// Tracer configuration. All fields have workable defaults.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Whether the tracer starts recording at all. `false` builds and
    /// attaches the full lane layout but leaves every tracepoint at
    /// its one-relaxed-load fast path — the configuration the
    /// `trace-overhead` CI stage holds to <1% cost. Flip at runtime
    /// with [`Tracer::set_enabled`].
    pub enabled: bool,
    /// Sample one flow in N for full causal tracing (0 disables flow
    /// sampling; the flight recorder still runs).
    pub sample_one_in: u64,
    /// Seed mixed into the flow hash, making the sampled population
    /// reproducible and steerable.
    pub seed: u64,
    /// Capacity, in events, of each lane's sampled-trace buffer;
    /// events beyond it are counted as dropped, never block.
    pub lane_capacity: usize,
    /// Depth K, in events, of each lane's flight-recorder ring.
    pub flight_depth: usize,
    /// Lost-packet delta per monitor tick that fires the drop-burst
    /// flight-recorder trigger.
    pub drop_burst_threshold: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: true,
            sample_one_in: 1024,
            seed: 0,
            lane_capacity: 16_384,
            flight_depth: 1024,
            drop_burst_threshold: 10_000,
        }
    }
}

/// What fired a flight-recorder freeze.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerReason {
    /// The overload governor shed parsing.
    GovernorShed,
    /// The monitor saw a burst of lost packets in one tick.
    DropBurst,
    /// `check_accounting` failed at end of run.
    AccountingFailure,
    /// A chaos fault activated.
    ChaosFault,
    /// A dispatch ring shed a result (`dropped_full`).
    DispatchShed,
    /// A live reconfiguration swap failed (rejected by the analyzer or
    /// aborted mid-stage), freezing the recorder around the attempt.
    SwapFailed,
}

impl TriggerReason {
    /// Stable lowercase name used by the renderers.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TriggerReason::GovernorShed => "governor-shed",
            TriggerReason::DropBurst => "drop-burst",
            TriggerReason::AccountingFailure => "accounting-failure",
            TriggerReason::ChaosFault => "chaos-fault",
            TriggerReason::DispatchShed => "dispatch-shed",
            TriggerReason::SwapFailed => "swap-failed",
        }
    }

    fn code(self) -> u8 {
        match self {
            TriggerReason::GovernorShed => 1,
            TriggerReason::DropBurst => 2,
            TriggerReason::AccountingFailure => 3,
            TriggerReason::ChaosFault => 4,
            TriggerReason::DispatchShed => 5,
            TriggerReason::SwapFailed => 6,
        }
    }
}

/// One recorded anomaly trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriggerRecord {
    /// What fired.
    pub reason: TriggerReason,
    /// Timestamp at fire time (same timebase as events).
    pub tsc: u64,
    /// Reason-specific detail (e.g. lost-packet delta, sub index).
    pub detail: u64,
    /// Whether this trigger was the one that froze the rings.
    pub froze: bool,
}

/// Timestamp source for a tracer.
enum TraceClock {
    /// Caller-supplied cycle counter (threaded runs).
    External(Arc<dyn Fn() -> u64 + Send + Sync>),
    /// Virtual time advanced by the stepped harness.
    Virtual(AtomicU64),
}

/// Append-only single-writer event buffer for sampled flows.
struct LaneBuf {
    words: Box<[AtomicU64]>,
    /// Events claimed (may exceed capacity; the excess was dropped).
    claimed: AtomicUsize,
    dropped: AtomicU64,
}

impl LaneBuf {
    fn new(capacity_events: usize) -> LaneBuf {
        LaneBuf {
            words: (0..capacity_events * EVENT_WORDS)
                .map(|_| AtomicU64::new(0))
                .collect(),
            claimed: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    fn capacity(&self) -> usize {
        self.words.len() / EVENT_WORDS
    }

    fn push(&self, words: [u64; EVENT_WORDS]) {
        let slot = self.claimed.fetch_add(1, Ordering::Relaxed);
        if slot >= self.capacity() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let base = slot * EVENT_WORDS;
        for (i, w) in words.iter().enumerate() {
            self.words[base + i].store(*w, Ordering::Relaxed);
        }
    }

    fn events(&self) -> Vec<TraceEvent> {
        let len = self.claimed.load(Ordering::Acquire).min(self.capacity());
        (0..len)
            .filter_map(|slot| {
                let base = slot * EVENT_WORDS;
                let mut words = [0u64; EVENT_WORDS];
                for (i, w) in words.iter_mut().enumerate() {
                    *w = self.words[base + i].load(Ordering::Relaxed);
                }
                TraceEvent::from_words(words)
            })
            .collect()
    }
}

/// Fixed-depth overwrite ring holding the last K events of all flows.
struct FlightRing {
    words: Box<[AtomicU64]>,
    /// Total events ever written; `% depth` locates the next slot.
    written: AtomicUsize,
}

impl FlightRing {
    fn new(depth_events: usize) -> FlightRing {
        FlightRing {
            words: (0..depth_events * EVENT_WORDS)
                .map(|_| AtomicU64::new(0))
                .collect(),
            written: AtomicUsize::new(0),
        }
    }

    fn depth(&self) -> usize {
        self.words.len() / EVENT_WORDS
    }

    fn push(&self, words: [u64; EVENT_WORDS]) {
        let n = self.written.fetch_add(1, Ordering::Relaxed);
        let base = (n % self.depth()) * EVENT_WORDS;
        for (i, w) in words.iter().enumerate() {
            self.words[base + i].store(*w, Ordering::Relaxed);
        }
    }

    /// Ring contents oldest-first.
    fn events(&self) -> Vec<TraceEvent> {
        let written = self.written.load(Ordering::Acquire);
        let depth = self.depth();
        let (start, len) = if written >= depth {
            (written % depth, depth)
        } else {
            (0, written)
        };
        (0..len)
            .filter_map(|i| {
                let base = ((start + i) % depth) * EVENT_WORDS;
                let mut words = [0u64; EVENT_WORDS];
                for (j, w) in words.iter_mut().enumerate() {
                    *w = self.words[base + j].load(Ordering::Relaxed);
                }
                TraceEvent::from_words(words)
            })
            .collect()
    }
}

struct Lane {
    kind: LaneKind,
    trace: LaneBuf,
    flight: FlightRing,
}

/// Maximum trigger records retained; later fires only bump a counter.
const MAX_TRIGGERS: usize = 64;

/// The tracing pipeline: per-lane sampled-trace buffers plus per-lane
/// flight-recorder rings, shared across the NIC, RX cores, and
/// dispatch workers as an `Arc`.
///
/// Every hot-path entry point first checks a single relaxed atomic
/// (`enabled`), so an attached-but-disabled tracer costs one load and
/// branch per tracepoint, and an absent tracer (`Option::None` at call
/// sites) costs nothing.
pub struct Tracer {
    enabled: AtomicBool,
    config: TraceConfig,
    clock: TraceClock,
    lanes: Vec<Lane>,
    frozen: AtomicBool,
    triggers: Mutex<Vec<TriggerRecord>>,
    triggers_suppressed: AtomicU64,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled.load(Ordering::Relaxed))
            .field("lanes", &self.lanes.len())
            .field("frozen", &self.frozen.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Tracer {
    /// A tracer with an external (cycle-counter) clock: lane 0 for the
    /// ingest thread, `rx_cores` RX lanes, `workers` worker lanes.
    #[must_use]
    pub fn new(
        config: TraceConfig,
        rx_cores: usize,
        workers: usize,
        clock: Arc<dyn Fn() -> u64 + Send + Sync>,
    ) -> Tracer {
        Self::build(config, rx_cores, workers, TraceClock::External(clock))
    }

    /// A tracer driven by virtual time ([`Tracer::set_virtual_time`]),
    /// for deterministic stepped runs: timestamps are whatever the
    /// harness last set, so two runs with the same schedule produce
    /// bit-identical events.
    #[must_use]
    pub fn new_virtual(config: TraceConfig, rx_cores: usize, workers: usize) -> Tracer {
        Self::build(
            config,
            rx_cores,
            workers,
            TraceClock::Virtual(AtomicU64::new(0)),
        )
    }

    fn build(config: TraceConfig, rx_cores: usize, workers: usize, clock: TraceClock) -> Tracer {
        let mut kinds = Vec::with_capacity(1 + rx_cores + workers);
        kinds.push(LaneKind::Ingest);
        for i in 0..rx_cores {
            kinds.push(LaneKind::Rx(i as u16));
        }
        for i in 0..workers {
            kinds.push(LaneKind::Worker(i as u16));
        }
        let lanes = kinds
            .into_iter()
            .map(|kind| Lane {
                kind,
                trace: LaneBuf::new(config.lane_capacity),
                flight: FlightRing::new(config.flight_depth),
            })
            .collect();
        Tracer {
            enabled: AtomicBool::new(config.enabled),
            config,
            clock,
            lanes,
            frozen: AtomicBool::new(false),
            triggers: Mutex::new(Vec::new()),
            triggers_suppressed: AtomicU64::new(0),
        }
    }

    /// The lane index of the ingest thread.
    #[must_use]
    pub fn ingest_lane(&self) -> usize {
        0
    }

    /// The lane index of RX core `core`.
    #[must_use]
    pub fn rx_lane(&self, core: usize) -> usize {
        1 + core
    }

    /// The lane index of dispatch worker `worker`.
    #[must_use]
    pub fn worker_lane(&self, worker: usize) -> usize {
        self.lanes
            .iter()
            .position(|l| matches!(l.kind, LaneKind::Worker(_)))
            .unwrap_or(self.lanes.len().saturating_sub(1))
            + worker
    }

    /// Number of lanes.
    #[must_use]
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Whether tracepoints currently record anything. The single
    /// relaxed load on this flag is the entire disabled-mode cost.
    #[inline]
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns all recording (tracing, flight recorder, triggers) on or
    /// off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// The configuration this tracer was built with.
    #[must_use]
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Advances virtual time (stepped harness). No-op with an external
    /// clock.
    pub fn set_virtual_time(&self, t: u64) {
        if let TraceClock::Virtual(v) = &self.clock {
            v.store(t, Ordering::Relaxed);
        }
    }

    fn now(&self) -> u64 {
        match &self.clock {
            TraceClock::External(f) => f(),
            TraceClock::Virtual(v) => v.load(Ordering::Relaxed),
        }
    }

    /// The deterministic flow hash: a splitmix64 finalizer over the
    /// seed and the NIC's symmetric RSS hash of the flow. The RSS hash
    /// is already direction-independent (both directions of a
    /// connection hash identically, §5.1) and already computed once
    /// per packet, so deriving the trace id from it keeps the
    /// per-packet sampling decision to a single finalizer. Every
    /// execution mode hashes the same frame bytes with the same
    /// symmetric key, so threaded, stepped, and replayed runs sample
    /// the same flows. Trace ids inherit the RSS hash's 32 bits of
    /// flow entropy: two flows *can* collide (their span trees would
    /// merge), which at 1-in-N sampling rates is vanishingly rare.
    #[must_use]
    #[inline]
    pub fn flow_hash(seed: u64, rss_hash: u32) -> u64 {
        let mut z = (seed ^ 0xA076_1D64_78BD_642F)
            ^ u64::from(rss_hash).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns the flow's trace id if the flow is sampled, else 0.
    /// `rss_hash` is the NIC's symmetric RSS hash of the packet (on
    /// delivered mbufs, `Mbuf::rss_hash`). Cheap enough to call per
    /// packet: one splitmix finalizer when enabled, one relaxed load
    /// when disabled.
    #[must_use]
    #[inline]
    pub fn sample_flow(&self, rss_hash: u32) -> u64 {
        if !self.enabled() || self.config.sample_one_in == 0 {
            return 0;
        }
        let h = Self::flow_hash(self.config.seed, rss_hash);
        if h.is_multiple_of(self.config.sample_one_in) {
            // Trace id 0 means "unsampled"; remap the (rare) zero hash.
            if h == 0 {
                1
            } else {
                h
            }
        } else {
            0
        }
    }

    /// Records one tracepoint on `lane`. Events always enter the
    /// lane's flight-recorder ring (until frozen); they additionally
    /// enter the sampled-trace buffer when `trace_id` is nonzero.
    #[inline]
    pub fn emit(&self, lane: usize, trace_id: u64, kind: TraceKind, sub: u16, a: u64, b: u64) {
        if !self.enabled() {
            return;
        }
        let event = TraceEvent {
            trace_id,
            tsc: self.now(),
            kind,
            lane: lane as u16,
            sub,
            a,
            b,
        };
        let words = event.to_words();
        let l = &self.lanes[lane];
        if !self.frozen.load(Ordering::Relaxed) {
            l.flight.push(words);
        }
        if trace_id != 0 {
            l.trace.push(words);
        }
    }

    /// Fires an anomaly trigger: the first fire freezes every lane's
    /// flight ring (preserving the moments before the incident);
    /// every fire is recorded, up to a cap.
    pub fn trigger(&self, reason: TriggerReason, detail: u64) {
        if !self.enabled() {
            return;
        }
        let froze = !self.frozen.swap(true, Ordering::SeqCst);
        let record = TriggerRecord {
            reason,
            tsc: self.now(),
            detail,
            froze,
        };
        let mut triggers = self.triggers.lock().unwrap();
        if triggers.len() < MAX_TRIGGERS {
            triggers.push(record);
        } else {
            self.triggers_suppressed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Whether a trigger has frozen the flight rings.
    #[must_use]
    pub fn frozen(&self) -> bool {
        self.frozen.load(Ordering::SeqCst)
    }

    /// All recorded triggers, in fire order.
    #[must_use]
    pub fn triggers(&self) -> Vec<TriggerRecord> {
        self.triggers.lock().unwrap().clone()
    }

    /// Extracts the sampled-trace session for assembly. Call after the
    /// run drains (writers quiesced).
    #[must_use]
    pub fn session(&self) -> TraceSession {
        TraceSession {
            lanes: self
                .lanes
                .iter()
                .map(|l| (l.kind, l.trace.events()))
                .collect(),
            dropped_events: self
                .lanes
                .iter()
                .map(|l| l.trace.dropped.load(Ordering::Relaxed))
                .sum(),
        }
    }

    /// The frozen flight-recorder snapshot, if any trigger fired.
    #[must_use]
    pub fn flight_dump(&self) -> Option<FlightDump> {
        if !self.frozen() {
            return None;
        }
        Some(FlightDump {
            triggers: self.triggers(),
            triggers_suppressed: self.triggers_suppressed.load(Ordering::Relaxed),
            lanes: self
                .lanes
                .iter()
                .map(|l| (l.kind, l.flight.events()))
                .collect(),
        })
    }

    /// The complete end-of-run trace artifact.
    #[must_use]
    pub fn report(&self) -> TraceReport {
        TraceReport {
            session: self.session(),
            flight: self.flight_dump(),
        }
    }
}

/// End-of-run trace artifact attached to the run report: the sampled
/// session plus the flight-recorder dump when a trigger fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceReport {
    /// Sampled per-flow events, per lane.
    pub session: TraceSession,
    /// Black-box snapshot, present iff an anomaly trigger fired.
    pub flight: Option<FlightDump>,
}

/// The sampled events of one run, per lane, ready for assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSession {
    /// Events in emission order, per lane.
    pub lanes: Vec<(LaneKind, Vec<TraceEvent>)>,
    /// Events lost to full trace buffers.
    pub dropped_events: u64,
}

impl TraceSession {
    /// The distinct sampled trace ids seen, ascending.
    #[must_use]
    pub fn trace_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .lanes
            .iter()
            .flat_map(|(_, events)| events.iter().map(|e| e.trace_id))
            .filter(|&id| id != 0)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Reconstructs every sampled flow's span tree, ordered by trace
    /// id.
    #[must_use]
    pub fn assemble(&self) -> Vec<FlowTrace> {
        self.trace_ids()
            .into_iter()
            .filter_map(|id| self.flow(id))
            .collect()
    }

    /// Reconstructs one flow's span tree.
    ///
    /// Cross-lane ordering needs no synchronized clock: the flow's
    /// ingest events, RX-core pipeline events, and per-subscription
    /// worker events are each totally ordered within their
    /// single-writer lane, and the k-th dispatch enqueue pairs with
    /// the k-th worker-side dequeue over the FIFO SPSC ring.
    #[must_use]
    pub fn flow(&self, trace_id: u64) -> Option<FlowTrace> {
        let mut ingest = Vec::new();
        let mut pipeline = Vec::new();
        let mut by_sub: std::collections::BTreeMap<u16, Vec<TraceEvent>> =
            std::collections::BTreeMap::new();
        for (kind, events) in &self.lanes {
            for e in events.iter().filter(|e| e.trace_id == trace_id) {
                match kind {
                    LaneKind::Ingest => ingest.push(*e),
                    LaneKind::Rx(_) => pipeline.push(*e),
                    LaneKind::Worker(_) => by_sub.entry(e.sub).or_default().push(*e),
                }
            }
        }
        if ingest.is_empty() && pipeline.is_empty() && by_sub.is_empty() {
            return None;
        }
        Some(FlowTrace {
            trace_id,
            ingest,
            pipeline,
            workers: by_sub.into_iter().collect(),
        })
    }
}

/// One sampled flow's assembled span tree: the ingest segment, the
/// RX-core pipeline segment, and one worker segment per subscription
/// that received dispatched deliveries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowTrace {
    /// The flow's trace id.
    pub trace_id: u64,
    /// NIC ingest-thread events, in order.
    pub ingest: Vec<TraceEvent>,
    /// RX-core events (filter layers, conntrack, enqueues, inline
    /// callbacks), in order.
    pub pipeline: Vec<TraceEvent>,
    /// Worker-side events per subscription, ascending by sub.
    pub workers: Vec<(u16, Vec<TraceEvent>)>,
}

/// Canonical (mode-independent) rendering of one event: kind, sub,
/// and the deterministic arguments only. Timestamps, lanes, and
/// load-dependent arguments (ring occupancy, queue choice) are
/// excluded so threaded and stepped runs render identically.
fn canonical_line(e: &TraceEvent) -> String {
    let name = e.kind.name();
    match e.kind {
        TraceKind::Rx => format!("{name} seq={}", e.b),
        TraceKind::HwVerdict => format!("{name} action={}", e.a),
        TraceKind::PacketVerdict | TraceKind::ConnVerdict | TraceKind::SessionVerdict => {
            format!("{name} matched={:#x} live={:#x}", e.a, e.b)
        }
        TraceKind::FilterNode => format!("{name} node={:#x} layer={}", e.a, e.b),
        TraceKind::ConnInsert => name.to_string(),
        TraceKind::ConnUpdate => format!("{name} dir={}", e.a),
        TraceKind::ConnExpire => format!("{name} reason={}", e.a),
        TraceKind::DispatchEnqueue | TraceKind::DispatchDequeue => {
            format!("{name} sub={}", e.sub)
        }
        TraceKind::CallbackStart | TraceKind::CallbackEnd => format!("{name} sub={}", e.sub),
        TraceKind::Drop => format!("{name} reason={}", e.a),
    }
}

impl FlowTrace {
    /// All events of the tree in segment order.
    fn segments(&self) -> Vec<(String, &[TraceEvent])> {
        let mut out: Vec<(String, &[TraceEvent])> = Vec::new();
        if !self.ingest.is_empty() {
            out.push(("ingest".to_string(), &self.ingest));
        }
        if !self.pipeline.is_empty() {
            out.push(("pipeline".to_string(), &self.pipeline));
        }
        for (sub, events) in &self.workers {
            out.push((format!("sub {sub}"), events));
        }
        out
    }

    /// The canonical text form: stable across threaded and stepped
    /// execution for the same workload and seed (no timestamps, no
    /// lane ids, no load-dependent arguments).
    #[must_use]
    pub fn canonical_text(&self) -> String {
        let mut out = format!("flow {:016x}\n", self.trace_id);
        for (title, events) in self.segments() {
            out.push_str(&format!("  {title}:\n"));
            for e in events {
                out.push_str("    ");
                out.push_str(&canonical_line(e));
                out.push('\n');
            }
        }
        out
    }

    /// [`FlowTrace::canonical_text`] as bytes, for byte-identity
    /// assertions across execution modes.
    #[must_use]
    pub fn canonical_bytes(&self) -> Vec<u8> {
        self.canonical_text().into_bytes()
    }

    /// Human-readable rendering with per-stage latency attribution:
    /// each event shows its delta from the previous event in its
    /// segment, and dispatch wait / callback execution spans are
    /// summarized per subscription.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = format!("flow {:016x}\n", self.trace_id);
        for (title, events) in self.segments() {
            out.push_str(&format!("  {title}:\n"));
            let mut prev: Option<u64> = None;
            for e in events {
                let delta = prev.map_or(0, |p| e.tsc.saturating_sub(p));
                prev = Some(e.tsc);
                out.push_str(&format!(
                    "    +{delta:<8} {} (lane {})\n",
                    canonical_line(e),
                    e.lane
                ));
            }
        }
        for (sub, waits, execs) in self.dispatch_latencies() {
            let wait: u64 = waits.iter().sum();
            let exec: u64 = execs.iter().sum();
            out.push_str(&format!(
                "  sub {sub} latency: dispatch-wait {wait} cycles over {} deliveries, callback {exec} cycles\n",
                waits.len().max(execs.len()),
            ));
        }
        out
    }

    /// Per-subscription (dispatch-wait, callback-execution) spans in
    /// cycles: the k-th enqueue on the pipeline pairs with the k-th
    /// dequeue on the worker, and each callback-start pairs with the
    /// following callback-end.
    #[must_use]
    pub fn dispatch_latencies(&self) -> Vec<(u16, Vec<u64>, Vec<u64>)> {
        let mut out = Vec::new();
        for (sub, events) in &self.workers {
            let enqueues: Vec<u64> = self
                .pipeline
                .iter()
                .filter(|e| e.kind == TraceKind::DispatchEnqueue && e.sub == *sub)
                .map(|e| e.tsc)
                .collect();
            let dequeues: Vec<u64> = events
                .iter()
                .filter(|e| e.kind == TraceKind::DispatchDequeue)
                .map(|e| e.tsc)
                .collect();
            let waits: Vec<u64> = enqueues
                .iter()
                .zip(&dequeues)
                .map(|(enq, deq)| deq.saturating_sub(*enq))
                .collect();
            let starts: Vec<u64> = events
                .iter()
                .filter(|e| e.kind == TraceKind::CallbackStart)
                .map(|e| e.tsc)
                .collect();
            let ends: Vec<u64> = events
                .iter()
                .filter(|e| e.kind == TraceKind::CallbackEnd)
                .map(|e| e.tsc)
                .collect();
            let execs: Vec<u64> = starts
                .iter()
                .zip(&ends)
                .map(|(s, e)| e.saturating_sub(*s))
                .collect();
            out.push((*sub, waits, execs));
        }
        out
    }

    /// JSON rendering of the span tree (parsable by
    /// [`crate::json::parse`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        fn events_json(events: &[TraceEvent]) -> String {
            let items: Vec<String> = events
                .iter()
                .map(|e| {
                    format!(
                        "{{\"kind\": {}, \"tsc\": {}, \"lane\": {}, \"sub\": {}, \"a\": {}, \"b\": {}}}",
                        json::escape(e.kind.name()),
                        e.tsc,
                        e.lane,
                        e.sub,
                        e.a,
                        e.b
                    )
                })
                .collect();
            format!("[{}]", items.join(", "))
        }
        let workers: Vec<String> = self
            .workers
            .iter()
            .map(|(sub, events)| format!("{{\"sub\": {sub}, \"events\": {}}}", events_json(events)))
            .collect();
        format!(
            "{{\"trace_id\": {}, \"ingest\": {}, \"pipeline\": {}, \"workers\": [{}]}}",
            json::escape(&format!("{:016x}", self.trace_id)),
            events_json(&self.ingest),
            events_json(&self.pipeline),
            workers.join(", ")
        )
    }
}

/// Frozen flight-recorder snapshot: the last K events of every lane
/// at the moment the first anomaly trigger fired, plus the trigger
/// log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDump {
    /// Every trigger that fired, in order (first one froze the rings).
    pub triggers: Vec<TriggerRecord>,
    /// Triggers beyond the retention cap.
    pub triggers_suppressed: u64,
    /// Ring contents oldest-first, per lane.
    pub lanes: Vec<(LaneKind, Vec<TraceEvent>)>,
}

impl FlightDump {
    /// Exact binary serialization (little-endian), for bit-for-bit
    /// replay comparison: triggers, then each lane's tagged event
    /// list.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.triggers.len() as u64).to_le_bytes());
        for t in &self.triggers {
            out.push(t.reason.code());
            out.push(u8::from(t.froze));
            out.extend_from_slice(&t.tsc.to_le_bytes());
            out.extend_from_slice(&t.detail.to_le_bytes());
        }
        out.extend_from_slice(&self.triggers_suppressed.to_le_bytes());
        for (kind, events) in &self.lanes {
            let (tag, idx) = kind.tag();
            out.push(tag);
            out.extend_from_slice(&idx.to_le_bytes());
            out.extend_from_slice(&(events.len() as u64).to_le_bytes());
            for e in events {
                for w in e.to_words() {
                    out.extend_from_slice(&w.to_le_bytes());
                }
            }
        }
        out
    }

    /// Total events captured across all lanes.
    #[must_use]
    pub fn event_count(&self) -> usize {
        self.lanes.iter().map(|(_, e)| e.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn virtual_tracer(sample_one_in: u64) -> Tracer {
        Tracer::new_virtual(
            TraceConfig {
                sample_one_in,
                seed: 7,
                lane_capacity: 64,
                flight_depth: 8,
                ..TraceConfig::default()
            },
            2,
            2,
        )
    }

    #[test]
    fn event_words_round_trip() {
        let e = TraceEvent {
            trace_id: 0xDEAD_BEEF,
            tsc: 12345,
            kind: TraceKind::DispatchEnqueue,
            lane: 3,
            sub: 9,
            a: 42,
            b: u64::MAX,
        };
        assert_eq!(TraceEvent::from_words(e.to_words()), Some(e));
        assert_eq!(TraceEvent::from_words([0; EVENT_WORDS]), None);
        assert_eq!(EVENT_BYTES, 40);
    }

    #[test]
    fn flow_hash_is_seeded_and_pure() {
        let h1 = Tracer::flow_hash(7, 0x1234_5678);
        assert_eq!(
            h1,
            Tracer::flow_hash(7, 0x1234_5678),
            "pure in (seed, hash)"
        );
        assert_ne!(
            Tracer::flow_hash(8, 0x1234_5678),
            h1,
            "seed must steer the sampled population"
        );
        assert_ne!(Tracer::flow_hash(7, 0x1234_5679), h1);
    }

    #[test]
    fn sampling_is_deterministic() {
        let t = virtual_tracer(4);
        let mut sampled = 0;
        for rss in 1000..2000u32 {
            let id1 = t.sample_flow(rss);
            assert_eq!(id1, t.sample_flow(rss));
            if id1 != 0 {
                sampled += 1;
            }
        }
        // 1-in-4 sampling over 1000 flows: expect roughly 250.
        assert!((100..400).contains(&sampled), "sampled {sampled} of 1000");
        let off = virtual_tracer(0);
        assert_eq!(off.sample_flow(1000), 0);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = virtual_tracer(1);
        t.set_enabled(false);
        assert_eq!(t.sample_flow(7), 0);
        t.emit(0, 5, TraceKind::Rx, 0, 0, 0);
        t.trigger(TriggerReason::DropBurst, 1);
        assert!(t.session().lanes.iter().all(|(_, e)| e.is_empty()));
        assert!(t.flight_dump().is_none());
    }

    #[test]
    fn lane_overflow_counts_dropped() {
        let t = Tracer::new_virtual(
            TraceConfig {
                sample_one_in: 1,
                lane_capacity: 4,
                flight_depth: 4,
                ..TraceConfig::default()
            },
            1,
            0,
        );
        for i in 0..10 {
            t.emit(1, 99, TraceKind::ConnUpdate, 0, i, 0);
        }
        let session = t.session();
        assert_eq!(session.lanes[1].1.len(), 4);
        assert_eq!(session.dropped_events, 6);
    }

    #[test]
    fn flight_ring_keeps_last_k_oldest_first() {
        let t = virtual_tracer(0);
        for i in 0..20u64 {
            t.set_virtual_time(i);
            t.emit(0, 0, TraceKind::Rx, 0, 0, i);
        }
        t.trigger(TriggerReason::DropBurst, 123);
        // Post-freeze events must not enter the ring.
        t.emit(0, 0, TraceKind::Rx, 0, 0, 999);
        let dump = t.flight_dump().expect("trigger froze the rings");
        let (_, lane0) = &dump.lanes[0];
        assert_eq!(lane0.len(), 8, "ring depth K");
        assert_eq!(
            lane0.iter().map(|e| e.b).collect::<Vec<_>>(),
            (12..20).collect::<Vec<_>>(),
            "last K events, oldest first"
        );
        assert_eq!(dump.triggers.len(), 1);
        assert!(dump.triggers[0].froze);
        assert_eq!(dump.triggers[0].detail, 123);
        // Dump serialization round-trips deterministically.
        assert_eq!(dump.to_bytes(), t.flight_dump().unwrap().to_bytes());
        assert!(dump.event_count() >= 8);
    }

    #[test]
    fn only_first_trigger_freezes() {
        let t = virtual_tracer(0);
        t.trigger(TriggerReason::GovernorShed, 1);
        t.trigger(TriggerReason::DispatchShed, 2);
        let dump = t.flight_dump().unwrap();
        assert_eq!(dump.triggers.len(), 2);
        assert!(dump.triggers[0].froze);
        assert!(!dump.triggers[1].froze);
    }

    #[test]
    fn assembles_segmented_span_tree() {
        let t = virtual_tracer(1);
        let id = 77;
        // Ingest lane: rx + hw verdict.
        t.set_virtual_time(10);
        t.emit(0, id, TraceKind::Rx, 0, 0, 0);
        t.emit(0, id, TraceKind::HwVerdict, 0, 2, 1);
        // RX lane: verdict, insert, enqueue for subs 1 and 0.
        t.set_virtual_time(20);
        t.emit(1, id, TraceKind::PacketVerdict, 0, 0b01, 0b10);
        t.emit(1, id, TraceKind::ConnInsert, 0, 0, 0);
        t.emit(1, id, TraceKind::DispatchEnqueue, 1, 0, 1);
        t.emit(1, id, TraceKind::DispatchEnqueue, 0, 0, 1);
        // Worker lanes: sub 1 on worker lane 3, sub 0 on lane 4.
        t.set_virtual_time(30);
        t.emit(3, id, TraceKind::DispatchDequeue, 1, 0, 1);
        t.emit(3, id, TraceKind::CallbackStart, 1, 0, 0);
        t.set_virtual_time(45);
        t.emit(3, id, TraceKind::CallbackEnd, 1, 0, 0);
        t.emit(4, id, TraceKind::DispatchDequeue, 0, 0, 1);
        // Unrelated flow must not leak in.
        t.emit(1, 555, TraceKind::ConnInsert, 0, 0, 0);

        let session = t.session();
        assert_eq!(session.trace_ids(), vec![77, 555]);
        let flows = session.assemble();
        assert_eq!(flows.len(), 2);
        let flow = &flows[0];
        assert_eq!(flow.trace_id, 77);
        assert_eq!(flow.ingest.len(), 2);
        assert_eq!(flow.pipeline.len(), 4);
        // Worker segments ordered by sub, regardless of lane.
        assert_eq!(flow.workers[0].0, 0);
        assert_eq!(flow.workers[1].0, 1);
        assert_eq!(flow.workers[1].1.len(), 3);
        // Latency attribution: sub 1 waited 30-20=10, executed 45-30=15.
        let lat = flow.dispatch_latencies();
        let sub1 = lat.iter().find(|(s, _, _)| *s == 1).unwrap();
        assert_eq!(sub1.1, vec![10]);
        assert_eq!(sub1.2, vec![15]);
        assert!(flow.render_text().contains("dispatch-wait 10"));
    }

    #[test]
    fn canonical_form_ignores_time_lane_and_occupancy() {
        let mk = |tsc_base: u64, lane: usize, occupancy: u64| {
            let t = virtual_tracer(1);
            t.set_virtual_time(tsc_base);
            t.emit(lane, 9, TraceKind::PacketVerdict, 0, 1, 2);
            t.emit(lane, 9, TraceKind::DispatchEnqueue, 2, 0, occupancy);
            t.session().flow(9).unwrap().canonical_bytes()
        };
        assert_eq!(mk(100, 1, 5), mk(9000, 2, 1));
    }

    #[test]
    fn json_rendering_parses() {
        let t = virtual_tracer(1);
        t.emit(0, 3, TraceKind::Rx, 0, 0, 7);
        t.emit(1, 3, TraceKind::ConnInsert, 0, 0, 0);
        t.emit(3, 3, TraceKind::CallbackStart, 1, 0, 0);
        let flow = t.session().flow(3).unwrap();
        let doc = json::parse(&flow.to_json()).expect("span-tree JSON must parse");
        assert_eq!(doc.get("trace_id").unwrap().as_str().unwrap().len(), 16);
        assert_eq!(doc.get("ingest").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(doc.get("workers").unwrap().as_arr().unwrap().len(), 1);
    }

    #[test]
    fn lane_layout_helpers() {
        let t = virtual_tracer(1);
        assert_eq!(t.ingest_lane(), 0);
        assert_eq!(t.rx_lane(1), 2);
        assert_eq!(t.worker_lane(0), 3);
        assert_eq!(t.worker_lane(1), 4);
        assert_eq!(t.lane_count(), 5);
    }
}
