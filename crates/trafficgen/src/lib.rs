//! # retina-trafficgen
//!
//! Synthetic traffic generation: the stand-in for the paper's production
//! 100GbE campus link (see DESIGN.md's substitution table).
//!
//! The paper evaluates Retina on live university traffic whose key
//! characteristics are reported in Appendix C (Table 2 / Figure 13).
//! This crate generates traffic matching those *distributions* — the
//! protocol mix, scan-dominated connection arrivals, heavy-tailed flow
//! lengths, bimodal packet sizes, and out-of-order behavior — with real
//! parseable payloads (TLS handshakes with SNIs and ciphersuites, HTTP
//! transactions, DNS exchanges, SSH banners), deterministically from a
//! seed.
//!
//! Workloads:
//!
//! - [`campus::CampusSource`] — the general campus mix (Figures 5, 7, 8,
//!   Table 2).
//! - [`https_workload::HttpsWorkload`] — wrk2-style closed-loop 256 KB
//!   HTTPS requests (Figure 6's controlled comparison).
//! - [`video::VideoWorkload`] — Netflix/YouTube streaming sessions
//!   (Figure 9, §7.3).
//! - [`traces`] — small Stratosphere-like mixed traces for the Appendix B
//!   filter-compilation study (Figure 12).
//!
//! All generators implement [`retina_core::TrafficSource`] for live runs
//! and provide `generate_all` for pre-materialized benchmarking (so
//! generation cost stays out of the measured path).

#![warn(missing_docs)]

pub mod campus;
pub mod flows;
pub mod https_workload;
pub mod rng;
pub mod traces;
pub mod video;

pub use campus::{CampusConfig, CampusSource};
pub use https_workload::HttpsWorkload;
pub use video::{VideoConfig, VideoWorkload};

use retina_support::bytes::Bytes;

/// A pre-materialized packet stream: implements
/// [`retina_core::TrafficSource`] by handing out fixed-size batches.
/// Cloneable so benches can replay the same traffic repeatedly.
#[derive(Debug, Clone)]
pub struct PreloadedSource {
    packets: std::sync::Arc<Vec<(Bytes, u64)>>,
    cursor: usize,
    batch: usize,
}

impl PreloadedSource {
    /// Wraps a packet vector.
    pub fn new(packets: Vec<(Bytes, u64)>) -> Self {
        PreloadedSource {
            packets: std::sync::Arc::new(packets),
            cursor: 0,
            batch: 256,
        }
    }

    /// Total packets in the stream.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Returns true when the stream holds no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Total wire bytes in the stream.
    pub fn total_bytes(&self) -> u64 {
        self.packets.iter().map(|(f, _)| f.len() as u64).sum()
    }

    /// Restarts the stream from the beginning.
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }
}

impl retina_core::TrafficSource for PreloadedSource {
    fn next_batch(&mut self, out: &mut Vec<(Bytes, u64)>) -> bool {
        if self.cursor >= self.packets.len() {
            return false;
        }
        let end = (self.cursor + self.batch).min(self.packets.len());
        out.extend(self.packets[self.cursor..end].iter().cloned());
        self.cursor = end;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retina_core::TrafficSource;

    #[test]
    fn preloaded_source_batches() {
        let packets: Vec<(Bytes, u64)> = (0..600u64)
            .map(|i| (Bytes::from(vec![0u8; 60]), i))
            .collect();
        let mut src = PreloadedSource::new(packets);
        assert_eq!(src.len(), 600);
        assert_eq!(src.total_bytes(), 600 * 60);
        let mut total = 0;
        let mut out = Vec::new();
        while src.next_batch(&mut out) {
            total += out.len();
            out.clear();
        }
        assert_eq!(total, 600);
        src.rewind();
        let mut out2 = Vec::new();
        assert!(src.next_batch(&mut out2));
    }
}
