//! The predicate trie: Retina's intermediate representation for filters.
//!
//! Flat patterns are merged into a trie in which every node is one atomic
//! predicate and input must match at least one root-to-leaf path to
//! satisfy the filter (§4.1, Figure 3). Nodes are restricted to a single
//! parent, which removes ambiguity when the trie is later split into
//! per-layer sub-filters and compiled to code. The root represents the
//! implicit `eth` predicate, which every frame satisfies.
//!
//! After construction an optimization pass removes redundant branches:
//! the subtree below a node where some pattern *ends* is unreachable work
//! (the filter is a disjunction, so a completed pattern subsumes every
//! longer pattern through the same node).

pub use crate::registry::FilterLayer;

use crate::ast::Predicate;
use crate::datatypes::{FilterError, SubscriptionSet};
use crate::dnf::{self, FlatPattern};
use crate::registry::ProtocolRegistry;

/// One node of the predicate trie.
#[derive(Debug, Clone)]
pub struct TrieNode {
    /// Node ID (index into the trie's arena; stable across optimization).
    pub id: usize,
    /// The predicate; `None` only for the root (`eth`).
    pub pred: Option<Predicate>,
    /// Processing layer at which this predicate is decided.
    pub layer: FilterLayer,
    /// Parent node (`None` for the root).
    pub parent: Option<usize>,
    /// Child node IDs in insertion order.
    pub children: Vec<usize>,
    /// True when a complete filter pattern ends at this node (for any
    /// subscription; equivalent to `!subs.is_empty()`).
    pub pattern_end: bool,
    /// Subscriptions whose pattern ends at this node (the per-node action
    /// bitset of the merged trie). For a single-subscription trie this is
    /// `{0}` wherever `pattern_end` is true.
    pub subs: SubscriptionSet,
    /// Subscriptions with a pattern ending at or below this node — the
    /// set that is still *live* when evaluation reaches this node.
    pub subtree_subs: SubscriptionSet,
}

/// The predicate trie for one compiled filter, shared by one or more
/// subscriptions.
///
/// When built with [`PredicateTrie::from_sources`], the patterns of all N
/// subscription filters are merged into one trie; terminal nodes carry a
/// [`SubscriptionSet`] recording which subscriptions' pattern ends there,
/// so one walk decides every subscription at once (the shared-computation
/// design of the multi-subscription runtime).
#[derive(Debug, Clone)]
pub struct PredicateTrie {
    nodes: Vec<TrieNode>,
    source: String,
    sources: Vec<String>,
}

impl PredicateTrie {
    /// Parses, expands, and builds the trie for `src` (one subscription).
    pub fn from_source(src: &str, registry: &ProtocolRegistry) -> Result<Self, FilterError> {
        Self::from_sources(&[src], registry)
    }

    /// Parses N filter sources and merges them into one trie, tagging
    /// each source's pattern ends with its subscription index.
    ///
    /// Per subscription, patterns proven dead by the semantic analyzer
    /// (subsumed by a broader pattern of the *same* subscription, see
    /// [`crate::analysis::dead_pattern_indices`]) are dropped before
    /// insertion — this is strictly more general than the prefix-based
    /// `shadow_clear` pass, which still runs to catch cross-insertion
    /// shadowing. The `tests/tests/analysis.rs` differential proptest
    /// checks the pruned trie against [`Self::from_sources_naive`].
    pub fn from_sources(srcs: &[&str], registry: &ProtocolRegistry) -> Result<Self, FilterError> {
        Self::from_sources_inner(srcs, registry, true)
    }

    /// Builds the same merged trie as [`Self::from_sources`] but with every
    /// optimization disabled: no analyzer-driven dead-pattern elimination,
    /// no `shadow_clear`, no branch pruning. Exists as the reference
    /// implementation for differential testing of the optimizing build;
    /// not intended for production use.
    pub fn from_sources_naive(
        srcs: &[&str],
        registry: &ProtocolRegistry,
    ) -> Result<Self, FilterError> {
        Self::from_sources_inner(srcs, registry, false)
    }

    /// Single-subscription variant of [`Self::from_sources_naive`].
    pub fn from_source_naive(src: &str, registry: &ProtocolRegistry) -> Result<Self, FilterError> {
        Self::from_sources_naive(&[src], registry)
    }

    fn from_sources_inner(
        srcs: &[&str],
        registry: &ProtocolRegistry,
        optimize: bool,
    ) -> Result<Self, FilterError> {
        if srcs.is_empty() || srcs.len() > SubscriptionSet::MAX {
            return Err(FilterError::parse(
                0,
                format!(
                    "a merged trie serves between 1 and {} subscriptions, got {}",
                    SubscriptionSet::MAX,
                    srcs.len()
                ),
            ));
        }
        let mut trie = Self::empty_trie(&Self::combined_source(srcs), srcs);
        for (sub, src) in srcs.iter().enumerate() {
            let patterns = Self::expand(src, registry)?;
            let keep = if optimize {
                crate::analysis::live_pattern_mask(&patterns)
            } else {
                vec![true; patterns.len()]
            };
            for (pattern, keep) in patterns.iter().zip(keep) {
                if keep {
                    trie.insert(pattern, registry, sub);
                }
            }
        }
        if optimize {
            trie.finalize();
        } else {
            trie.finalize_naive();
        }
        Ok(trie)
    }

    fn expand(src: &str, registry: &ProtocolRegistry) -> Result<Vec<FlatPattern>, FilterError> {
        if src.trim().is_empty() {
            // The empty filter subscribes to everything.
            Ok(vec![FlatPattern { predicates: vec![] }])
        } else {
            let expr = crate::parser::parse(src)?;
            let conjunctions = dnf::to_dnf(&expr);
            dnf::expand_patterns(&conjunctions, registry)
        }
    }

    /// The disjunction of N sources as a single parseable source string
    /// (used for diagnostics and default hardware-rule synthesis). A
    /// single source is kept verbatim; if any source matches everything,
    /// so does the union.
    fn combined_source(srcs: &[&str]) -> String {
        if srcs.len() == 1 {
            return srcs[0].to_string();
        }
        if srcs.iter().any(|s| s.trim().is_empty()) {
            return String::new();
        }
        srcs.iter()
            .map(|s| format!("({s})"))
            .collect::<Vec<_>>()
            .join(" or ")
    }

    fn empty_trie(src: &str, srcs: &[&str]) -> Self {
        PredicateTrie {
            nodes: vec![TrieNode {
                id: 0,
                pred: None,
                layer: FilterLayer::Packet,
                parent: None,
                children: Vec::new(),
                pattern_end: false,
                subs: SubscriptionSet::empty(),
                subtree_subs: SubscriptionSet::empty(),
            }],
            source: src.to_string(),
            sources: srcs.iter().map(std::string::ToString::to_string).collect(),
        }
    }

    /// Builds a single-subscription trie from already-expanded patterns.
    pub fn build(patterns: &[FlatPattern], registry: &ProtocolRegistry, src: &str) -> Self {
        let mut trie = Self::empty_trie(src, &[src]);
        for pattern in patterns {
            trie.insert(pattern, registry, 0);
        }
        trie.finalize();
        trie
    }

    fn insert(&mut self, pattern: &FlatPattern, registry: &ProtocolRegistry, sub: usize) {
        let mut cur = 0usize;
        for pred in &pattern.predicates {
            let existing = self.nodes[cur]
                .children
                .iter()
                .copied()
                .find(|&c| self.nodes[c].pred.as_ref() == Some(pred));
            cur = match existing {
                Some(c) => c,
                None => {
                    let id = self.nodes.len();
                    let layer = dnf::predicate_layer(pred, registry);
                    self.nodes.push(TrieNode {
                        id,
                        pred: Some(pred.clone()),
                        layer,
                        parent: Some(cur),
                        children: Vec::new(),
                        pattern_end: false,
                        subs: SubscriptionSet::empty(),
                        subtree_subs: SubscriptionSet::empty(),
                    });
                    self.nodes[cur].children.push(id);
                    id
                }
            };
        }
        self.nodes[cur].subs.insert(sub);
    }

    /// Post-construction pass: per-subscription subsumption clearing,
    /// subtree live-set computation, pruning, and `pattern_end` sync.
    fn finalize(&mut self) {
        self.shadow_clear(0, SubscriptionSet::empty());
        self.compute_subtrees(0);
        self.prune(0);
        for node in &mut self.nodes {
            node.pattern_end = !node.subs.is_empty();
        }
    }

    /// Finalization without the optimization passes: only the bookkeeping
    /// (`subtree_subs`, `pattern_end`) needed for a walkable trie. Used by
    /// [`Self::from_sources_naive`] so differential tests can compare the
    /// optimized trie against an unoptimized reference.
    fn finalize_naive(&mut self) {
        self.compute_subtrees(0);
        for node in &mut self.nodes {
            node.pattern_end = !node.subs.is_empty();
        }
    }

    /// Per-subscription subsumption: once a subscription's pattern ends
    /// at a node, any longer pattern of the *same* subscription through
    /// that node is redundant (the filter is a disjunction), so the
    /// subscription is cleared from every descendant. Other
    /// subscriptions' deeper patterns are untouched.
    fn shadow_clear(&mut self, id: usize, ended: SubscriptionSet) {
        self.nodes[id].subs -= ended;
        let ended = ended | self.nodes[id].subs;
        let children = self.nodes[id].children.clone();
        for c in children {
            self.shadow_clear(c, ended);
        }
    }

    fn compute_subtrees(&mut self, id: usize) -> SubscriptionSet {
        let mut acc = self.nodes[id].subs;
        let children = self.nodes[id].children.clone();
        for c in children {
            acc |= self.compute_subtrees(c);
        }
        self.nodes[id].subtree_subs = acc;
        acc
    }

    /// Removes branches no subscription can complete through (all their
    /// pattern ends were shadow-cleared). Nodes stay in the arena so IDs
    /// remain stable; they just become unreachable.
    fn prune(&mut self, id: usize) {
        let kept: Vec<usize> = self.nodes[id]
            .children
            .iter()
            .copied()
            .filter(|&c| !self.nodes[c].subtree_subs.is_empty())
            .collect();
        self.nodes[id].children = kept.clone();
        for c in kept {
            self.prune(c);
        }
    }

    /// The filter source text: the original source for a
    /// single-subscription trie, or the disjunction of all sources for a
    /// merged trie (empty if the union matches everything).
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The per-subscription source texts, indexed by subscription.
    pub fn sources(&self) -> &[String] {
        &self.sources
    }

    /// Number of subscriptions merged into this trie.
    pub fn num_subscriptions(&self) -> usize {
        self.sources.len()
    }

    /// Node by ID.
    pub fn node(&self, id: usize) -> &TrieNode {
        &self.nodes[id]
    }

    /// The root node (implicit `eth`).
    pub fn root(&self) -> &TrieNode {
        &self.nodes[0]
    }

    /// Total nodes in the arena (including any pruned-unreachable ones).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns true if the trie is trivially empty (never: there is always
    /// a root).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// IDs on the path from the root to `id`, inclusive.
    pub fn path_to(&self, id: usize) -> Vec<usize> {
        let mut path = vec![id];
        let mut cur = id;
        while let Some(p) = self.nodes[cur].parent {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Reachable node IDs in depth-first order.
    pub fn reachable(&self) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![0usize];
        while let Some(id) = stack.pop() {
            out.push(id);
            for &c in self.nodes[id].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Whether the filter matches all traffic (a pattern ends at the root).
    pub fn matches_everything(&self) -> bool {
        self.nodes[0].pattern_end
    }

    /// Connection-layer protocols referenced by the filter, in first-seen
    /// order — the set the framework must be able to probe for.
    pub fn conn_protocols(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for id in self.reachable() {
            let node = &self.nodes[id];
            if node.layer == FilterLayer::Connection {
                if let Some(pred) = &node.pred {
                    let p = pred.protocol().to_string();
                    if !out.contains(&p) {
                        out.push(p);
                    }
                }
            }
        }
        out
    }

    /// Packet-layer nodes that the packet filter can return as a
    /// non-terminal match: nodes with at least one connection-layer child.
    /// (The root qualifies when the filter has conn-layer predicates
    /// directly below it — impossible in practice since conn protocols
    /// always sit under L3/L4, but handled uniformly.)
    pub fn packet_frontiers(&self) -> Vec<usize> {
        self.reachable()
            .into_iter()
            .filter(|&id| {
                let node = &self.nodes[id];
                node.layer == FilterLayer::Packet
                    && node
                        .children
                        .iter()
                        .any(|&c| self.nodes[c].layer != FilterLayer::Packet)
            })
            .collect()
    }

    /// Connection-layer candidate nodes for a packet-filter result: the
    /// connection-layer children of every node on the path to
    /// `pkt_term_node`. Evaluating candidates from the whole path (not
    /// just the deepest node) keeps sibling patterns that share a packet
    /// prefix alive — e.g. in Figure 3 a TCP packet with port ≥ 100 is
    /// tagged with node 4, but the `http` pattern through node 2 must
    /// still be considered.
    pub fn conn_candidates(&self, pkt_term_node: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for id in self.path_to(pkt_term_node) {
            for &c in &self.nodes[id].children {
                if self.nodes[c].layer == FilterLayer::Connection {
                    out.push(c);
                }
            }
        }
        out
    }

    /// Session-layer children of a connection node.
    pub fn session_candidates(&self, conn_node: usize) -> Vec<usize> {
        self.nodes[conn_node]
            .children
            .iter()
            .copied()
            .filter(|&c| self.nodes[c].layer == FilterLayer::Session)
            .collect()
    }

    /// True when any reachable node is connection- or session-layer (i.e.
    /// the filter requires stateful processing to decide).
    pub fn needs_conn_layer(&self) -> bool {
        self.reachable()
            .into_iter()
            .any(|id| self.nodes[id].layer != FilterLayer::Packet)
    }

    /// True when any reachable node is session-layer.
    pub fn needs_session_layer(&self) -> bool {
        self.reachable()
            .into_iter()
            .any(|id| self.nodes[id].layer == FilterLayer::Session)
    }

    /// Connection-layer protocols subscription `sub` needs probed: the
    /// protocols of conn-layer nodes its patterns run through.
    pub fn conn_protocols_for(&self, sub: usize) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for id in self.reachable() {
            let node = &self.nodes[id];
            if node.layer == FilterLayer::Connection && node.subtree_subs.contains(sub) {
                if let Some(pred) = &node.pred {
                    let p = pred.protocol().to_string();
                    if !out.contains(&p) {
                        out.push(p);
                    }
                }
            }
        }
        out
    }

    /// True when subscription `sub`'s filter has connection- or
    /// session-layer predicates.
    pub fn needs_conn_layer_for(&self, sub: usize) -> bool {
        self.reachable().into_iter().any(|id| {
            let node = &self.nodes[id];
            node.layer != FilterLayer::Packet && node.subtree_subs.contains(sub)
        })
    }

    /// True when subscription `sub`'s filter has session-layer predicates.
    pub fn needs_session_layer_for(&self, sub: usize) -> bool {
        self.reachable().into_iter().any(|id| {
            let node = &self.nodes[id];
            node.layer == FilterLayer::Session && node.subtree_subs.contains(sub)
        })
    }

    /// Renders the trie as an indented outline (for debugging and docs).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.dump_node(0, 0, &mut out);
        out
    }

    fn dump_node(&self, id: usize, depth: usize, out: &mut String) {
        let node = &self.nodes[id];
        let label = node
            .pred
            .as_ref()
            .map_or_else(|| "eth".to_string(), std::string::ToString::to_string);
        out.push_str(&"  ".repeat(depth));
        let end = if !node.pattern_end {
            String::new()
        } else if self.num_subscriptions() > 1 {
            format!(" *{}", node.subs)
        } else {
            " *".to_string()
        };
        out.push_str(&format!("[{}] {} ({:?}){}\n", id, label, node.layer, end));
        for &c in &node.children {
            self.dump_node(c, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(src: &str) -> PredicateTrie {
        PredicateTrie::from_source(src, &ProtocolRegistry::default()).unwrap()
    }

    #[test]
    fn figure3_trie_shape() {
        let trie = build("(ipv4 and tcp.port >= 100 and tls.sni ~ 'netflix') or http");
        // Root (eth) with ipv4 and ipv6 children.
        let root = trie.root();
        assert!(!root.pattern_end);
        assert_eq!(root.children.len(), 2);
        // The dump should contain every predicate from Figure 3.
        let dump = trie.dump();
        for needle in [
            "ipv4",
            "ipv6",
            "tcp",
            "tcp.port >= 100",
            "tls",
            "tls.sni",
            "http",
        ] {
            assert!(dump.contains(needle), "missing {needle} in:\n{dump}");
        }
        // Exactly two pattern-ends at conn layer (http v4/v6) and one at
        // session layer (tls.sni).
        let ends: Vec<_> = trie
            .reachable()
            .into_iter()
            .filter(|&id| trie.node(id).pattern_end)
            .collect();
        assert_eq!(ends.len(), 3, "{dump}");
    }

    #[test]
    fn shared_prefixes_are_merged() {
        let trie = build("tcp.port = 80 or tcp.port = 443");
        // eth -> {ipv4, ipv6} -> tcp -> {port=80, port=443}: one tcp node
        // per IP version, not per disjunct.
        let tcp_nodes: Vec<_> = trie
            .reachable()
            .into_iter()
            .filter(|&id| {
                trie.node(id)
                    .pred
                    .as_ref()
                    .is_some_and(|p| p.is_unary() && p.protocol() == "tcp")
            })
            .collect();
        assert_eq!(tcp_nodes.len(), 2);
        for id in tcp_nodes {
            assert_eq!(trie.node(id).children.len(), 2);
        }
    }

    #[test]
    fn subsumption_pruning() {
        // `ipv4 or (ipv4 and tcp)` ≡ `ipv4`: the tcp branch is pruned.
        let trie = build("ipv4 or (ipv4 and tcp)");
        let ipv4 = trie.root().children[0];
        assert!(trie.node(ipv4).pattern_end);
        assert!(trie.node(ipv4).children.is_empty());
    }

    #[test]
    fn empty_filter_matches_everything() {
        let trie = build("");
        assert!(trie.matches_everything());
        assert!(!trie.needs_conn_layer());
        let trie = build("eth");
        assert!(trie.matches_everything());
    }

    #[test]
    fn conn_protocols_collected() {
        let trie = build("tls or (http and ipv4) or dns");
        let protos = trie.conn_protocols();
        assert!(protos.contains(&"tls".to_string()));
        assert!(protos.contains(&"http".to_string()));
        assert!(protos.contains(&"dns".to_string()));
        assert_eq!(protos.len(), 3);
    }

    #[test]
    fn frontier_and_candidates_figure3() {
        let trie = build("(ipv4 and tcp.port >= 100 and tls.sni ~ 'netflix') or http");
        let frontiers = trie.packet_frontiers();
        // Frontiers: ipv4/tcp (http child), ipv4/tcp/port (tls child),
        // ipv6/tcp (http child).
        assert_eq!(frontiers.len(), 3, "{}", trie.dump());
        // Find the port node: its conn candidates must include BOTH tls
        // (its own child) and http (sibling branch through the shared tcp
        // node) — the Figure 3 path-walk property.
        let port_node = trie
            .reachable()
            .into_iter()
            .find(|&id| {
                trie.node(id)
                    .pred
                    .as_ref()
                    .is_some_and(|p| p.to_string() == "tcp.port >= 100")
            })
            .unwrap();
        let cands = trie.conn_candidates(port_node);
        let protos: Vec<_> = cands
            .iter()
            .map(|&c| trie.node(c).pred.as_ref().unwrap().protocol().to_string())
            .collect();
        assert!(protos.contains(&"tls".to_string()));
        assert!(protos.contains(&"http".to_string()));
    }

    #[test]
    fn needs_layers() {
        assert!(!build("tcp.port = 80").needs_conn_layer());
        assert!(build("http").needs_conn_layer());
        assert!(!build("http").needs_session_layer());
        assert!(build("tls.sni ~ 'x'").needs_session_layer());
    }

    #[test]
    fn path_to_root() {
        let trie = build("tls");
        let deep = trie
            .reachable()
            .into_iter()
            .find(|&id| trie.node(id).layer == FilterLayer::Connection)
            .unwrap();
        let path = trie.path_to(deep);
        assert_eq!(path[0], 0);
        assert_eq!(*path.last().unwrap(), deep);
        assert!(path.len() >= 3); // eth -> ip -> tcp -> tls
    }

    #[test]
    fn session_chain_nodes() {
        let trie = build("tls.sni ~ 'a' and tls.version = 771");
        // Session predicates chain: tls -> sni -> version.
        let conn = trie
            .reachable()
            .into_iter()
            .find(|&id| trie.node(id).layer == FilterLayer::Connection)
            .unwrap();
        let sess = trie.session_candidates(conn);
        assert_eq!(sess.len(), 1);
        let sni = sess[0];
        assert_eq!(trie.node(sni).children.len(), 1);
        let version = trie.node(sni).children[0];
        assert!(trie.node(version).pattern_end);
    }

    #[test]
    fn duplicate_patterns_dedupe() {
        let a = build("tcp or tcp");
        let b = build("tcp");
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn reachable_excludes_pruned() {
        // The analyzer drops the dead `ipv4 and tcp` pattern before
        // insertion, so the optimized arena never grows the tcp node at
        // all; the naive build keeps it and marks it reachable.
        let trie = build("ipv4 or (ipv4 and tcp)");
        assert_eq!(trie.reachable().len(), trie.len());
        let naive = PredicateTrie::from_source_naive(
            "ipv4 or (ipv4 and tcp)",
            &ProtocolRegistry::default(),
        )
        .unwrap();
        assert!(trie.len() < naive.len());
        assert_eq!(naive.reachable().len(), naive.len());
    }

    #[test]
    fn analyzer_prunes_subset_not_just_prefix() {
        // [ipv4] subsumes [ipv4, ipv4.ttl > 64, tcp] although their trie
        // paths diverge after the ipv4 node — prefix-based shadow_clear
        // alone cannot catch this.
        let pruned = build("ipv4 or (ipv4.ttl > 64 and tcp)");
        let solo = build("ipv4");
        assert_eq!(pruned.len(), solo.len());
        assert!(pruned.root().children.len() == 1);
    }

    fn build_multi(srcs: &[&str]) -> PredicateTrie {
        PredicateTrie::from_sources(srcs, &ProtocolRegistry::default()).unwrap()
    }

    #[test]
    fn merged_trie_tags_pattern_ends_per_subscription() {
        let trie = build_multi(&["tls", "http", "tls or dns"]);
        assert_eq!(trie.num_subscriptions(), 3);
        // The tls conn nodes (v4 + v6) end patterns for subs 0 and 2.
        let tls_ends: Vec<_> = trie
            .reachable()
            .into_iter()
            .filter(|&id| {
                let n = trie.node(id);
                n.pattern_end && n.pred.as_ref().is_some_and(|p| p.protocol() == "tls")
            })
            .collect();
        assert!(!tls_ends.is_empty());
        for id in tls_ends {
            let subs = trie.node(id).subs;
            assert!(subs.contains(0) && subs.contains(2) && !subs.contains(1));
        }
        // Union of protocols across subscriptions.
        let protos = trie.conn_protocols();
        assert_eq!(protos.len(), 3);
        // Per-subscription protocol needs.
        assert_eq!(trie.conn_protocols_for(0), vec!["tls".to_string()]);
        assert_eq!(trie.conn_protocols_for(1), vec!["http".to_string()]);
        let p2 = trie.conn_protocols_for(2);
        assert!(p2.contains(&"tls".to_string()) && p2.contains(&"dns".to_string()));
    }

    #[test]
    fn merged_trie_shares_prefixes_across_subscriptions() {
        let merged = build_multi(&["tls", "http"]);
        let single = build("tls or http");
        // Same node count: tcp/ip prefixes are shared across subs just as
        // they are across disjuncts of one filter.
        assert_eq!(merged.len(), single.len());
    }

    #[test]
    fn shadow_clear_is_per_subscription() {
        // Sub 0 ends at ipv4; sub 1 continues through ipv4 to tls. The
        // tls branch must survive for sub 1 even though sub 0's pattern
        // ends at its ancestor.
        let trie = build_multi(&["ipv4", "ipv4 and tls"]);
        let ipv4 = trie.root().children[0];
        assert!(trie.node(ipv4).subs.contains(0));
        assert!(!trie.node(ipv4).children.is_empty());
        assert!(trie.needs_conn_layer_for(1));
        assert!(!trie.needs_conn_layer_for(0));
        // Within one subscription, subsumption still prunes.
        let single = build_multi(&["ipv4 or (ipv4 and tls)", "dns"]);
        let ipv4 = single.root().children[0];
        // ipv4's children may include udp/tcp for dns (sub 1) but no tls
        // branch for sub 0.
        for &c in &single.node(ipv4).children {
            assert!(!single.node(c).subtree_subs.contains(0));
        }
    }

    #[test]
    fn merged_trie_per_sub_layer_needs() {
        let trie = build_multi(&["tcp.port = 80", "tls.sni ~ 'x'"]);
        assert!(!trie.needs_conn_layer_for(0));
        assert!(!trie.needs_session_layer_for(0));
        assert!(trie.needs_conn_layer_for(1));
        assert!(trie.needs_session_layer_for(1));
        assert!(trie.needs_conn_layer());
        assert!(trie.needs_session_layer());
    }

    #[test]
    fn merged_trie_match_everything_sub() {
        let trie = build_multi(&["", "tls"]);
        assert!(trie.matches_everything());
        assert!(trie.root().subs.contains(0));
        // Sub 1's tls branch survives under the match-all root.
        assert!(trie.needs_conn_layer_for(1));
        assert_eq!(trie.source(), "");
        let named = build_multi(&["tls", "http"]);
        assert_eq!(named.source(), "(tls) or (http)");
    }

    #[test]
    fn subtree_subs_reflect_live_sets() {
        let trie = build_multi(&["tls.sni ~ 'a'", "http"]);
        // Every reachable node's subtree set is the union of its
        // children's plus its own ends.
        for id in trie.reachable() {
            let node = trie.node(id);
            let mut acc = node.subs;
            for &c in &node.children {
                acc |= trie.node(c).subtree_subs;
            }
            assert_eq!(acc, node.subtree_subs, "node {id}");
        }
        assert_eq!(trie.root().subtree_subs, SubscriptionSet::first_n(2));
    }

    #[test]
    fn too_many_subscriptions_rejected() {
        let srcs: Vec<&str> = (0..65).map(|_| "tcp").collect();
        assert!(PredicateTrie::from_sources(&srcs, &ProtocolRegistry::default()).is_err());
        assert!(PredicateTrie::from_sources(&[], &ProtocolRegistry::default()).is_err());
    }
}
