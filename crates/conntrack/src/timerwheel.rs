//! Hierarchical timer wheel for connection expiration (Varghese &
//! Lauck scheme 6, §5.2).
//!
//! Design goals, following the paper and Girondi et al.: per-packet
//! work stays O(1) — activity updates only touch the connection's
//! `last_seen` stamp, never the wheel — and mass expiry is amortized
//! bucket drains. The scan-heavy campus mix makes the second property
//! load-bearing: millions of unanswered SYNs share the 5 s establish
//! timeout, so they cluster into a handful of adjacent level-0 slots
//! and drain as whole-bucket appends, never per-entry walks.
//!
//! The wheel has [`LEVELS`] levels of `slots_per_level` slots each;
//! level *k* slots span `slots_per_level^k` base ticks. Far deadlines
//! park in coarse upper levels and *cascade* down as their window
//! approaches — the cascade for level *k* runs only once every
//! `slots_per_level^k` ticks, so total re-placement work per entry is
//! bounded by the number of levels, not by time span. Deadlines beyond
//! even the top level's horizon are clamped to the furthest slot and
//! re-placed on cascade, giving unbounded range.
//!
//! Entries are opaque `u64` tokens — the conn table packs
//! generation-checked arena handles
//! ([`crate::arena::ConnHandle::to_token`]) so a fired token for a
//! removed connection is detected as stale instead of aliasing the
//! slot's next occupant. The wheel itself never dedups or cancels:
//! removal is the owner's tombstone check, and re-arming is the
//! owner's revalidate-and-reschedule on fire (lazy revalidation).
//!
//! Firing is *exact*: `advance` only yields entries whose scheduled
//! deadline tick has been reached, never early — a drained entry whose
//! deadline is still in the future is re-placed instead of fired. The
//! owner may still see entries whose *actual* deadline moved later
//! (activity re-arms by stamping `last_seen`, not by touching the
//! wheel); those it reschedules.

// Narrowing casts in this file are intentional: tick, index, and counter arithmetic narrows to compact fields by design.
#![allow(clippy::cast_possible_truncation)]

/// Number of wheel levels. Four levels of 256 slots at a 100 ms base
/// tick give an exact horizon of 25.6 s, 1.8 h, 19 d, 13 y per level.
pub const LEVELS: usize = 4;

/// A hierarchical timer wheel keyed by opaque `u64` tokens.
#[derive(Debug)]
pub struct TimerWheel {
    tick_ns: u64,
    /// Slots per level; a power of two so slot math is mask/shift.
    slots_per_level: u64,
    /// `log2(slots_per_level)`.
    shift: u32,
    /// `levels[k][slot]` holds `(token, deadline_ns)` pairs.
    levels: Vec<Vec<Vec<(u64, u64)>>>,
    /// The tick index up to which the wheel has been advanced.
    current_tick: u64,
    len: usize,
}

impl TimerWheel {
    /// Creates a wheel of [`LEVELS`] levels with `slots_per_level`
    /// slots of `tick_ns` nanoseconds at the base level.
    ///
    /// # Panics
    /// Panics on a zero tick, a slot count that is not a power of two
    /// greater than 1, or a geometry whose total tick span overflows
    /// `u64` (configuration error).
    pub fn new(tick_ns: u64, slots_per_level: usize) -> Self {
        assert!(
            tick_ns > 0 && slots_per_level > 1 && slots_per_level.is_power_of_two(),
            "invalid timer wheel config"
        );
        let shift = slots_per_level.trailing_zeros();
        assert!(
            shift as usize * LEVELS < 64,
            "invalid timer wheel config: span overflows"
        );
        TimerWheel {
            tick_ns,
            slots_per_level: slots_per_level as u64,
            shift,
            levels: (0..LEVELS)
                .map(|_| (0..slots_per_level).map(|_| Vec::new()).collect())
                .collect(),
            current_tick: 0,
            len: 0,
        }
    }

    /// Number of scheduled (possibly stale) entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns true when no entries are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The exact-scheduling horizon in nanoseconds: deadlines further
    /// out are clamped to the top level and re-placed on cascade (so
    /// they still fire exactly, at bounded extra cost).
    pub fn horizon_ns(&self) -> u64 {
        self.tick_ns * (self.span_ticks(LEVELS) - 1)
    }

    /// Ticks covered by levels `0..level`.
    fn span_ticks(&self, level: usize) -> u64 {
        1 << (self.shift as usize * level)
    }

    /// Schedules `token` to fire at `deadline_ns`. Deadlines in the
    /// past fire on the next [`TimerWheel::advance`].
    pub fn schedule(&mut self, token: u64, deadline_ns: u64) {
        // Never place into the current tick's level-0 slot from outside
        // `advance`: it has already been drained, so the entry would
        // only fire after a full level-0 rotation.
        self.place(token, deadline_ns, self.current_tick + 1);
        self.len += 1;
    }

    /// Places `token` so it fires at `deadline_ns`, clamping the target
    /// tick to at least `floor_tick` and at most the wheel horizon.
    /// Does not touch `len` (cascade re-places without re-counting).
    fn place(&mut self, token: u64, deadline_ns: u64, floor_tick: u64) {
        let mask = self.slots_per_level - 1;
        let tick = (deadline_ns / self.tick_ns)
            .max(floor_tick)
            .min(self.current_tick + self.span_ticks(LEVELS) - 1);
        let delta = tick - self.current_tick;
        let mut level = 0;
        while level + 1 < LEVELS && delta >= self.span_ticks(level + 1) {
            level += 1;
        }
        let slot = ((tick >> (self.shift as usize * level)) & mask) as usize;
        self.levels[level][slot].push((token, deadline_ns));
    }

    /// Advances the wheel to `now_ns`, collecting every entry whose
    /// deadline tick has been reached into `expired` as
    /// `(token, deadline_ns)`. Entries never fire early; they are
    /// candidates the owner must revalidate against the connection's
    /// *actual* deadline (which activity may have moved later).
    pub fn advance(&mut self, now_ns: u64, expired: &mut Vec<(u64, u64)>) {
        let target_tick = now_ns / self.tick_ns;
        let mask = self.slots_per_level - 1;
        let mut scratch: Vec<(u64, u64)> = Vec::new();
        while self.current_tick < target_tick {
            if self.len == 0 {
                // Nothing scheduled anywhere: fast-forward. Bounds the
                // walk over giant idle jumps in virtual time.
                self.current_tick = target_tick;
                break;
            }
            self.current_tick += 1;
            // When level k-1 wraps, cascade the level-k slot whose
            // window just opened down into finer levels.
            for level in 1..LEVELS {
                let span = self.span_ticks(level);
                if !self.current_tick.is_multiple_of(span) {
                    break;
                }
                let slot = ((self.current_tick >> (self.shift as usize * level)) & mask) as usize;
                scratch.append(&mut self.levels[level][slot]);
                for (token, deadline_ns) in scratch.drain(..) {
                    self.place(token, deadline_ns, self.current_tick);
                }
            }
            // Drain the base-level slot for this tick. Entries are due
            // when their deadline tick has been reached; anything
            // placed here early (a clamped far deadline after repeated
            // cascades cannot be, but guard exactly) is re-placed.
            scratch.append(&mut self.levels[0][(self.current_tick & mask) as usize]);
            for (token, deadline_ns) in scratch.drain(..) {
                if deadline_ns / self.tick_ns <= self.current_tick {
                    self.len -= 1;
                    expired.push((token, deadline_ns));
                } else {
                    self.place(token, deadline_ns, self.current_tick + 1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_at_deadline() {
        let mut wheel = TimerWheel::new(1_000, 64); // 1µs ticks
        wheel.schedule(1, 5_000);
        let mut out = Vec::new();
        wheel.advance(4_000, &mut out);
        assert!(out.is_empty());
        wheel.advance(6_000, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], (1, 5_000));
        assert!(wheel.is_empty());
    }

    #[test]
    fn multiple_tokens_same_slot() {
        let mut wheel = TimerWheel::new(1_000, 8);
        wheel.schedule(1, 3_000);
        wheel.schedule(2, 3_500);
        assert_eq!(wheel.len(), 2);
        let mut out = Vec::new();
        wheel.advance(4_000, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn upper_level_entry_fires_exactly_not_early() {
        // 1µs ticks, 8 slots/level: level 0 spans 8µs. A 100µs deadline
        // parks at level 1 and must NOT fire when the base level wraps.
        let mut wheel = TimerWheel::new(1_000, 8);
        wheel.schedule(7, 100_000);
        let mut out = Vec::new();
        wheel.advance(99_000, &mut out);
        assert!(out.is_empty(), "fired {out:?} before the 100µs deadline");
        wheel.advance(100_000, &mut out);
        assert_eq!(out, vec![(7, 100_000)]);
    }

    #[test]
    fn beyond_horizon_clamped_not_lost() {
        // 8 slots/level, 4 levels: horizon 4095µs. Schedule far beyond
        // it; the entry must survive repeated clamping cascades and
        // still fire exactly at its deadline.
        let mut wheel = TimerWheel::new(1_000, 8);
        wheel.schedule(1, 50_000_000); // 50ms, ~12x the horizon
        let mut out = Vec::new();
        wheel.advance(49_999_000, &mut out);
        assert!(out.is_empty(), "clamped entry fired early: {out:?}");
        wheel.advance(50_000_000, &mut out);
        assert_eq!(out, vec![(1, 50_000_000)], "original deadline preserved");
    }

    #[test]
    fn past_deadline_fires_next_advance() {
        let mut wheel = TimerWheel::new(1_000, 8);
        let mut out = Vec::new();
        wheel.advance(10_000, &mut out);
        wheel.schedule(1, 1_000); // already past
        wheel.advance(12_000, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn large_time_jump_with_empty_wheel_is_cheap() {
        let mut wheel = TimerWheel::new(1_000, 8);
        wheel.schedule(1, 2_000);
        let mut out = Vec::new();
        wheel.advance(2_000, &mut out);
        assert_eq!(out.len(), 1);
        // Empty wheel: a jump of a billion ticks must fast-forward, not
        // walk (this would time out otherwise).
        wheel.advance(1_000_000_000_000, &mut out);
        wheel.schedule(2, 1_000_000_002_000);
        wheel.advance(1_000_000_003_000, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn interleaved_schedule_and_advance() {
        let mut wheel = TimerWheel::new(1_000, 16);
        let mut fired = Vec::new();
        for i in 0..100u64 {
            wheel.schedule(i, (i + 2) * 1_000);
            let mut out = Vec::new();
            wheel.advance(i * 1_000, &mut out);
            fired.extend(out);
        }
        let mut out = Vec::new();
        wheel.advance(200_000, &mut out);
        fired.extend(out);
        assert_eq!(fired.len(), 100);
    }

    #[test]
    fn mass_expiry_drains_in_deadline_order() {
        // The scan-storm shape: thousands of tokens sharing a handful
        // of deadlines. One big advance must yield them grouped in
        // non-decreasing deadline order (whole-bucket drains).
        let mut wheel = TimerWheel::new(1_000, 16);
        for i in 0..3000u64 {
            wheel.schedule(i, (1 + i % 3) * 100_000);
        }
        let mut out = Vec::new();
        wheel.advance(1_000_000, &mut out);
        assert_eq!(out.len(), 3000);
        let deadlines: Vec<u64> = out.iter().map(|&(_, d)| d).collect();
        let mut sorted = deadlines.clone();
        sorted.sort_unstable();
        assert_eq!(deadlines, sorted, "mass expiry must drain in tick order");
    }

    #[test]
    fn rearmed_token_fires_once_per_schedule() {
        // The wheel does not dedup: re-arming the same token leaves the
        // old entry as a candidate. The owner's revalidation (deadline
        // comparison / tombstone check) is what makes this safe.
        let mut wheel = TimerWheel::new(1_000, 8);
        wheel.schedule(1, 3_000);
        wheel.schedule(1, 6_000);
        assert_eq!(wheel.len(), 2);
        let mut out = Vec::new();
        wheel.advance(4_000, &mut out);
        assert_eq!(out, vec![(1, 3_000)]);
        wheel.advance(7_000, &mut out);
        assert_eq!(out, vec![(1, 3_000), (1, 6_000)]);
        assert!(wheel.is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid timer wheel")]
    fn zero_tick_panics() {
        let _ = TimerWheel::new(0, 8);
    }

    #[test]
    #[should_panic(expected = "invalid timer wheel")]
    fn non_power_of_two_slots_panic() {
        let _ = TimerWheel::new(1_000, 12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use retina_support::proptest::prelude::*;

    /// Naive oracle: a flat list scanned per advance.
    #[derive(Default)]
    struct Oracle {
        entries: Vec<(u64, u64)>,
    }

    impl Oracle {
        fn schedule(&mut self, token: u64, deadline_ns: u64) {
            self.entries.push((token, deadline_ns));
        }

        /// Entries due by `now_ns` at `tick_ns` granularity (an entry
        /// fires when its deadline tick has been reached).
        fn advance(&mut self, now_ns: u64, tick_ns: u64) -> Vec<(u64, u64)> {
            let target_tick = now_ns / tick_ns;
            let mut fired = Vec::new();
            self.entries.retain(|&(token, deadline)| {
                if deadline / tick_ns <= target_tick {
                    fired.push((token, deadline));
                    false
                } else {
                    true
                }
            });
            fired
        }
    }

    fn sorted(mut v: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
        v.sort_unstable();
        v
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Mass expiry matches the naive oracle at every advance: the
        /// exact set of due entries fires — nothing early, nothing
        /// lost, nothing twice. Deltas up to 5000 ticks against 4
        /// slots/level (horizon 255 ticks) force level-0 wraparound,
        /// multi-level cascades, AND beyond-horizon clamping.
        #[test]
        fn mass_expiry_matches_naive_oracle(
            ops in collection::vec((0u8..2, 1u64..5000, 0u64..400), 1..250)
        ) {
            const TICK: u64 = 1_000;
            let mut wheel = TimerWheel::new(TICK, 4);
            let mut oracle = Oracle::default();
            let mut now = 0u64;
            let mut token = 0u64;
            for (op, delta_ticks, dt_ticks) in ops {
                if op == 0 {
                    let deadline = now + delta_ticks * TICK;
                    wheel.schedule(token, deadline);
                    oracle.schedule(token, deadline);
                    token += 1;
                } else {
                    now += dt_ticks * TICK;
                    let mut fired = Vec::new();
                    wheel.advance(now, &mut fired);
                    let expect = oracle.advance(now, TICK);
                    prop_assert_eq!(sorted(fired), sorted(expect), "divergence at now={}", now);
                    prop_assert_eq!(wheel.len(), oracle.entries.len());
                }
            }
            // Flush: everything outstanding fires exactly once.
            now += 6000 * TICK;
            let mut fired = Vec::new();
            wheel.advance(now, &mut fired);
            let expect = oracle.advance(now, TICK);
            prop_assert_eq!(sorted(fired), sorted(expect));
            prop_assert!(wheel.is_empty());
        }

        /// Wheel-period wraparound: deadlines placed several full wheel
        /// periods out (forcing the same physical slots to be reused
        /// across rotations) fire exactly at their deadline tick.
        #[test]
        fn wraparound_across_periods_is_exact(
            rotations in 1u64..6,
            offset_ticks in 0u64..64,
            start_ticks in 0u64..64,
        ) {
            const TICK: u64 = 1_000;
            const SLOTS: u64 = 8; // level-0 period = 8 ticks
            let mut wheel = TimerWheel::new(TICK, SLOTS as usize);
            let mut out = Vec::new();
            wheel.advance(start_ticks * TICK, &mut out);
            prop_assert!(out.is_empty());
            // Same slot modulo the level-0 period, `rotations` periods out.
            let deadline = (start_ticks + rotations * SLOTS + offset_ticks) * TICK;
            wheel.schedule(42, deadline);
            // One tick before the deadline tick: silent.
            if deadline / TICK > start_ticks + 1 {
                wheel.advance(deadline - TICK, &mut out);
                prop_assert!(out.is_empty(), "fired early at {}: {:?}", deadline - TICK, out);
            }
            wheel.advance(deadline, &mut out);
            prop_assert_eq!(out, vec![(42, deadline)]);
        }

        /// Re-arm (touch): a token rescheduled to a later deadline
        /// yields the stale candidate at the old deadline and the live
        /// one at the new — never a lost or early new deadline. This is
        /// the wheel half of lazy revalidation; the table half
        /// (deadline comparison) is tested in `table::proptests`.
        #[test]
        fn rearm_preserves_new_deadline(
            first_ticks in 1u64..300,
            extra_ticks in 1u64..300,
        ) {
            const TICK: u64 = 1_000;
            let mut wheel = TimerWheel::new(TICK, 8);
            let first = first_ticks * TICK;
            let second = first + extra_ticks * TICK;
            wheel.schedule(9, first);
            wheel.schedule(9, second); // re-arm before the first fires
            let mut out = Vec::new();
            wheel.advance(first, &mut out);
            prop_assert_eq!(out.clone(), vec![(9, first)], "old candidate fires at old deadline");
            out.clear();
            wheel.advance(second - TICK, &mut out);
            // Only the (already fired) old deadline could be due here.
            prop_assert!(out.is_empty(), "re-armed entry fired early: {:?}", out);
            wheel.advance(second, &mut out);
            prop_assert_eq!(out, vec![(9, second)]);
            prop_assert!(wheel.is_empty());
        }
    }
}
