//! # retina-wire
//!
//! Zero-copy packet parsing and building for the Retina traffic analysis
//! framework.
//!
//! This crate provides *views* over raw byte buffers in the style of
//! smoltcp's `wire` module: a view type like [`Ipv4Packet`] borrows a byte
//! slice, validates the minimum invariants needed to access its fields
//! (`new_checked`), and then exposes accessor methods that read directly out
//! of the underlying buffer without copying. Mutable views (over `&mut [u8]`)
//! additionally expose setters used by the traffic generator and tests.
//!
//! Supported protocols:
//!
//! - Ethernet II frames ([`EthernetFrame`]) with 802.1Q VLAN tags
//!   ([`VlanTag`])
//! - IPv4 ([`Ipv4Packet`]), including options
//! - IPv6 ([`Ipv6Packet`]), including hop-by-hop / routing / fragment /
//!   destination-options extension headers
//! - TCP ([`TcpSegment`]), including option parsing (MSS, window scale,
//!   SACK, timestamps)
//! - UDP ([`UdpDatagram`])
//! - ICMPv4 / ICMPv6 ([`icmp::Icmpv4Message`], [`icmp::Icmpv6Message`])
//!
//! The [`packet`] module layers these into a one-pass parse
//! ([`packet::ParsedPacket`]) that records header offsets and the
//! connection 5-tuple; this is the representation the NIC's RSS hash, the
//! software packet filter, and the connection tracker all consume.
//!
//! All parsing is panic-free on arbitrary input: malformed or truncated
//! packets return [`WireError`].

#![warn(missing_docs)]

pub mod build;
pub mod checksum;
pub mod ethernet;
pub mod icmp;
pub mod ip;
pub mod ipv4;
pub mod ipv6;
pub mod layered;
pub mod packet;
pub mod tcp;
pub mod udp;

mod error;

pub use error::{WireError, WireResult};
pub use ethernet::{EtherType, EthernetFrame, MacAddr, VlanTag};
pub use ip::{IpAddr, IpProtocol};
pub use ipv4::Ipv4Packet;
pub use ipv6::Ipv6Packet;
pub use packet::{L4Header, ParsedPacket};
pub use tcp::{TcpFlags, TcpSegment};
pub use udp::UdpDatagram;
