//! # retina-conntrack
//!
//! Stateful connection processing for Retina (§5.2 of the paper):
//!
//! - [`FiveTuple`] / [`ConnKey`] — direction-aware connection identity
//!   with a canonical (direction-independent) table key.
//! - [`ConnTable`] — a per-core connection table built for million-flow
//!   scan churn: a sharded index keyed by the NIC's symmetric RSS hash
//!   (no SipHash re-hash per lookup) over a slot-reusing [`ConnArena`]
//!   of entries addressed by compact generation-checked [`ConnHandle`]s.
//!   Each core owns one table and tracks only the connections symmetric
//!   RSS delivers to it, so there is no cross-core synchronization.
//! - [`TimerWheel`] — hierarchical (multi-level cascading) expiration
//!   without per-packet timer updates. Retina's defaults (5 s
//!   establishment timeout, 5 min inactivity timeout) reflect the
//!   observation that ~65% of connections on a real network are a single
//!   unanswered SYN; mass scan expiry drains whole wheel buckets.
//!   Figure 8 shows the memory effect of these choices.
//! - [`StreamReassembler`] — the lightweight "pass-through" reassembly of
//!   §5.2: in-sequence packets (94% of flows) flow straight through,
//!   while out-of-order packets are held *by reference* in a bounded ring
//!   (500 packets by default) and flushed when the hole fills.
//! - [`TcpFlow`] — per-direction TCP bookkeeping (handshake state,
//!   byte/packet/out-of-order counters, FIN/RST teardown detection).

#![warn(missing_docs)]

pub mod arena;
pub mod conn;
pub mod reassembly;
pub mod table;
pub mod timerwheel;
pub mod tuple;

pub use arena::{ConnArena, ConnEntry, ConnHandle};
pub use conn::TcpFlow;
pub use reassembly::{Reassembled, StreamReassembler};
pub use table::{ConnTable, TimeoutConfig};
pub use timerwheel::TimerWheel;
pub use tuple::{ConnKey, Dir, FiveTuple};
