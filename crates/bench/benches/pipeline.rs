//! Criterion end-to-end pipeline benchmarks: offline single-core
//! throughput per subscription type, plus the retina-vs-eager-baseline
//! per-packet cost on the Figure 6 workload.

use std::sync::Arc;

use retina_support::bench::{Criterion, Throughput};
use retina_support::{criterion_group, criterion_main};
use std::hint::black_box;

use retina_baselines::{Monitor, SnortLike, SuricataLike, ZeekLike};
use retina_core::offline::run_offline;
use retina_core::subscribables::{ConnRecord, TlsHandshakeData, ZcFrame};
use retina_core::{compile, RuntimeConfig};
use retina_trafficgen::campus::{generate, CampusConfig};
use retina_trafficgen::HttpsWorkload;

fn bench_subscriptions(c: &mut Criterion) {
    let packets = generate(&CampusConfig {
        target_packets: 20_000,
        duration_secs: 10.0,
        ..CampusConfig::small(0xB13)
    });
    let bytes: u64 = packets.iter().map(|(f, _)| f.len() as u64).sum();
    let config = RuntimeConfig::default();

    let mut group = c.benchmark_group("offline_pipeline_campus20k");
    group.throughput(Throughput::Bytes(bytes));
    group.sample_size(10);

    group.bench_function("packets_all", |b| {
        let filter = Arc::new(compile("").unwrap());
        b.iter(|| {
            let mut n = 0u64;
            run_offline::<ZcFrame, _>(&filter, &config, packets.clone(), |_| n += 1);
            black_box(n)
        });
    });
    group.bench_function("conn_records_tcp", |b| {
        let filter = Arc::new(compile("tcp").unwrap());
        b.iter(|| {
            let mut n = 0u64;
            run_offline::<ConnRecord, _>(&filter, &config, packets.clone(), |_| n += 1);
            black_box(n)
        });
    });
    group.bench_function("tls_handshakes", |b| {
        let filter = Arc::new(compile("tls").unwrap());
        b.iter(|| {
            let mut n = 0u64;
            run_offline::<TlsHandshakeData, _>(&filter, &config, packets.clone(), |_| n += 1);
            black_box(n)
        });
    });
    group.bench_function("tls_handshakes_narrow_filter", |b| {
        // A narrow session filter costs the same as the broad one up to
        // the handshake (the SNI must be parsed either way) but delivers
        // orders of magnitude fewer callbacks and drops non-matching
        // connection state immediately — the win measured end-to-end by
        // the `ablations` binary.
        let filter = Arc::new(compile(r"tls.sni ~ '(.+?\.)?nflxvideo\.net'").unwrap());
        b.iter(|| {
            let mut n = 0u64;
            run_offline::<TlsHandshakeData, _>(&filter, &config, packets.clone(), |_| n += 1);
            black_box(n)
        });
    });
    group.finish();
}

fn bench_vs_baselines(c: &mut Criterion) {
    let packets = HttpsWorkload {
        requests_per_sec: 25,
        response_bytes: 64 * 1024,
        duration_secs: 0.5,
        ..Default::default()
    }
    .generate();
    let bytes: u64 = packets.iter().map(|(f, _)| f.len() as u64).sum();

    let mut group = c.benchmark_group("fig6_https_workload");
    group.throughput(Throughput::Bytes(bytes));
    group.sample_size(10);

    group.bench_function("retina", |b| {
        let filter = Arc::new(compile("tls.sni ~ 'nginx'").unwrap());
        let config = RuntimeConfig::default();
        b.iter(|| {
            let mut n = 0u64;
            run_offline::<TlsHandshakeData, _>(&filter, &config, packets.clone(), |_| n += 1);
            black_box(n)
        });
    });
    group.bench_function("suricata_model", |b| {
        b.iter(|| {
            let mut m = SuricataLike::new("nginx");
            for (frame, ts) in &packets {
                m.process(frame, *ts);
            }
            black_box(m.report().matches)
        });
    });
    group.bench_function("zeek_model", |b| {
        b.iter(|| {
            let mut m = ZeekLike::new("nginx");
            for (frame, ts) in &packets {
                m.process(frame, *ts);
            }
            black_box(m.report().matches)
        });
    });
    group.bench_function("snort_model", |b| {
        b.iter(|| {
            let mut m = SnortLike::new("nginx");
            for (frame, ts) in &packets {
                m.process(frame, *ts);
            }
            black_box(m.report().matches)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_subscriptions, bench_vs_baselines);
criterion_main!(benches);
