//! Differential tests: the statically generated filters (the
//! `retina-filtergen` proc-macro, §4's code generation) must agree with
//! the interpreted engine on every packet, connection, and session — the
//! two execution strategies share one semantics (Appendix B's premise).

use retina_core::FilterFns;
use retina_filter::{CompiledFilter, FilterResult, ProtocolRegistry, SessionData};
use retina_filtergen::filter;
use retina_trafficgen::campus::{generate, CampusConfig};
use retina_wire::ParsedPacket;

// Statically generated filters (expanded at compile time into native
// conditionals).
filter!(FIpv4, "ipv4");
filter!(FPort443, "tcp.port = 443");
filter!(
    FPortRange,
    "ipv4 and tcp.port >= 100 and tls.sni ~ 'netflix'"
);
filter!(
    FFigure3,
    "(ipv4 and tcp.port >= 100 and tls.sni ~ 'netflix') or http"
);
filter!(FCipher, r"tls.cipher ~ 'AES_128_GCM'");
filter!(FDns, "dns");
filter!(FCidr, "ipv4.addr in 171.64.0.0/14 and udp");
filter!(FTtl, "ipv4.ttl > 64");
filter!(FMatchAll, "");
filter!(
    FNetflixLong,
    "ipv4.addr in 23.246.0.0/18 or ipv4.addr in 37.77.184.0/21 or \
     ipv6.addr in 2620:10c:7000::/44 or tls.sni ~ 'netflix.com' or \
     tls.sni ~ 'nflxvideo.net' or tls.sni ~ 'nflximg.net'"
);

/// Attribute form also works.
#[retina_filtergen::filter_attr("tls.sni matches '\\.com$'")]
struct FComAttr;

fn interp(src: &str) -> CompiledFilter {
    CompiledFilter::build(src, &ProtocolRegistry::default()).unwrap()
}

fn differential_packets(static_f: &dyn FilterFns, interp_f: &CompiledFilter) {
    let packets = generate(&CampusConfig::small(0xD1FF));
    let mut matched = 0usize;
    for (frame, _) in packets.iter().take(30_000) {
        let Ok(pkt) = ParsedPacket::parse(frame) else {
            continue;
        };
        let a = static_f.packet_filter(&pkt);
        let b = interp_f.packet_filter(&pkt);
        assert_eq!(a, b, "packet filter divergence on {pkt:?}");
        if a.is_match() {
            matched += 1;
            // Conn filter agreement across all plausible services.
            if let FilterResult::MatchNonTerminal(node) = a {
                for service in [Some("tls"), Some("http"), Some("dns"), Some("ssh"), None] {
                    assert_eq!(
                        static_f.conn_filter(service, node),
                        interp_f.conn_filter(service, node),
                        "conn filter divergence at node {node} service {service:?}"
                    );
                }
            }
        }
    }
    // The campus mix must exercise the filter at least somewhere for the
    // differential to be meaningful (true for all filters under test
    // except possibly narrow CIDRs — allow zero there).
    let _ = matched;
}

#[test]
fn static_vs_interpreted_packet_and_conn() {
    let cases: Vec<(&dyn FilterFns, &str)> = vec![
        (&FIpv4, "ipv4"),
        (&FPort443, "tcp.port = 443"),
        (
            &FPortRange,
            "ipv4 and tcp.port >= 100 and tls.sni ~ 'netflix'",
        ),
        (
            &FFigure3,
            "(ipv4 and tcp.port >= 100 and tls.sni ~ 'netflix') or http",
        ),
        (&FCipher, r"tls.cipher ~ 'AES_128_GCM'"),
        (&FDns, "dns"),
        (&FCidr, "ipv4.addr in 171.64.0.0/14 and udp"),
        (&FTtl, "ipv4.ttl > 64"),
        (&FMatchAll, ""),
        (
            &FNetflixLong,
            "ipv4.addr in 23.246.0.0/18 or ipv4.addr in 37.77.184.0/21 or \
             ipv6.addr in 2620:10c:7000::/44 or tls.sni ~ 'netflix.com' or \
             tls.sni ~ 'nflxvideo.net' or tls.sni ~ 'nflximg.net'",
        ),
    ];
    for (static_f, src) in cases {
        let interp_f = interp(src);
        assert_eq!(static_f.source(), src);
        assert_eq!(
            static_f.conn_protocols(),
            interp_f.conn_protocols(),
            "{src}"
        );
        assert_eq!(
            static_f.needs_conn_layer(),
            interp_f.needs_conn_layer(),
            "{src}"
        );
        assert_eq!(
            static_f.needs_session_layer(),
            interp_f.needs_session_layer(),
            "{src}"
        );
        differential_packets(static_f, &interp_f);
    }
}

struct FakeTls {
    sni: &'static str,
    cipher: &'static str,
}

impl SessionData for FakeTls {
    fn protocol(&self) -> &str {
        "tls"
    }
    fn field(&self, name: &str) -> Option<retina_filter::FieldValue<'_>> {
        match name {
            "sni" => Some(retina_filter::FieldValue::Str(self.sni)),
            "cipher" => Some(retina_filter::FieldValue::Str(self.cipher)),
            "version" => Some(retina_filter::FieldValue::Int(771)),
            _ => None,
        }
    }
}

#[test]
fn static_vs_interpreted_session_filter() {
    // Reach a frontier node with a TCP packet, then compare session
    // verdicts for both engines across sessions.
    let interp_f = interp("(ipv4 and tcp.port >= 100 and tls.sni ~ 'netflix') or http");
    let frame = retina_wire::build::build_tcp(&retina_wire::build::TcpSpec {
        src: "10.0.0.1:50000".parse().unwrap(),
        dst: "1.1.1.1:443".parse().unwrap(),
        seq: 1,
        ack: 0,
        flags: retina_wire::TcpFlags::SYN,
        window: 64,
        ttl: 64,
        payload: b"",
    });
    let pkt = ParsedPacket::parse(&frame).unwrap();
    let node_s = FFigure3.packet_filter(&pkt).node().unwrap();
    let node_i = interp_f.packet_filter(&pkt).node().unwrap();
    assert_eq!(node_s, node_i, "trie node ids must align across engines");

    for sni in ["www.netflix.com", "example.org", "netflix.co.uk", ""] {
        let session = FakeTls {
            sni,
            cipher: "TLS_AES_128_GCM_SHA256",
        };
        assert_eq!(
            FFigure3.session_filter(&session, node_s),
            interp_f.session_filter(&session, node_i),
            "sni {sni:?}"
        );
    }
}

#[test]
fn attribute_macro_form() {
    let interp_f = interp("tls.sni matches '\\.com$'");
    assert_eq!(FComAttr.source(), "tls.sni matches '\\.com$'");
    assert_eq!(FComAttr.conn_protocols(), vec!["tls".to_string()]);
    let session_com = FakeTls {
        sni: "www.example.com",
        cipher: "",
    };
    let session_org = FakeTls {
        sni: "www.example.org",
        cipher: "",
    };
    // Find the frontier node via a packet.
    let frame = retina_wire::build::build_tcp(&retina_wire::build::TcpSpec {
        src: "10.0.0.1:50000".parse().unwrap(),
        dst: "1.1.1.1:443".parse().unwrap(),
        seq: 1,
        ack: 0,
        flags: retina_wire::TcpFlags::SYN,
        window: 64,
        ttl: 64,
        payload: b"",
    });
    let pkt = ParsedPacket::parse(&frame).unwrap();
    let node = FComAttr.packet_filter(&pkt).node().unwrap();
    assert!(FComAttr.session_filter(&session_com, node));
    assert!(!FComAttr.session_filter(&session_org, node));
    let _ = interp_f;
}

#[test]
fn static_filter_runs_in_runtime() {
    // A macro-generated filter drives the full multi-core runtime.
    use retina_core::subscribables::TlsHandshakeData;
    use retina_core::{Runtime, RuntimeConfig};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    let wl = retina_trafficgen::HttpsWorkload {
        requests_per_sec: 50,
        response_bytes: 8192,
        duration_secs: 0.5,
        ..Default::default()
    };
    let count = Arc::new(AtomicUsize::new(0));
    let count2 = Arc::clone(&count);
    filter!(FNginx, "tls.sni ~ 'nginx'");
    let mut rt =
        Runtime::<TlsHandshakeData, _>::new(RuntimeConfig::with_cores(2), FNginx, move |_hs| {
            count2.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
    let report = rt.run(wl.source());
    assert_eq!(count.load(Ordering::Relaxed), 25);
    assert!(report.zero_loss());
}

#[test]
fn offline_mode_agrees_between_engines() {
    // Same subscription, same traffic, one run per engine: identical
    // callback counts.
    use retina_core::offline::run_offline;
    use retina_core::subscribables::SessionRecord;
    use std::sync::Arc;

    let packets = generate(&CampusConfig::small(0xABCD));
    let src = "tls.sni ~ '\\.com$' or http";
    filter!(FComOrHttp, "tls.sni ~ '\\.com$' or http");

    let mut interp_count = 0usize;
    let interp_f = Arc::new(interp(src));
    run_offline::<SessionRecord, _>(
        &interp_f,
        &retina_core::RuntimeConfig::default(),
        packets.clone(),
        |_| interp_count += 1,
    );

    let mut static_count = 0usize;
    let static_f = Arc::new(FComOrHttp);
    run_offline::<SessionRecord, _>(
        &static_f,
        &retina_core::RuntimeConfig::default(),
        packets,
        |_| static_count += 1,
    );
    assert_eq!(interp_count, static_count);
    assert!(interp_count > 0);
}

// Union form: each source compiled to static code, composed into one
// multi-subscription filter.
retina_filtergen::filter_union!(tls_http_dns, "tls", "http", "dns");

#[test]
fn filter_union_agrees_with_interpreted_union() {
    let static_u = tls_http_dns();
    let interp_u =
        CompiledFilter::build_union(&["tls", "http", "dns"], &ProtocolRegistry::default()).unwrap();
    assert_eq!(static_u.num_subscriptions(), 3);
    assert_eq!(interp_u.num_subscriptions(), 3);

    let packets = generate(&CampusConfig::small(0x7E57));
    let mut matched = 0usize;
    for (frame, _) in packets.iter().take(30_000) {
        let Ok(pkt) = ParsedPacket::parse(frame) else {
            continue;
        };
        let a = static_u.packet_filter_set(&pkt);
        let b = interp_u.packet_filter_set(&pkt);
        assert_eq!(a.matched, b.matched, "matched sets diverge on {pkt:?}");
        assert_eq!(a.live, b.live, "live sets diverge on {pkt:?}");
        if !a.is_no_match() {
            matched += 1;
            // Conn-layer verdicts must agree per service for the same
            // packet-layer frontiers.
            for service in [Some("tls"), Some("http"), Some("dns"), None] {
                let ca = static_u.conn_filter_set(service, &a.frontiers, a.live);
                let cb = interp_u.conn_filter_set(service, &b.frontiers, b.live);
                assert_eq!(ca.matched, cb.matched, "conn matched diverge ({service:?})");
                assert_eq!(ca.live, cb.live, "conn live diverge ({service:?})");
            }
        }
    }
    assert!(matched > 0, "workload should exercise the union");
}

#[test]
fn filter_union_drives_multi_runtime() {
    // The macro-generated union powers a MultiRuntime with one typed
    // subscription per source.
    use retina_core::subscribables::{ConnRecord, TlsHandshakeData};
    use retina_core::{MultiRuntime, RuntimeConfig, TypedSubscription};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    let wl = retina_trafficgen::HttpsWorkload {
        requests_per_sec: 50,
        response_bytes: 4096,
        duration_secs: 0.5,
        ..Default::default()
    };
    let tls_seen = Arc::new(AtomicUsize::new(0));
    let conn_seen = Arc::new(AtomicUsize::new(0));
    let t2 = Arc::clone(&tls_seen);
    let c2 = Arc::clone(&conn_seen);
    retina_filtergen::filter_union!(tls_and_all, "tls", "");
    let subs: Vec<Arc<dyn retina_core::ErasedSubscription>> = vec![
        Arc::new(TypedSubscription::<TlsHandshakeData>::new(
            "tls",
            move |_| {
                t2.fetch_add(1, Ordering::Relaxed);
            },
        )),
        Arc::new(TypedSubscription::<ConnRecord>::new(
            "all_conns",
            move |_| {
                c2.fetch_add(1, Ordering::Relaxed);
            },
        )),
    ];
    let mut rt = MultiRuntime::new(RuntimeConfig::with_cores(2), tls_and_all(), subs).unwrap();
    let report = rt.run(wl.source());
    assert_eq!(tls_seen.load(Ordering::Relaxed), 25);
    assert!(conn_seen.load(Ordering::Relaxed) >= 25);
    assert!(report.zero_loss());
    assert_eq!(report.subs.len(), 2);
    assert_eq!(report.subs[0].delivered, 25);
}

// --- live-swap differential: both sides of a reconfiguration ---------
//
// A live swap compiles its new subscription set through
// `CompiledFilter::build_union` at runtime, while ahead-of-time users
// compile the same set with `filter_union!`. The two engines must agree
// on *every* layer a swap touches: the packet verdict sets, the
// connection verdicts, the session verdicts, and the hardware rule
// union whose diff the swap pushes to the NIC. Frontier node ids are
// deliberately NOT compared — they are an engine-internal encoding.
retina_filtergen::filter_union!(
    swap_old_union,
    "ipv4 and tcp",
    "ipv4 and tcp.port = 443",
    "tls.sni ~ 'netflix'"
);
retina_filtergen::filter_union!(swap_new_union, "ipv4 and tcp", "udp", "tls.sni ~ 'netflix'");

#[test]
fn swap_unions_agree_on_all_four_layers() {
    use retina_nic::DeviceCaps;
    use retina_support::rand::{RngExt, SeedableRng, SmallRng};
    use retina_wire::build::{build_tcp, build_udp, TcpSpec, UdpSpec};

    const OLD: [&str; 3] = [
        "ipv4 and tcp",
        "ipv4 and tcp.port = 443",
        "tls.sni ~ 'netflix'",
    ];
    const NEW: [&str; 3] = ["ipv4 and tcp", "udp", "tls.sni ~ 'netflix'"];
    let registry = ProtocolRegistry::default();
    let cases: [(&dyn FilterFns, CompiledFilter); 2] = [
        (
            &swap_old_union(),
            CompiledFilter::build_union(&OLD, &registry).unwrap(),
        ),
        (
            &swap_new_union(),
            CompiledFilter::build_union(&NEW, &registry).unwrap(),
        ),
    ];

    // Seeded frames biased to the decision boundaries: ports hugging
    // 443, TCP vs UDP, v4 vs v6 — the exact edges a swap's rule diff
    // pivots on — plus a campus slice for breadth.
    let mut rng = SmallRng::seed_from_u64(0x5F4B);
    let mut frames: Vec<Vec<u8>> = Vec::new();
    for _ in 0..400 {
        let sport: u16 = rng.random_range(40_000u16..60_000);
        let dport: u16 = [80u16, 442, 443, 444, 8443, 53][rng.random_range(0usize..6)];
        let src: std::net::SocketAddr = format!("10.1.{}.{}:{sport}", rng.random_range(0u32..4), 1)
            .parse()
            .unwrap();
        let dst: std::net::SocketAddr = format!("192.0.2.7:{dport}").parse().unwrap();
        if rng.random_range(0u32..3) == 0 {
            frames.push(build_udp(&UdpSpec {
                src,
                dst,
                ttl: 64,
                payload: b"q",
            }));
        } else {
            frames.push(build_tcp(&TcpSpec {
                src,
                dst,
                seq: 1,
                ack: 0,
                flags: retina_wire::TcpFlags::SYN,
                window: 4096,
                ttl: 64,
                payload: b"",
            }));
        }
    }
    let campus = generate(&CampusConfig::small(0x5F4C));
    frames.extend(campus.iter().take(4_000).map(|(f, _)| f.to_vec()));

    let sessions = [
        FakeTls {
            sni: "api.netflix.com",
            cipher: "TLS_AES_128_GCM_SHA256",
        },
        FakeTls {
            sni: "example.org",
            cipher: "TLS_AES_128_GCM_SHA256",
        },
    ];

    for (static_u, interp_u) in &cases {
        assert_eq!(static_u.num_subscriptions(), interp_u.num_subscriptions());
        let mut decided = 0usize;
        for frame in &frames {
            let Ok(pkt) = ParsedPacket::parse(frame) else {
                continue;
            };
            // Layer 1: packet verdict sets.
            let a = static_u.packet_filter_set(&pkt);
            let b = interp_u.packet_filter_set(&pkt);
            assert_eq!(a.matched, b.matched, "packet matched diverge on {pkt:?}");
            assert_eq!(a.live, b.live, "packet live diverge on {pkt:?}");
            if !a.matched.is_empty() || !a.live.is_empty() {
                decided += 1;
            }
            if a.live.is_empty() {
                continue;
            }
            // Layer 2: connection verdicts, each engine fed its own
            // frontiers (ids are private; the verdict sets are not).
            for service in [Some("tls"), Some("http"), None] {
                let ca = static_u.conn_filter_set(service, &a.frontiers, a.live);
                let cb = interp_u.conn_filter_set(service, &b.frontiers, b.live);
                assert_eq!(ca.matched, cb.matched, "conn matched diverge ({service:?})");
                assert_eq!(ca.live, cb.live, "conn live diverge ({service:?})");
                // Layer 3: session verdicts for subscriptions still live
                // after the connection layer.
                if !ca.live.is_empty() {
                    for s in &sessions {
                        assert_eq!(
                            static_u.session_filter_set(s, &a.frontiers, ca.live),
                            interp_u.session_filter_set(s, &b.frontiers, cb.live),
                            "session verdict diverge (sni {:?})",
                            s.sni
                        );
                    }
                }
            }
        }
        assert!(decided > 0, "boundary frames never exercised the union");

        // Layer 4: hardware rule unions (multiset equality — installation
        // order is not part of the contract).
        for caps in [
            DeviceCaps::connectx5(),
            DeviceCaps::basic(),
            DeviceCaps::full(),
        ] {
            let mut hw_a: Vec<String> = static_u
                .hw_rules(caps, &registry)
                .unwrap()
                .iter()
                .map(|r| format!("{r:?}"))
                .collect();
            let mut hw_b: Vec<String> = interp_u
                .hw_rules(caps, &registry)
                .unwrap()
                .iter()
                .map(|r| format!("{r:?}"))
                .collect();
            hw_a.sort();
            hw_b.sort();
            assert_eq!(hw_a, hw_b, "hardware rule unions diverge under {caps:?}");
        }
    }

    // The swap's own rule diff (adds = new \ old, removes = old \ new)
    // is therefore engine-independent too: compute it from both engines
    // and compare.
    let caps = DeviceCaps::connectx5();
    let diff = |old: &dyn FilterFns, new: &dyn FilterFns| -> (Vec<String>, Vec<String>) {
        let old_rules = old.hw_rules(caps, &registry).unwrap();
        let new_rules = new.hw_rules(caps, &registry).unwrap();
        let mut adds: Vec<String> = new_rules
            .iter()
            .filter(|r| !old_rules.contains(r))
            .map(|r| format!("{r:?}"))
            .collect();
        let mut removes: Vec<String> = old_rules
            .iter()
            .filter(|r| !new_rules.contains(r))
            .map(|r| format!("{r:?}"))
            .collect();
        adds.sort();
        removes.sort();
        (adds, removes)
    };
    let static_diff = diff(cases[0].0, cases[1].0);
    let interp_diff = diff(&cases[0].1, &cases[1].1);
    assert_eq!(static_diff, interp_diff, "swap rule diffs diverge");
    assert!(
        !static_diff.0.is_empty() || !static_diff.1.is_empty(),
        "removing the 443 filter and adding udp must change the rule union"
    );
}
