//! IPv6 packet view (RFC 8200), including extension-header traversal.

// Narrowing casts in this file are intentional: wire formats pack values into fixed-width header fields.
#![allow(clippy::cast_possible_truncation)]

use std::net::Ipv6Addr;

use crate::error::check_len;
use crate::ip::IpProtocol;
use crate::{WireError, WireResult};

/// Fixed IPv6 header length.
pub const HEADER_LEN: usize = 40;

/// Maximum number of chained extension headers walked before the packet is
/// declared malformed. Bounds parsing work on adversarial input.
const MAX_EXT_HEADERS: usize = 8;

/// Zero-copy view of an IPv6 packet.
#[derive(Debug, Clone)]
pub struct Ipv6Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv6Packet<T> {
    /// Wraps a buffer, validating the version nibble and fixed header size.
    pub fn new_checked(buffer: T) -> WireResult<Self> {
        let buf = buffer.as_ref();
        check_len(buf, HEADER_LEN)?;
        if buf[0] >> 4 != 6 {
            return Err(WireError::Malformed("ipv6 version"));
        }
        Ok(Self { buffer })
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Traffic class.
    pub fn traffic_class(&self) -> u8 {
        let b = self.buffer.as_ref();
        (b[0] << 4) | (b[1] >> 4)
    }

    /// Flow label (20 bits).
    pub fn flow_label(&self) -> u32 {
        let b = self.buffer.as_ref();
        (u32::from(b[1] & 0x0f) << 16) | (u32::from(b[2]) << 8) | u32::from(b[3])
    }

    /// Payload length field (everything after the fixed header).
    pub fn payload_len(&self) -> usize {
        let b = self.buffer.as_ref();
        usize::from(u16::from_be_bytes([b[4], b[5]]))
    }

    /// Next Header field of the fixed header.
    pub fn next_header(&self) -> IpProtocol {
        IpProtocol::from(self.buffer.as_ref()[6])
    }

    /// Hop limit.
    pub fn hop_limit(&self) -> u8 {
        self.buffer.as_ref()[7]
    }

    /// Source address.
    pub fn src(&self) -> Ipv6Addr {
        let b: [u8; 16] = self.buffer.as_ref()[8..24].try_into().unwrap();
        Ipv6Addr::from(b)
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv6Addr {
        let b: [u8; 16] = self.buffer.as_ref()[24..40].try_into().unwrap();
        Ipv6Addr::from(b)
    }

    /// Walks extension headers, returning the upper-layer protocol and the
    /// offset of its header from the start of the IPv6 packet.
    ///
    /// Fragment headers with a non-zero offset yield
    /// [`WireError::Unsupported`] since the L4 header is not present.
    pub fn upper_layer(&self) -> WireResult<(IpProtocol, usize)> {
        let buf = self.buffer.as_ref();
        let mut next = self.next_header();
        let mut offset = HEADER_LEN;
        for _ in 0..MAX_EXT_HEADERS {
            match next {
                IpProtocol::HopByHop | IpProtocol::Ipv6Route | IpProtocol::Ipv6Opts => {
                    check_len(buf, offset + 2)?;
                    let ext_len = 8 + usize::from(buf[offset + 1]) * 8;
                    check_len(buf, offset + ext_len)?;
                    next = IpProtocol::from(buf[offset]);
                    offset += ext_len;
                }
                IpProtocol::Ipv6Frag => {
                    check_len(buf, offset + 8)?;
                    let frag_offset = u16::from_be_bytes([buf[offset + 2], buf[offset + 3]]) >> 3;
                    next = IpProtocol::from(buf[offset]);
                    if frag_offset != 0 {
                        return Err(WireError::Unsupported("non-first ipv6 fragment"));
                    }
                    offset += 8;
                }
                IpProtocol::Ipv6NoNxt => {
                    return Ok((IpProtocol::Ipv6NoNxt, offset));
                }
                other => return Ok((other, offset)),
            }
        }
        Err(WireError::Malformed("ipv6 extension header chain too long"))
    }

    /// Bytes of the upper-layer header and payload (after all extension
    /// headers), bounded by the payload length field.
    pub fn upper_layer_payload(&self) -> WireResult<&[u8]> {
        let (_, offset) = self.upper_layer()?;
        let buf = self.buffer.as_ref();
        let end = (HEADER_LEN + self.payload_len()).min(buf.len());
        Ok(&buf[offset..end.max(offset)])
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv6Packet<T> {
    /// Initializes the version nibble.
    pub fn set_version(&mut self) {
        let b = self.buffer.as_mut();
        b[0] = (b[0] & 0x0f) | 0x60;
    }

    /// Sets the payload length field.
    pub fn set_payload_len(&mut self, len: u16) {
        self.buffer.as_mut()[4..6].copy_from_slice(&len.to_be_bytes());
    }

    /// Sets the Next Header field.
    pub fn set_next_header(&mut self, proto: IpProtocol) {
        self.buffer.as_mut()[6] = proto.into();
    }

    /// Sets the hop limit.
    pub fn set_hop_limit(&mut self, limit: u8) {
        self.buffer.as_mut()[7] = limit;
    }

    /// Sets the source address.
    pub fn set_src(&mut self, addr: Ipv6Addr) {
        self.buffer.as_mut()[8..24].copy_from_slice(&addr.octets());
    }

    /// Sets the destination address.
    pub fn set_dst(&mut self, addr: Ipv6Addr) {
        self.buffer.as_mut()[24..40].copy_from_slice(&addr.octets());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packet(next: IpProtocol, payload: usize) -> Vec<u8> {
        let mut buf = vec![0u8; HEADER_LEN + payload];
        buf[0] = 0x60;
        let mut pkt = Ipv6Packet::new_checked(&mut buf[..]).unwrap();
        pkt.set_payload_len(payload as u16);
        pkt.set_next_header(next);
        pkt.set_hop_limit(64);
        pkt.set_src("2001:db8::1".parse().unwrap());
        pkt.set_dst("2001:db8::2".parse().unwrap());
        buf
    }

    #[test]
    fn parse_plain() {
        let buf = sample_packet(IpProtocol::Tcp, 20);
        let pkt = Ipv6Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.next_header(), IpProtocol::Tcp);
        assert_eq!(pkt.hop_limit(), 64);
        assert_eq!(pkt.src(), "2001:db8::1".parse::<Ipv6Addr>().unwrap());
        assert_eq!(pkt.dst(), "2001:db8::2".parse::<Ipv6Addr>().unwrap());
        let (proto, off) = pkt.upper_layer().unwrap();
        assert_eq!(proto, IpProtocol::Tcp);
        assert_eq!(off, HEADER_LEN);
        assert_eq!(pkt.upper_layer_payload().unwrap().len(), 20);
    }

    #[test]
    fn traffic_class_and_flow_label() {
        let mut buf = sample_packet(IpProtocol::Udp, 8);
        buf[0] = 0x6a; // tc high nibble = 0xa_
        buf[1] = 0xbc; // tc low = 0xb, flow label high nibble 0xc
        buf[2] = 0xde;
        buf[3] = 0xf0;
        let pkt = Ipv6Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.traffic_class(), 0xab);
        assert_eq!(pkt.flow_label(), 0xcdef0);
    }

    #[test]
    fn hop_by_hop_extension() {
        // 8-byte hop-by-hop header followed by TCP.
        let mut buf = sample_packet(IpProtocol::HopByHop, 8 + 20);
        buf[HEADER_LEN] = 6; // next = TCP
        buf[HEADER_LEN + 1] = 0; // ext length 0 -> 8 bytes
        let pkt = Ipv6Packet::new_checked(&buf[..]).unwrap();
        let (proto, off) = pkt.upper_layer().unwrap();
        assert_eq!(proto, IpProtocol::Tcp);
        assert_eq!(off, HEADER_LEN + 8);
    }

    #[test]
    fn chained_extensions() {
        // HopByHop (8B) -> DestOpts (16B) -> UDP.
        let mut buf = sample_packet(IpProtocol::HopByHop, 8 + 16 + 8);
        buf[HEADER_LEN] = 60; // dest opts
        buf[HEADER_LEN + 1] = 0;
        buf[HEADER_LEN + 8] = 17; // UDP
        buf[HEADER_LEN + 9] = 1; // len 1 -> 16 bytes
        let pkt = Ipv6Packet::new_checked(&buf[..]).unwrap();
        let (proto, off) = pkt.upper_layer().unwrap();
        assert_eq!(proto, IpProtocol::Udp);
        assert_eq!(off, HEADER_LEN + 24);
    }

    #[test]
    fn first_fragment_parses() {
        let mut buf = sample_packet(IpProtocol::Ipv6Frag, 8 + 20);
        buf[HEADER_LEN] = 6;
        let pkt = Ipv6Packet::new_checked(&buf[..]).unwrap();
        let (proto, off) = pkt.upper_layer().unwrap();
        assert_eq!(proto, IpProtocol::Tcp);
        assert_eq!(off, HEADER_LEN + 8);
    }

    #[test]
    fn later_fragment_unsupported() {
        let mut buf = sample_packet(IpProtocol::Ipv6Frag, 8 + 20);
        buf[HEADER_LEN] = 6;
        buf[HEADER_LEN + 2] = 0x01; // offset != 0
        buf[HEADER_LEN + 3] = 0x40;
        let pkt = Ipv6Packet::new_checked(&buf[..]).unwrap();
        assert!(matches!(pkt.upper_layer(), Err(WireError::Unsupported(_))));
    }

    #[test]
    fn no_next_header() {
        let buf = sample_packet(IpProtocol::Ipv6NoNxt, 0);
        let pkt = Ipv6Packet::new_checked(&buf[..]).unwrap();
        let (proto, _) = pkt.upper_layer().unwrap();
        assert_eq!(proto, IpProtocol::Ipv6NoNxt);
    }

    #[test]
    fn reject_wrong_version() {
        let mut buf = sample_packet(IpProtocol::Tcp, 0);
        buf[0] = 0x40;
        assert!(Ipv6Packet::new_checked(&buf[..]).is_err());
    }

    #[test]
    fn reject_endless_extension_chain() {
        // Each hop-by-hop header points at another hop-by-hop header.
        let mut buf = sample_packet(IpProtocol::HopByHop, 8 * 16);
        for i in 0..16 {
            buf[HEADER_LEN + i * 8] = 0; // next = hop-by-hop again
        }
        let pkt = Ipv6Packet::new_checked(&buf[..]).unwrap();
        assert!(pkt.upper_layer().is_err());
    }

    #[test]
    fn truncated_extension() {
        let buf = sample_packet(IpProtocol::HopByHop, 4);
        let pkt = Ipv6Packet::new_checked(&buf[..]).unwrap();
        assert!(pkt.upper_layer().is_err());
    }
}
