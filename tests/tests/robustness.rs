//! Panic-freedom under adversarial input — the §2 security requirement:
//! "real-world network traffic can be unpredictable and malicious …
//! our system needs to safely perform internal framework operations".
//!
//! Every parser in the stack (wire, protocol modules, and the full
//! pipeline) must return errors, never panic, on arbitrary bytes —
//! including structure-aware mutations of valid frames, which reach much
//! deeper into the parsers than pure noise.

use retina_protocols::{ConnParser, Direction};
use retina_support::proptest::prelude::*;
use retina_wire::ParsedPacket;

fn parsers() -> Vec<Box<dyn ConnParser>> {
    let registry = retina_protocols::ParserRegistry::default();
    registry.new_parsers(&[
        "tls".to_string(),
        "http".to_string(),
        "dns".to_string(),
        "ssh".to_string(),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes never panic the one-pass packet parser.
    #[test]
    fn wire_parse_total(data in collection::vec(any::<u8>(), 0..256)) {
        let _ = ParsedPacket::parse(&data);
    }

    /// Arbitrary bytes never panic any protocol parser (probe or parse),
    /// in either direction, including when fed incrementally.
    #[test]
    fn protocol_parsers_total(
        data in collection::vec(any::<u8>(), 0..512),
        chunk in 1usize..64,
    ) {
        for mut parser in parsers() {
            let _ = parser.probe(&data, Direction::ToServer);
            let _ = parser.probe(&data, Direction::ToClient);
            for piece in data.chunks(chunk) {
                let _ = parser.parse(piece, Direction::ToServer);
            }
            let _ = parser.drain_sessions();
        }
    }

    /// Structure-aware mutation: corrupt one byte of a valid TLS
    /// ClientHello record and feed it everywhere.
    #[test]
    fn mutated_client_hello_total(pos in 0usize..200, val in any::<u8>()) {
        let mut record = retina_protocols::tls::build::client_hello_record(
            &retina_protocols::tls::build::ClientHelloSpec {
                sni: Some("mutation.example".into()),
                ciphers: vec![0x1301, 0xc02f],
                random: [3; 32],
                version: 0x0303,
                alpn: Some("h2".into()),
            },
        );
        if pos < record.len() {
            record[pos] = val;
        }
        for mut parser in parsers() {
            let _ = parser.probe(&record, Direction::ToServer);
            let _ = parser.parse(&record, Direction::ToServer);
            let _ = parser.drain_sessions();
        }
    }

    /// Structure-aware mutation of a full valid frame through the whole
    /// offline pipeline: parse + filters + tracker must never panic.
    #[test]
    fn mutated_frame_through_pipeline(
        pos in 0usize..400,
        val in any::<u8>(),
        seed in any::<u8>(),
    ) {
        use retina_core::offline::run_offline;
        use retina_core::subscribables::SessionRecord;
        use std::sync::Arc;

        let base = retina_wire::build::build_tcp(&retina_wire::build::TcpSpec {
            src: "171.64.1.2:40000".parse().unwrap(),
            dst: "93.184.216.34:443".parse().unwrap(),
            seq: 1000,
            ack: 2000,
            flags: retina_wire::TcpFlags::ACK | retina_wire::TcpFlags::PSH,
            window: 64,
            ttl: 64,
            payload: &retina_protocols::tls::build::client_hello_record(
                &retina_protocols::tls::build::ClientHelloSpec {
                    sni: Some("pipeline.example".into()),
                    ciphers: vec![0x1301],
                    random: [seed; 32],
                    version: 0x0303,
                    alpn: None,
                },
            ),
        });
        let mut frame = base;
        if pos < frame.len() {
            frame[pos] = val;
        }
        let filter = Arc::new(retina_core::compile("tls or http or dns or ssh").unwrap());
        run_offline::<SessionRecord, _>(
            &filter,
            &retina_core::RuntimeConfig::default(),
            vec![(retina_support::bytes::Bytes::from(frame), 0)],
            |_| {},
        );
    }

    /// Truncation at every length: a valid frame cut anywhere must flow
    /// through the pipeline without panicking.
    #[test]
    fn truncated_frames_total(cut in 0usize..120) {
        let frame = retina_wire::build::build_udp(&retina_wire::build::UdpSpec {
            src: "10.0.0.1:5353".parse().unwrap(),
            dst: "8.8.8.8:53".parse().unwrap(),
            ttl: 64,
            payload: &retina_protocols::dns::build_query(7, "cut.example.com", 1),
        });
        let cut = cut.min(frame.len());
        let _ = ParsedPacket::parse(&frame[..cut]);
    }
}

/// Deterministic adversarial corpus: crafted inputs that target known
/// parser edge cases.
#[test]
fn adversarial_corpus() {
    let corpus: Vec<Vec<u8>> = vec![
        vec![],
        vec![0x16],                         // lone TLS type byte
        vec![0x16, 0x03, 0x03, 0xff, 0xff], // record claiming 64KB
        b"GET ".to_vec(),                   // truncated request line
        b"GET / HTTP/9.9\r\n\r\n".to_vec(), // bad version
        b"SSH-".to_vec(),                   // truncated banner
        vec![0u8; 12],                      // DNS header, zero counts
        {
            // DNS with qdcount=1 but a label pointing past the packet.
            let mut d = vec![0u8; 12];
            d[5] = 1;
            d.extend_from_slice(&[0xc0, 0xff]);
            d
        },
        vec![0xff; 512], // all ones
        {
            // TLS handshake message length larger than the record.
            let mut r = vec![0x16, 0x03, 0x03, 0x00, 0x04];
            r.extend_from_slice(&[0x01, 0xff, 0xff, 0xff]);
            r
        },
    ];
    for input in &corpus {
        for mut parser in parsers() {
            let _ = parser.probe(input, Direction::ToServer);
            let _ = parser.parse(input, Direction::ToServer);
            let _ = parser.parse(input, Direction::ToClient);
            let _ = parser.drain_sessions();
        }
        let _ = ParsedPacket::parse(input);
    }
}
