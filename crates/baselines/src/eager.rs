//! The eager connection-processing substrate shared by the baseline
//! monitors: full conntrack for every connection and copy-based stream
//! reassembly (the traditional design §5.2 contrasts with Retina's
//! pass-through reassembler).

// Narrowing casts in this file are intentional: synthetic traffic narrows seeded PRNG draws into ports, lengths, and header bytes.
#![allow(clippy::cast_possible_truncation)]

use std::collections::HashMap;

use retina_conntrack::ConnKey;
use retina_protocols::tls::TlsHandshake;
use retina_protocols::{ConnParser, Direction, ParseResult, Session};
use retina_wire::{IpProtocol, ParsedPacket};

/// Per-direction copy-based stream buffer.
#[derive(Debug, Default)]
pub struct StreamBuf {
    /// Reassembled bytes (bounded).
    pub data: Vec<u8>,
    next_seq: Option<u32>,
    /// Segments held for reordering: (seq, payload).
    pending: Vec<(u32, Vec<u8>)>,
}

/// Cap on buffered bytes per direction (typical IDS stream depth).
const STREAM_DEPTH: usize = 256 * 1024;

impl StreamBuf {
    /// Copies a segment into the buffer, reordering as needed. This is
    /// the expensive per-packet copy Retina avoids.
    pub fn add(&mut self, seq: u32, payload: &[u8]) {
        if payload.is_empty() {
            return;
        }
        let next = *self.next_seq.get_or_insert(seq);
        if seq == next {
            let room = STREAM_DEPTH.saturating_sub(self.data.len());
            self.data
                .extend_from_slice(&payload[..payload.len().min(room)]);
            self.next_seq = Some(next.wrapping_add(payload.len() as u32));
            // Drain pending successors.
            loop {
                let next = self.next_seq.unwrap();
                let Some(pos) = self.pending.iter().position(|(s, _)| *s == next) else {
                    break;
                };
                let (_, p) = self.pending.swap_remove(pos);
                let room = STREAM_DEPTH.saturating_sub(self.data.len());
                self.data.extend_from_slice(&p[..p.len().min(room)]);
                self.next_seq = Some(next.wrapping_add(p.len() as u32));
            }
        } else if (seq.wrapping_sub(next) as i32) > 0 && self.pending.len() < 512 {
            self.pending.push((seq, payload.to_vec()));
        }
    }
}

/// An eagerly-tracked connection: stream buffers both ways plus a TLS
/// parser that consumes them.
pub struct EagerConn {
    /// Client-to-server stream.
    pub ctos: StreamBuf,
    /// Server-to-client stream.
    pub stoc: StreamBuf,
    parser: retina_protocols::tls::TlsParser,
    parsed_ctos: usize,
    parsed_stoc: usize,
    /// Completed handshake, if the connection turned out to be TLS.
    pub handshake: Option<TlsHandshake>,
    parser_dead: bool,
    /// Packets seen.
    pub packets: u64,
    /// Payload bytes seen.
    pub bytes: u64,
}

impl Default for EagerConn {
    fn default() -> Self {
        EagerConn {
            ctos: StreamBuf::default(),
            stoc: StreamBuf::default(),
            parser: retina_protocols::tls::TlsParser::new(),
            parsed_ctos: 0,
            parsed_stoc: 0,
            handshake: None,
            parser_dead: false,
            packets: 0,
            bytes: 0,
        }
    }
}

impl EagerConn {
    /// Feeds newly reassembled bytes to the TLS parser.
    pub fn parse_streams(&mut self) {
        if self.parser_dead || self.handshake.is_some() {
            return;
        }
        for (buf, cursor, dir) in [
            (&self.ctos, &mut self.parsed_ctos, Direction::ToServer),
            (&self.stoc, &mut self.parsed_stoc, Direction::ToClient),
        ] {
            if buf.data.len() > *cursor {
                let fresh = &buf.data[*cursor..];
                *cursor = buf.data.len();
                match self.parser.parse(fresh, dir) {
                    ParseResult::Done => {
                        for s in self.parser.drain_sessions() {
                            if let Session::Tls(hs) = s {
                                self.handshake = Some(hs);
                            }
                        }
                        return;
                    }
                    ParseResult::Error => {
                        self.parser_dead = true;
                        return;
                    }
                    ParseResult::Continue => {}
                }
            }
        }
    }
}

/// The shared eager connection table: *every* connection is tracked and
/// reassembled, regardless of any rule or filter.
#[derive(Default)]
pub struct EagerTable {
    conns: HashMap<ConnKey, EagerConn>,
}

impl EagerTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tracked connections.
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// Returns true when empty.
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }

    /// Processes one parsed packet: conntrack insert/lookup plus stream
    /// copy plus parse. Returns a reference to the connection.
    pub fn process(&mut self, pkt: &ParsedPacket, frame: &[u8]) -> &mut EagerConn {
        let key = ConnKey::from_packet(pkt);
        let conn = self.conns.entry(key).or_default();
        conn.packets += 1;
        conn.bytes += pkt.payload_len() as u64;
        if pkt.protocol == IpProtocol::Tcp && pkt.payload_len() > 0 {
            // Copy into the stream buffer (client = lower port heuristic
            // is wrong in general; use originator = first-seen direction
            // via sequence spaces — here we orient by port like classic
            // IDS "server port" tables).
            let to_server = pkt.dst_port == 443 || pkt.dst_port < pkt.src_port;
            let seq = pkt.tcp_seq().unwrap_or(0);
            let payload = pkt.payload(frame);
            if to_server {
                conn.ctos.add(seq, payload);
            } else {
                conn.stoc.add(seq, payload);
            }
            conn.parse_streams();
        }
        conn
    }

    /// Removes terminated connections (called on FIN/RST packets).
    pub fn remove(&mut self, pkt: &ParsedPacket) {
        self.conns.remove(&ConnKey::from_packet(pkt));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_buf_reorders_with_copies() {
        let mut sb = StreamBuf::default();
        sb.add(100, b"hello ");
        sb.add(111, b"!!");
        sb.add(106, b"world");
        assert_eq!(sb.data, b"hello world!!");
    }

    #[test]
    fn stream_depth_bounded() {
        let mut sb = StreamBuf::default();
        let chunk = vec![0u8; 16 * 1024];
        for i in 0..10u32 {
            sb.add(i * 16 * 1024, &chunk);
        }
        assert!(sb.data.len() <= STREAM_DEPTH);
    }

    #[test]
    fn eager_table_tracks_everything() {
        use retina_wire::build::{build_udp, UdpSpec};
        let mut table = EagerTable::new();
        for i in 0..10u16 {
            let frame = build_udp(&UdpSpec {
                src: format!("10.0.0.{}:1000", i + 1).parse().unwrap(),
                dst: "8.8.8.8:53".parse().unwrap(),
                ttl: 64,
                payload: b"x",
            });
            let pkt = ParsedPacket::parse(&frame).unwrap();
            table.process(&pkt, &frame);
        }
        // No filter: all ten "connections" tracked.
        assert_eq!(table.len(), 10);
    }
}
