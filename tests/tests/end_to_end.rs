//! Cross-crate end-to-end tests: the full runtime over synthetic campus
//! traffic, pcap round-trips, sink sampling, timeout schemes, and
//! baseline-vs-retina agreement on analysis results.
//!
//! # Determinism
//!
//! All traffic comes from `CampusConfig::small(<seed>)` /
//! `HttpsWorkload` with the fixed per-test seeds written at each call
//! site (0xE2E, 0x5EED, ...). The generators sample exclusively from
//! `retina_support::rand::SmallRng` seeded with those values, so every
//! run replays byte-identical packet streams;
//! `generation_is_deterministic_for_fixed_seed` below pins that
//! property. Multi-core runs may interleave differently, but tests only
//! assert order-insensitive results (sorted outputs, counts, zero-loss).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use retina_core::offline::run_offline;
use retina_core::subscribables::{ConnRecord, SessionRecord, TlsHandshakeData};
use retina_core::{Runtime, RuntimeConfig};
use retina_filter::compile;
use retina_trafficgen::campus::{generate, CampusConfig};
use retina_trafficgen::{HttpsWorkload, PreloadedSource};

#[test]
fn generation_is_deterministic_for_fixed_seed() {
    // The seed fully determines the generated traffic: frame bytes and
    // timestamps are identical across invocations, which is what makes
    // every test in this file reproducible.
    let a = generate(&CampusConfig::small(0xE2E));
    let b = generate(&CampusConfig::small(0xE2E));
    assert_eq!(a.len(), b.len());
    for ((fa, ta), (fb, tb)) in a.iter().zip(&b) {
        assert_eq!(ta, tb);
        assert_eq!(fa.as_ref(), fb.as_ref());
    }
    // And a different seed actually changes the stream.
    let c = generate(&CampusConfig::small(0x5EED));
    assert!(
        a.len() != c.len()
            || a.iter()
                .zip(&c)
                .any(|((fa, _), (fc, _))| fa.as_ref() != fc.as_ref()),
        "distinct seeds should produce distinct traffic"
    );
}

#[test]
fn campus_mix_through_multicore_runtime() {
    let packets = generate(&CampusConfig::small(0xE2E));
    let total_packets = packets.len() as u64;
    let tls_count = Arc::new(AtomicU64::new(0));
    let c2 = Arc::clone(&tls_count);
    let filter = compile("tls").unwrap();
    let mut rt =
        Runtime::<TlsHandshakeData, _>::new(RuntimeConfig::with_cores(4), filter, move |_| {
            c2.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
    let report = rt.run(PreloadedSource::new(packets));
    assert!(report.zero_loss(), "{:?}", report.nic);
    // Hardware filter admits only TCP for a `tls` filter.
    assert!(report.nic.hw_dropped > 0, "UDP/ICMP should be hw-dropped");
    assert!(report.nic.rx_delivered < total_packets);
    let handshakes = tls_count.load(Ordering::Relaxed);
    assert!(
        handshakes > 50,
        "expected many TLS handshakes, got {handshakes}"
    );
    assert_eq!(report.cores.callbacks.runs, handshakes);
}

#[test]
fn multicore_equals_singlecore_results() {
    // RSS distribution must not change analysis results: same handshake
    // set on 1 and 8 cores.
    let packets = generate(&CampusConfig::small(0x5EED));
    let collect = |cores: u16| {
        let out = Arc::new(Mutex::new(Vec::new()));
        let o2 = Arc::clone(&out);
        let filter = compile(r"tls.sni ~ '\.com$'").unwrap();
        let mut rt = Runtime::<TlsHandshakeData, _>::new(
            RuntimeConfig::with_cores(cores),
            filter,
            move |hs| o2.lock().unwrap().push(hs.tls.sni().to_string()),
        )
        .unwrap();
        let report = rt.run(PreloadedSource::new(packets.clone()));
        assert!(report.zero_loss());
        let mut v = out.lock().unwrap().clone();
        v.sort();
        v
    };
    let single = collect(1);
    let multi = collect(8);
    assert!(!single.is_empty());
    assert_eq!(single, multi);
}

#[test]
fn sink_sampling_reduces_delivered_traffic() {
    let packets = generate(&CampusConfig::small(0x51));
    let filter = compile("").unwrap();
    let mut rt =
        Runtime::<ConnRecord, _>::new(RuntimeConfig::with_cores(2), filter, |_| {}).unwrap();
    rt.nic().set_sink_fraction(0.5);
    let report = rt.run(PreloadedSource::new(packets));
    assert!(report.nic.sunk > 0);
    let frac = report.nic.sunk as f64 / report.nic.rx_offered as f64;
    assert!((0.2..0.8).contains(&frac), "sunk fraction {frac}");
    // Sunk traffic is intentional, not loss.
    assert!(report.zero_loss());
}

#[test]
fn timeout_schemes_order_connection_counts() {
    // Figure 8's premise at miniature scale: with the default two-level
    // timeouts, fewer connections stay resident than with
    // inactivity-only, which in turn is fewer than with no timeouts.
    use retina_conntrack::TimeoutConfig;
    let packets = generate(&CampusConfig {
        target_packets: 60_000,
        duration_secs: 30.0,
        ..CampusConfig::small(0xF18)
    });
    let resident = |timeouts: TimeoutConfig| {
        let filter = Arc::new(compile("").unwrap());
        let config = RuntimeConfig {
            timeouts,
            ..RuntimeConfig::default()
        };
        // Measure expiries: more expiries with aggressive timeouts means
        // fewer resident connections at any instant.
        let stats = run_offline::<ConnRecord, _>(&filter, &config, packets.clone(), |_| {});
        stats.conns_expired
    };
    let default_expired = resident(TimeoutConfig::retina_default());
    let inact_expired = resident(TimeoutConfig::inactivity_only());
    let none_expired = resident(TimeoutConfig::none());
    assert!(
        default_expired > inact_expired,
        "{default_expired} vs {inact_expired}"
    );
    assert_eq!(none_expired, 0);
}

#[test]
fn pcap_roundtrip_preserves_analysis() {
    // Write the workload to a pcap, read it back, and get identical
    // results — validating offline mode end to end.
    let wl = HttpsWorkload {
        requests_per_sec: 30,
        response_bytes: 4096,
        duration_secs: 0.5,
        ..Default::default()
    };
    let packets = wl.generate();

    let mut buf = Vec::new();
    {
        let mut w = retina_pcap::PcapWriter::new(&mut buf).unwrap();
        for (frame, ts) in &packets {
            w.write_packet(frame, *ts).unwrap();
        }
        w.flush().unwrap();
    }
    let restored = retina_pcap::PcapReader::new(&buf[..])
        .unwrap()
        .read_all()
        .unwrap();
    assert_eq!(restored.len(), packets.len());

    let filter = Arc::new(compile("tls").unwrap());
    let mut direct = 0;
    run_offline::<TlsHandshakeData, _>(&filter, &RuntimeConfig::default(), packets, |_| {
        direct += 1;
    });
    let mut via_pcap = 0;
    run_offline::<TlsHandshakeData, _>(&filter, &RuntimeConfig::default(), restored, |_| {
        via_pcap += 1;
    });
    assert_eq!(direct, via_pcap);
    assert_eq!(direct, 15);
}

#[test]
fn retina_and_baselines_agree_on_matches() {
    // §6.2's task: both Retina and the baseline monitors must log the
    // same TLS connections; the difference is how much work it takes.
    use retina_baselines::{Monitor, SnortLike, SuricataLike, ZeekLike};
    let wl = HttpsWorkload {
        requests_per_sec: 40,
        response_bytes: 8192,
        duration_secs: 0.5,
        ..Default::default()
    };
    let packets = wl.generate();

    let filter = Arc::new(compile("tls.sni ~ 'nginx'").unwrap());
    let mut retina_matches = 0u64;
    run_offline::<TlsHandshakeData, _>(&filter, &RuntimeConfig::default(), packets.clone(), |_| {
        retina_matches += 1;
    });

    let mut zeek = ZeekLike::new("nginx");
    let mut snort = SnortLike::new("nginx");
    let mut suricata = SuricataLike::new("nginx");
    for (frame, ts) in &packets {
        zeek.process(frame, *ts);
        snort.process(frame, *ts);
        suricata.process(frame, *ts);
    }
    assert_eq!(retina_matches, 20);
    assert_eq!(zeek.report().matches, retina_matches);
    assert_eq!(snort.report().matches, retina_matches);
    assert_eq!(suricata.report().matches, retina_matches);
}

#[test]
fn stage_reduction_cascade() {
    // Figure 7's qualitative property: each pipeline stage runs on a
    // (weakly) decreasing fraction of traffic, and the callback runs on a
    // tiny fraction for a narrow filter.
    let packets = generate(&CampusConfig {
        target_packets: 80_000,
        ..CampusConfig::small(0xF167)
    });
    let filter =
        Arc::new(compile(r"tcp.port = 443 and tls.sni ~ '(.+?\.)?nflxvideo\.net'").unwrap());
    let config = RuntimeConfig {
        profile_stages: true,
        ..RuntimeConfig::default()
    };
    let mut callbacks = 0u64;
    let stats = run_offline::<ConnRecord, _>(&filter, &config, packets, |_| callbacks += 1);

    let total = stats.packet_filter.runs as f64;
    let tracked = stats.conn_tracking.runs as f64;
    let reassembled = stats.reassembly.runs as f64;
    let parsed = stats.app_parsing.runs as f64;
    assert!(tracked < total, "packet filter must discard non-TCP-443");
    assert!(reassembled <= tracked);
    // Parsing stops early for discarded conns, so parsing units stay well
    // below reassembly units.
    assert!(parsed <= reassembled * 1.05);
    assert!(callbacks > 0, "some Netflix conns must exist in the mix");
    assert!(
        (callbacks as f64) < total / 50.0,
        "callback on a tiny fraction: {callbacks} of {total}"
    );
}

#[test]
fn session_records_match_generated_composition() {
    // The session mix the pipeline reports should reflect the generator's
    // composition: TLS >> SSH.
    let packets = generate(&CampusConfig::small(0xC0DE));
    let filter = Arc::new(compile("tls or http or dns or ssh").unwrap());
    let mut tls = 0;
    let mut http = 0;
    let mut dns = 0;
    let mut ssh = 0;
    run_offline::<SessionRecord, _>(&filter, &RuntimeConfig::default(), packets, |s| {
        match retina_filter::SessionData::protocol(&s.session) {
            "tls" => tls += 1,
            "http" => http += 1,
            "dns" => dns += 1,
            "ssh" => ssh += 1,
            _ => {}
        }
    });
    assert!(tls > ssh, "tls={tls} ssh={ssh}");
    assert!(dns > 0 && http > 0);
}

#[test]
fn dispatched_union_is_byte_identical_to_inline_across_schedules() {
    // The dispatch tentpole's acceptance criterion: for every
    // subscription in a 4-subscription union, shared-pool and
    // dedicated-worker dispatch produce byte-identical per-subscription
    // results to inline delivery, across at least three seeded worker
    // schedules. "Byte-identical" is the full Debug rendering of every
    // delivered record compared as sorted multisets; the stepped
    // executor's seeded interleaving may permute order, nothing else.
    use retina_core::subscribables::{DnsTransactionData, HttpTransactionData};
    use retina_core::{DispatchMode, RuntimeBuilder, StepConfig};

    let packets = generate(&CampusConfig::small(0xD15B));

    // One stepped run of the union under `mode` and schedule `seed`:
    // per-sub sorted record multisets plus the run's digest.
    let run = |mode: DispatchMode, seed: u64| -> (Vec<Vec<String>>, String) {
        let outs: [Arc<Mutex<Vec<String>>>; 4] = std::array::from_fn(|_| Arc::default());
        let (o0, o1, o2, o3) = (
            Arc::clone(&outs[0]),
            Arc::clone(&outs[1]),
            Arc::clone(&outs[2]),
            Arc::clone(&outs[3]),
        );
        let rt = RuntimeBuilder::new(RuntimeConfig::default())
            .subscribe_dispatched::<TlsHandshakeData>("tls", "tls", mode, move |hs| {
                o0.lock().unwrap().push(format!("{hs:?}"));
            })
            .subscribe_dispatched::<HttpTransactionData>("http", "http", mode, move |tx| {
                o1.lock().unwrap().push(format!("{tx:?}"));
            })
            .subscribe_dispatched::<DnsTransactionData>("dns", "dns", mode, move |d| {
                o2.lock().unwrap().push(format!("{d:?}"));
            })
            .subscribe_dispatched::<ConnRecord>("conns", "ipv4 and tcp", mode, move |c| {
                o3.lock().unwrap().push(format!("{c:?}"));
            })
            .build()
            .unwrap();
        let report = rt.run_stepped(&packets, &StepConfig::seeded(seed));
        report.check_accounting().expect("accounting exact");
        let multisets = outs
            .iter()
            .map(|o| {
                let mut v = o.lock().unwrap().clone();
                v.sort();
                v
            })
            .collect();
        (multisets, report.deterministic_digest())
    };

    let (inline_sets, inline_digest) = run(DispatchMode::Inline, 0);
    for (i, name) in ["tls", "http", "dns", "conns"].iter().enumerate() {
        assert!(!inline_sets[i].is_empty(), "{name} delivered nothing");
    }
    for seed in [0x5EED1u64, 0x5EED2, 0x5EED3] {
        for mode in [DispatchMode::shared(8), DispatchMode::dedicated(8)] {
            let (sets, digest) = run(mode, seed);
            assert_eq!(digest, inline_digest, "digest diverged: {mode:?}/{seed:#x}");
            for (i, name) in ["tls", "http", "dns", "conns"].iter().enumerate() {
                assert_eq!(
                    sets[i], inline_sets[i],
                    "{name} records diverged from inline under {mode:?}, seed {seed:#x}"
                );
            }
        }
    }
}

#[test]
fn merged_runtime_equals_independent_runtimes() {
    // The tentpole invariant of the multi-subscription runtime: one
    // merged 4-subscription pass delivers byte-identical per-subscription
    // results to four independent single-subscription runtimes over the
    // same traffic. "Byte-identical" is literal: the full Debug rendering
    // of every delivered record, compared as sorted multisets (multi-core
    // interleaving may permute delivery order, nothing else).
    use retina_core::subscribables::{DnsTransactionData, HttpTransactionData};
    use retina_core::RuntimeBuilder;

    let packets = generate(&CampusConfig::small(0x4111));

    fn run_alone<S: retina_core::Subscribable + std::fmt::Debug + 'static>(
        src: &str,
        packets: Vec<(retina_support::bytes::Bytes, u64)>,
    ) -> Vec<String> {
        let out = Arc::new(Mutex::new(Vec::new()));
        let o2 = Arc::clone(&out);
        let filter = compile(src).unwrap();
        let mut rt = Runtime::<S, _>::new(RuntimeConfig::with_cores(2), filter, move |rec| {
            o2.lock().unwrap().push(format!("{rec:?}"));
        })
        .unwrap();
        assert!(rt.run(PreloadedSource::new(packets)).zero_loss());
        let mut v = out.lock().unwrap().clone();
        v.sort();
        v
    }

    let alone = [
        run_alone::<TlsHandshakeData>("tls", packets.clone()),
        run_alone::<HttpTransactionData>("http", packets.clone()),
        run_alone::<DnsTransactionData>("dns", packets.clone()),
        run_alone::<ConnRecord>("ipv4 and tcp", packets.clone()),
    ];

    let merged: [Arc<Mutex<Vec<String>>>; 4] = std::array::from_fn(|_| Arc::default());
    let (m0, m1, m2, m3) = (
        Arc::clone(&merged[0]),
        Arc::clone(&merged[1]),
        Arc::clone(&merged[2]),
        Arc::clone(&merged[3]),
    );
    let mut rt = RuntimeBuilder::new(RuntimeConfig::with_cores(2))
        .subscribe_named::<TlsHandshakeData>("tls", "tls", move |hs| {
            m0.lock().unwrap().push(format!("{hs:?}"));
        })
        .subscribe_named::<HttpTransactionData>("http", "http", move |tx| {
            m1.lock().unwrap().push(format!("{tx:?}"));
        })
        .subscribe_named::<DnsTransactionData>("dns", "dns", move |dns| {
            m2.lock().unwrap().push(format!("{dns:?}"));
        })
        .subscribe_named::<ConnRecord>("conns", "ipv4 and tcp", move |c| {
            m3.lock().unwrap().push(format!("{c:?}"));
        })
        .build()
        .unwrap();
    let report = rt.run(PreloadedSource::new(packets));
    assert!(report.zero_loss());

    for (i, name) in ["tls", "http", "dns", "conns"].iter().enumerate() {
        let mut got = merged[i].lock().unwrap().clone();
        got.sort();
        assert!(!got.is_empty(), "subscription {name} delivered nothing");
        assert_eq!(
            got, alone[i],
            "subscription {name} diverged from its solo run"
        );
        assert_eq!(
            report.subs[i].delivered,
            got.len() as u64,
            "telemetry for {name} disagrees with callback count"
        );
    }
}
