//! TLS handshake parsing (TLS 1.0–1.3).
//!
//! The parser consumes in-order byte-stream segments, reassembles TLS
//! records across segment boundaries, and extracts the handshake fields
//! Retina exposes for filtering and analysis: SNI, ALPN, offered and
//! selected ciphersuites, protocol versions, and the client/server
//! randoms (§7.1 measures client-random collisions at scale).
//!
//! Parsing stops at the end of the handshake — by design, Retina has no
//! reason to process encrypted application data (§5.2).

pub mod build;
mod ciphers;

pub use ciphers::cipher_name;

use retina_filter::FieldValue;

use crate::parser::{ConnParser, Direction, ParseResult, ProbeResult, Session};

/// Maximum bytes buffered per direction while waiting for complete
/// records; adversarial streams beyond this are abandoned.
const MAX_BUFFER: usize = 64 * 1024;

/// TLS record content types.
const CONTENT_HANDSHAKE: u8 = 22;
const CONTENT_CCS: u8 = 20;
const CONTENT_ALERT: u8 = 21;
const CONTENT_APPDATA: u8 = 23;

/// Handshake message types.
const HS_CLIENT_HELLO: u8 = 1;
const HS_SERVER_HELLO: u8 = 2;

/// A parsed TLS handshake transcript.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TlsHandshake {
    /// Server name from the SNI extension, if present.
    pub sni: Option<String>,
    /// The 32-byte client random.
    pub client_random: [u8; 32],
    /// The 32-byte server random, when a ServerHello was seen.
    pub server_random: Option<[u8; 32]>,
    /// Version offered in the ClientHello legacy field.
    pub client_version: u16,
    /// Negotiated version (from the ServerHello, honoring
    /// `supported_versions` for TLS 1.3).
    pub version: u16,
    /// Ciphersuites offered by the client.
    pub offered_ciphers: Vec<u16>,
    /// Ciphersuite selected by the server (0 if no ServerHello).
    pub cipher: u16,
    /// ALPN protocol selected/offered, if present.
    pub alpn: Option<String>,
}

impl TlsHandshake {
    /// The SNI, or an empty string (convenience mirroring the paper's
    /// `hs.sni()` usage in Figure 1).
    pub fn sni(&self) -> &str {
        self.sni.as_deref().unwrap_or("")
    }

    /// Human-readable name of the selected ciphersuite.
    pub fn cipher(&self) -> String {
        cipher_name(self.cipher)
    }

    /// Field accessor backing [`retina_filter::SessionData`].
    pub fn field(&self, name: &str) -> Option<FieldValue<'_>> {
        match name {
            "sni" => self.sni.as_deref().map(FieldValue::Str),
            "version" => Some(FieldValue::Int(u64::from(self.version))),
            "cipher" => Some(FieldValue::Str(ciphers::cipher_name_static(self.cipher))),
            "alpn" => self.alpn.as_deref().map(FieldValue::Str),
            _ => None,
        }
    }
}

#[derive(Debug, Default)]
struct DirBuffer {
    data: Vec<u8>,
}

impl DirBuffer {
    fn push(&mut self, bytes: &[u8]) -> Result<(), ()> {
        if self.data.len() + bytes.len() > MAX_BUFFER {
            return Err(());
        }
        self.data.extend_from_slice(bytes);
        Ok(())
    }

    /// Pops one complete record, returning (content_type, body).
    fn pop_record(&mut self) -> Option<(u8, Vec<u8>)> {
        if self.data.len() < 5 {
            return None;
        }
        let len = usize::from(u16::from_be_bytes([self.data[3], self.data[4]]));
        if self.data.len() < 5 + len {
            return None;
        }
        let content_type = self.data[0];
        let body = self.data[5..5 + len].to_vec();
        self.data.drain(..5 + len);
        Some((content_type, body))
    }
}

/// Streaming TLS handshake parser.
#[derive(Debug, Default)]
pub struct TlsParser {
    to_server: DirBuffer,
    to_client: DirBuffer,
    /// Handshake-message reassembly buffers (messages can span records).
    hs_to_server: Vec<u8>,
    hs_to_client: Vec<u8>,
    handshake: TlsHandshake,
    seen_client_hello: bool,
    seen_server_hello: bool,
    done: bool,
    failed: bool,
    sessions: Vec<Session>,
}

impl TlsParser {
    /// Creates an empty parser.
    pub fn new() -> Self {
        Self::default()
    }

    fn process(&mut self, dir: Direction) -> ParseResult {
        loop {
            let buf = match dir {
                Direction::ToServer => &mut self.to_server,
                Direction::ToClient => &mut self.to_client,
            };
            let Some((content_type, body)) = buf.pop_record() else {
                return if self.failed {
                    ParseResult::Error
                } else if self.done {
                    ParseResult::Done
                } else {
                    ParseResult::Continue
                };
            };
            match content_type {
                CONTENT_HANDSHAKE => {
                    let hs_buf = match dir {
                        Direction::ToServer => &mut self.hs_to_server,
                        Direction::ToClient => &mut self.hs_to_client,
                    };
                    hs_buf.extend_from_slice(&body);
                    if hs_buf.len() > MAX_BUFFER {
                        self.failed = true;
                        return ParseResult::Error;
                    }
                    // Drain complete handshake messages.
                    loop {
                        let hs_buf = match dir {
                            Direction::ToServer => &mut self.hs_to_server,
                            Direction::ToClient => &mut self.hs_to_client,
                        };
                        if hs_buf.len() < 4 {
                            break;
                        }
                        let msg_len =
                            usize::from(hs_buf[1]) << 16 | usize::from(hs_buf[2]) << 8 | usize::from(hs_buf[3]);
                        if hs_buf.len() < 4 + msg_len {
                            break;
                        }
                        let msg_type = hs_buf[0];
                        let msg: Vec<u8> = hs_buf[4..4 + msg_len].to_vec();
                        hs_buf.drain(..4 + msg_len);
                        self.handle_message(msg_type, &msg);
                    }
                }
                CONTENT_CCS | CONTENT_APPDATA => {
                    // Encrypted phase begins: if we have both hellos the
                    // handshake transcript is complete.
                    if self.seen_client_hello {
                        self.finish();
                    }
                }
                CONTENT_ALERT
                    // Alerts can legitimately occur; finish with whatever
                    // was collected if a ClientHello was seen.
                    if self.seen_client_hello => {
                        self.finish();
                    }
                _ => {
                    self.failed = true;
                    return ParseResult::Error;
                }
            }
            if self.seen_client_hello && self.seen_server_hello {
                self.finish();
            }
            if self.done {
                return ParseResult::Done;
            }
        }
    }

    fn finish(&mut self) {
        if !self.done {
            self.done = true;
            self.sessions.push(Session::Tls(self.handshake.clone()));
        }
    }

    fn handle_message(&mut self, msg_type: u8, body: &[u8]) {
        match msg_type {
            HS_CLIENT_HELLO => {
                if parse_client_hello(body, &mut self.handshake).is_ok() {
                    self.seen_client_hello = true;
                } else {
                    self.failed = true;
                }
            }
            HS_SERVER_HELLO => {
                if parse_server_hello(body, &mut self.handshake).is_ok() {
                    self.seen_server_hello = true;
                } else {
                    self.failed = true;
                }
            }
            // Certificates, key exchange, finished, etc.: their presence
            // is noted implicitly; we do not retain their bodies.
            _ => {}
        }
    }
}

impl ConnParser for TlsParser {
    fn name(&self) -> &'static str {
        "tls"
    }

    fn probe(&self, data: &[u8], _dir: Direction) -> ProbeResult {
        if data.is_empty() {
            return ProbeResult::Unsure;
        }
        if data[0] != CONTENT_HANDSHAKE {
            return ProbeResult::NotForUs;
        }
        if data.len() < 3 {
            return ProbeResult::Unsure;
        }
        if data[1] != 3 || data[2] > 4 {
            return ProbeResult::NotForUs;
        }
        if data.len() < 6 {
            return ProbeResult::Unsure;
        }
        if matches!(data[5], HS_CLIENT_HELLO | HS_SERVER_HELLO) {
            ProbeResult::Certain
        } else {
            ProbeResult::NotForUs
        }
    }

    fn parse(&mut self, data: &[u8], dir: Direction) -> ParseResult {
        if self.failed {
            return ParseResult::Error;
        }
        if self.done {
            return ParseResult::Done;
        }
        let buf = match dir {
            Direction::ToServer => &mut self.to_server,
            Direction::ToClient => &mut self.to_client,
        };
        if buf.push(data).is_err() {
            self.failed = true;
            return ParseResult::Error;
        }
        self.process(dir)
    }

    fn drain_sessions(&mut self) -> Vec<Session> {
        std::mem::take(&mut self.sessions)
    }

    fn session_match_state(&self) -> crate::parser::SessionState {
        // The handshake is the only session; stop app-layer processing
        // and let the framework drop the encrypted remainder (§5.2).
        crate::parser::SessionState::Remove
    }

    fn session_nomatch_state(&self) -> crate::parser::SessionState {
        crate::parser::SessionState::Remove
    }
}

/// Reads a length-prefixed slice; returns (slice, rest).
fn take(data: &[u8], n: usize) -> Option<(&[u8], &[u8])> {
    (data.len() >= n).then(|| data.split_at(n))
}

fn parse_client_hello(body: &[u8], out: &mut TlsHandshake) -> Result<(), ()> {
    let (ver, rest) = take(body, 2).ok_or(())?;
    out.client_version = u16::from_be_bytes([ver[0], ver[1]]);
    out.version = out.client_version; // refined by ServerHello
    let (random, rest) = take(rest, 32).ok_or(())?;
    out.client_random.copy_from_slice(random);
    // Session ID.
    let (sid_len, rest) = take(rest, 1).ok_or(())?;
    let (_sid, rest) = take(rest, usize::from(sid_len[0])).ok_or(())?;
    // Cipher suites.
    let (cs_len, rest) = take(rest, 2).ok_or(())?;
    let cs_len = usize::from(u16::from_be_bytes([cs_len[0], cs_len[1]]));
    let (suites, rest) = take(rest, cs_len).ok_or(())?;
    out.offered_ciphers = suites
        .chunks_exact(2)
        .map(|c| u16::from_be_bytes([c[0], c[1]]))
        .collect();
    // Compression methods.
    let (comp_len, rest) = take(rest, 1).ok_or(())?;
    let (_comp, rest) = take(rest, usize::from(comp_len[0])).ok_or(())?;
    // Extensions (optional in SSLv3-style hellos).
    if rest.is_empty() {
        return Ok(());
    }
    let (ext_len, rest) = take(rest, 2).ok_or(())?;
    let ext_len = usize::from(u16::from_be_bytes([ext_len[0], ext_len[1]]));
    let (mut exts, _) = take(rest, ext_len).ok_or(())?;
    while exts.len() >= 4 {
        let ext_type = u16::from_be_bytes([exts[0], exts[1]]);
        let len = usize::from(u16::from_be_bytes([exts[2], exts[3]]));
        let Some((data, rest)) = take(&exts[4..], len) else {
            return Err(());
        };
        exts = rest;
        match ext_type {
            0
                // server_name: list_len u16, type u8, name_len u16, name.
                if data.len() >= 5 && data[2] == 0 => {
                    let name_len = usize::from(u16::from_be_bytes([data[3], data[4]]));
                    if let Some((name, _)) = take(&data[5..], name_len) {
                        out.sni = String::from_utf8(name.to_vec()).ok();
                    }
                }
            16
                // ALPN: list_len u16, then [len u8, proto]*. Record the
                // first offered protocol.
                if data.len() >= 3 => {
                    let plen = usize::from(data[2]);
                    if let Some((proto, _)) = take(&data[3..], plen) {
                        out.alpn = String::from_utf8(proto.to_vec()).ok();
                    }
                }
            _ => {}
        }
    }
    Ok(())
}

fn parse_server_hello(body: &[u8], out: &mut TlsHandshake) -> Result<(), ()> {
    let (ver, rest) = take(body, 2).ok_or(())?;
    out.version = u16::from_be_bytes([ver[0], ver[1]]);
    let (random, rest) = take(rest, 32).ok_or(())?;
    let mut sr = [0u8; 32];
    sr.copy_from_slice(random);
    out.server_random = Some(sr);
    let (sid_len, rest) = take(rest, 1).ok_or(())?;
    let (_sid, rest) = take(rest, usize::from(sid_len[0])).ok_or(())?;
    let (cipher, rest) = take(rest, 2).ok_or(())?;
    out.cipher = u16::from_be_bytes([cipher[0], cipher[1]]);
    let (_comp, rest) = take(rest, 1).ok_or(())?;
    if rest.is_empty() {
        return Ok(());
    }
    let (ext_len, rest) = take(rest, 2).ok_or(())?;
    let ext_len = usize::from(u16::from_be_bytes([ext_len[0], ext_len[1]]));
    let (mut exts, _) = take(rest, ext_len).ok_or(())?;
    while exts.len() >= 4 {
        let ext_type = u16::from_be_bytes([exts[0], exts[1]]);
        let len = usize::from(u16::from_be_bytes([exts[2], exts[3]]));
        let Some((data, rest)) = take(&exts[4..], len) else {
            return Err(());
        };
        exts = rest;
        match ext_type {
            43
                // supported_versions (ServerHello form: one u16): the
                // genuine negotiated version for TLS 1.3.
                if data.len() == 2 => {
                    out.version = u16::from_be_bytes([data[0], data[1]]);
                }
            16
                if data.len() >= 3 => {
                    let plen = usize::from(data[2]);
                    if let Some((proto, _)) = take(&data[3..], plen) {
                        out.alpn = String::from_utf8(proto.to_vec()).ok();
                    }
                }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::build::{
        client_hello_record, server_hello_record, ClientHelloSpec, ServerHelloSpec,
    };
    use super::*;

    fn spec() -> ClientHelloSpec {
        ClientHelloSpec {
            sni: Some("www.example.com".into()),
            ciphers: vec![0x1301, 0x1302, 0xc02f],
            random: [7u8; 32],
            version: 0x0303,
            alpn: Some("h2".into()),
        }
    }

    #[test]
    fn probe_client_hello() {
        let record = client_hello_record(&spec());
        let parser = TlsParser::new();
        assert_eq!(
            parser.probe(&record, Direction::ToServer),
            ProbeResult::Certain
        );
        assert_eq!(
            parser.probe(&record[..3], Direction::ToServer),
            ProbeResult::Unsure
        );
        assert_eq!(parser.probe(b"", Direction::ToServer), ProbeResult::Unsure);
        assert_eq!(
            parser.probe(b"GET / HTTP/1.1", Direction::ToServer),
            ProbeResult::NotForUs
        );
        assert_eq!(
            parser.probe(&[22, 9, 9, 0, 0, 1], Direction::ToServer),
            ProbeResult::NotForUs
        );
    }

    #[test]
    fn full_handshake_roundtrip() {
        let mut parser = TlsParser::new();
        let ch = client_hello_record(&spec());
        assert_eq!(
            parser.parse(&ch, Direction::ToServer),
            ParseResult::Continue
        );
        let sh = server_hello_record(&ServerHelloSpec {
            cipher: 0x1301,
            random: [9u8; 32],
            version: 0x0303,
            supported_version: Some(0x0304),
            alpn: None,
        });
        assert_eq!(parser.parse(&sh, Direction::ToClient), ParseResult::Done);
        let sessions = parser.drain_sessions();
        assert_eq!(sessions.len(), 1);
        let Session::Tls(hs) = &sessions[0] else {
            panic!()
        };
        assert_eq!(hs.sni(), "www.example.com");
        assert_eq!(hs.client_random, [7u8; 32]);
        assert_eq!(hs.server_random, Some([9u8; 32]));
        assert_eq!(hs.offered_ciphers, vec![0x1301, 0x1302, 0xc02f]);
        assert_eq!(hs.cipher, 0x1301);
        assert_eq!(hs.cipher(), "TLS_AES_128_GCM_SHA256");
        assert_eq!(hs.version, 0x0304, "supported_versions wins");
        assert_eq!(hs.alpn.as_deref(), Some("h2"));
    }

    #[test]
    fn handshake_split_across_segments() {
        let mut parser = TlsParser::new();
        let ch = client_hello_record(&spec());
        // Feed the ClientHello in 7-byte chunks.
        for chunk in ch.chunks(7) {
            let r = parser.parse(chunk, Direction::ToServer);
            assert!(matches!(r, ParseResult::Continue), "{r:?}");
        }
        let sh = server_hello_record(&ServerHelloSpec {
            cipher: 0xc02f,
            random: [1u8; 32],
            version: 0x0303,
            supported_version: None,
            alpn: None,
        });
        // Split the ServerHello in two.
        assert_eq!(
            parser.parse(&sh[..10], Direction::ToClient),
            ParseResult::Continue
        );
        assert_eq!(
            parser.parse(&sh[10..], Direction::ToClient),
            ParseResult::Done
        );
        let Session::Tls(hs) = &parser.drain_sessions()[0] else {
            panic!()
        };
        assert_eq!(hs.cipher(), "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256");
        assert_eq!(hs.version, 0x0303);
    }

    #[test]
    fn sni_absent() {
        let mut parser = TlsParser::new();
        let mut s = spec();
        s.sni = None;
        s.alpn = None;
        parser.parse(&client_hello_record(&s), Direction::ToServer);
        let sh = server_hello_record(&ServerHelloSpec {
            cipher: 0x1301,
            random: [0u8; 32],
            version: 0x0303,
            supported_version: None,
            alpn: None,
        });
        assert_eq!(parser.parse(&sh, Direction::ToClient), ParseResult::Done);
        let Session::Tls(hs) = &parser.drain_sessions()[0] else {
            panic!()
        };
        assert_eq!(hs.sni, None);
        assert_eq!(hs.sni(), "");
        // SessionData: absent SNI yields no field value.
        use retina_filter::SessionData;
        let session = Session::Tls(hs.clone());
        assert!(session.field("sni").is_none());
        assert!(session.field("version").is_some());
    }

    #[test]
    fn garbage_is_error() {
        let mut parser = TlsParser::new();
        // Valid record header, bogus inner handshake.
        let mut record = vec![22, 3, 1, 0, 5];
        record.extend_from_slice(&[1, 0, 0, 1, 0]); // CH with 1-byte body
        assert_eq!(
            parser.parse(&record, Direction::ToServer),
            ParseResult::Error
        );
    }

    #[test]
    fn non_tls_record_type_is_error() {
        let mut parser = TlsParser::new();
        let record = [99u8, 3, 3, 0, 1, 0];
        assert_eq!(
            parser.parse(&record, Direction::ToServer),
            ParseResult::Error
        );
    }

    #[test]
    fn oversized_buffer_rejected() {
        let mut parser = TlsParser::new();
        // A record claiming 16K body, fed 5 bytes at a time without ever
        // completing, must hit the buffer cap rather than grow forever.
        let header = [22u8, 3, 3, 0x40, 0x00];
        let mut r = parser.parse(&header, Direction::ToServer);
        let chunk = [0u8; 1024];
        for _ in 0..80 {
            r = parser.parse(&chunk, Direction::ToServer);
            if r == ParseResult::Error {
                return;
            }
        }
        panic!("buffer grew unbounded: {r:?}");
    }

    #[test]
    fn ccs_finishes_handshake_without_server_hello_13() {
        // Middlebox-compat mode: client sends CCS right after CH.
        let mut parser = TlsParser::new();
        parser.parse(&client_hello_record(&spec()), Direction::ToServer);
        let ccs = [20u8, 3, 3, 0, 1, 1];
        assert_eq!(parser.parse(&ccs, Direction::ToServer), ParseResult::Done);
        let Session::Tls(hs) = &parser.drain_sessions()[0] else {
            panic!()
        };
        assert_eq!(hs.sni(), "www.example.com");
        assert_eq!(hs.server_random, None);
    }

    #[test]
    fn field_accessors() {
        let hs = TlsHandshake {
            sni: Some("x.com".into()),
            version: 0x0303,
            cipher: 0x1301,
            alpn: Some("h2".into()),
            ..Default::default()
        };
        assert!(matches!(hs.field("sni"), Some(FieldValue::Str("x.com"))));
        assert!(matches!(hs.field("version"), Some(FieldValue::Int(0x0303))));
        assert!(matches!(
            hs.field("cipher"),
            Some(FieldValue::Str("TLS_AES_128_GCM_SHA256"))
        ));
        assert!(matches!(hs.field("alpn"), Some(FieldValue::Str("h2"))));
        assert!(hs.field("nope").is_none());
    }
}
