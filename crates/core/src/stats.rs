//! Per-core and per-stage statistics.
//!
//! The stage counters directly feed Figure 7 (the fraction of ingress
//! packets that trigger each processing stage, and average cycles per
//! stage), and the runtime's real-time monitoring of throughput, drops,
//! and memory (§5.3).

/// Counters for one pipeline stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Times the stage ran (its unit: packets, sessions, or callbacks).
    pub runs: u64,
    /// Total CPU cycles spent in the stage (only when profiling is on).
    pub cycles: u64,
}

impl StageStats {
    /// Average cycles per run, when profiling was enabled.
    pub fn avg_cycles(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.cycles as f64 / self.runs as f64
        }
    }

    /// Merges another stage's counters into this one.
    pub fn merge(&mut self, other: &StageStats) {
        self.runs += other.runs;
        self.cycles += other.cycles;
    }
}

/// Statistics for one worker core (or the aggregate across cores).
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreStats {
    /// Packets received from the RX queue.
    pub rx_packets: u64,
    /// Bytes received from the RX queue.
    pub rx_bytes: u64,
    /// Packets that failed L2–L4 parsing (delivered to raw-packet
    /// subscriptions only).
    pub parse_failures: u64,
    /// Software packet filter executions.
    pub packet_filter: StageStats,
    /// Packets handed to the connection tracker (lookup or insert).
    pub conn_tracking: StageStats,
    /// Packets that went through stream reassembly (payload-carrying
    /// packets of connections still being probed/parsed).
    pub reassembly: StageStats,
    /// Segments fed to application-layer parsers.
    pub app_parsing: StageStats,
    /// Session filter executions.
    pub session_filter: StageStats,
    /// User callback executions.
    pub callbacks: StageStats,
    /// Connections created.
    pub conns_created: u64,
    /// Connections dropped early by the connection/session filters
    /// (before natural termination — the lazy-discard win).
    pub conns_discarded: u64,
    /// Connections expired by timeouts.
    pub conns_expired: u64,
    /// Connections still open when the run ended (drained at shutdown).
    pub conns_drained: u64,
    /// Connections that terminated naturally (FIN/RST).
    pub conns_terminated: u64,
    /// Out-of-order segments buffered.
    pub ooo_buffered: u64,
}

impl CoreStats {
    /// Merges another core's counters into this one.
    pub fn merge(&mut self, other: &CoreStats) {
        self.rx_packets += other.rx_packets;
        self.rx_bytes += other.rx_bytes;
        self.parse_failures += other.parse_failures;
        self.packet_filter.merge(&other.packet_filter);
        self.conn_tracking.merge(&other.conn_tracking);
        self.reassembly.merge(&other.reassembly);
        self.app_parsing.merge(&other.app_parsing);
        self.session_filter.merge(&other.session_filter);
        self.callbacks.merge(&other.callbacks);
        self.conns_created += other.conns_created;
        self.conns_discarded += other.conns_discarded;
        self.conns_expired += other.conns_expired;
        self.conns_drained += other.conns_drained;
        self.conns_terminated += other.conns_terminated;
        self.ooo_buffered += other.ooo_buffered;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_cycles() {
        let s = StageStats {
            runs: 4,
            cycles: 100,
        };
        assert_eq!(s.avg_cycles(), 25.0);
        assert_eq!(StageStats::default().avg_cycles(), 0.0);
    }

    #[test]
    fn merge() {
        let mut a = CoreStats::default();
        a.rx_packets = 10;
        a.packet_filter = StageStats {
            runs: 10,
            cycles: 50,
        };
        let mut b = CoreStats::default();
        b.rx_packets = 5;
        b.packet_filter = StageStats {
            runs: 5,
            cycles: 25,
        };
        a.merge(&b);
        assert_eq!(a.rx_packets, 15);
        assert_eq!(a.packet_filter.runs, 15);
        assert_eq!(a.packet_filter.cycles, 75);
    }
}
