//! Declarative, seeded fault plans.
//!
//! A [`FaultPlan`] is data, not behavior: a seed plus a list of
//! [`Fault`]s with explicit windows. The same plan injects the same
//! faults at the same points on every run — device-level faults are
//! keyed on ingress sequence numbers and per-queue poll counts,
//! wire-level faults on frame indices, parser faults on payload
//! content. Nothing consults the wall clock, so a failing chaos run
//! reproduces from nothing but its seed.

use std::time::Duration;

use retina_support::rand::{splitmix64, RngExt, SeedableRng, SmallRng};

/// One injected fault with its activation window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// The mempool refuses allocations for frames whose ingress
    /// sequence number falls in `[start_seq, start_seq + frames)` —
    /// those frames are lost and counted as `rx_nombuf`, as if a burst
    /// of slow consumers had pinned every buffer.
    MempoolSqueeze {
        /// First ingress sequence number affected.
        start_seq: u64,
        /// Number of consecutive ingress frames affected.
        frames: u64,
    },
    /// RX queue `queue` delivers nothing for `polls` consecutive
    /// `rx_burst` calls starting at the queue's `start_poll`-th poll.
    /// Descriptors stay in the ring: a stall delays frames, it never
    /// drops them.
    RingStall {
        /// Affected RX queue.
        queue: u16,
        /// First poll (0-based, per queue) that stalls.
        start_poll: u64,
        /// Number of consecutive stalled polls.
        polls: u64,
    },
    /// Worker `core` sleeps `delay` before each of `polls` consecutive
    /// polls starting at its `start_poll`-th — a scheduling hiccup that
    /// backs the queue up without touching any packet.
    WorkerSlowdown {
        /// Affected worker core.
        core: u16,
        /// First poll (0-based, per core) that is slowed.
        start_poll: u64,
        /// Number of consecutive slowed polls.
        polls: u64,
        /// Injected extra latency per poll.
        delay: Duration,
    },
    /// Roughly `ppm` frames per million are truncated to a random
    /// prefix on the wire (decided per frame index from the seed).
    TruncateFrames {
        /// Faults per million frames.
        ppm: u32,
    },
    /// Roughly `ppm` frames per million get one payload byte flipped
    /// on the wire.
    CorruptFrames {
        /// Faults per million frames.
        ppm: u32,
    },
    /// Roughly `ppm` frames per million are delivered twice
    /// back-to-back (a retransmission/duplication on the wire).
    DuplicateFrames {
        /// Faults per million frames.
        ppm: u32,
    },
    /// Roughly `ppm` frames per million swap places with the frame
    /// behind them (out-of-order delivery within a batch).
    ReorderFrames {
        /// Faults per million frames.
        ppm: u32,
    },
    /// A dispatch worker sleeps `delay` before each of subscription
    /// `sub`'s callbacks whose per-subscription item sequence falls in
    /// `[start_item, start_item + items)` — an expensive-analysis
    /// stall that backs the subscription's dispatch rings up without
    /// touching the RX path. Item-indexed, so the decision is a pure
    /// function of the delivery order the workload itself drives.
    CallbackStall {
        /// Affected subscription (registration order).
        sub: u16,
        /// First item (0-based, per subscription) that is delayed.
        start_item: u64,
        /// Number of consecutive delayed items.
        items: u64,
        /// Injected extra latency per item.
        delay: Duration,
    },
    /// Worker `core` sleeps `delay` before each of its first `pickups`
    /// configuration-epoch pickups during a live swap — a core that is
    /// slow to reach its between-bursts safe point. The swap's grace
    /// period must hold: the old epoch stays referenced (and therefore
    /// allocated) until the stalled core acknowledges the new
    /// generation. Pickup-indexed per core, so the decision is a pure
    /// function of how many swaps the run has published.
    SwapStall {
        /// Affected worker core.
        core: u16,
        /// Number of consecutive epoch pickups to delay (from the
        /// core's first pickup of the run).
        pickups: u64,
        /// Injected extra latency per pickup.
        delay: Duration,
    },
    /// Registered chaos parsers panic when a payload's content hash is
    /// `0 (mod modulus)`; the runtime must convert the panic into a
    /// recoverable parse error. Content-based, so the decision is
    /// independent of scheduling.
    ParserPanic {
        /// Panic on `hash % modulus == 0` (larger = rarer).
        modulus: u64,
    },
}

impl Fault {
    /// One-line human description.
    pub fn describe(&self) -> String {
        match self {
            Fault::MempoolSqueeze { start_seq, frames } => {
                format!("mempool squeeze: seq [{start_seq}, {})", start_seq + frames)
            }
            Fault::RingStall {
                queue,
                start_poll,
                polls,
            } => format!(
                "ring stall: queue {queue}, polls [{start_poll}, {})",
                start_poll + polls
            ),
            Fault::WorkerSlowdown {
                core,
                start_poll,
                polls,
                delay,
            } => format!(
                "worker slowdown: core {core}, polls [{start_poll}, {}), +{delay:?}/poll",
                start_poll + polls
            ),
            Fault::CallbackStall {
                sub,
                start_item,
                items,
                delay,
            } => format!(
                "callback stall: sub {sub}, items [{start_item}, {}), +{delay:?}/item",
                start_item + items
            ),
            Fault::SwapStall {
                core,
                pickups,
                delay,
            } => format!("swap stall: core {core}, first {pickups} pickups, +{delay:?}/pickup"),
            Fault::TruncateFrames { ppm } => format!("truncate frames: {ppm} ppm"),
            Fault::CorruptFrames { ppm } => format!("corrupt frames: {ppm} ppm"),
            Fault::DuplicateFrames { ppm } => format!("duplicate frames: {ppm} ppm"),
            Fault::ReorderFrames { ppm } => format!("reorder frames: {ppm} ppm"),
            Fault::ParserPanic { modulus } => format!("parser panic: hash % {modulus} == 0"),
        }
    }
}

/// A reproducible fault-injection plan: a seed (driving every random
/// wire-level decision) plus explicit fault windows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for all per-frame randomness.
    pub seed: u64,
    /// The injected faults.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds one fault (builder style).
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Generates a randomized plan entirely from `seed`: between one
    /// and two instances of each fault family, with windows sized for
    /// a workload of roughly `expected_frames` frames over
    /// `num_queues` queues. Same seed, same plan — this is the entry
    /// point property tests fan out from.
    pub fn from_seed(seed: u64, expected_frames: u64, num_queues: u16) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xC4A0_5C4A_05C4_A05C);
        let mut plan = FaultPlan::new(seed);
        let frames = expected_frames.max(64);
        let squeezes = rng.random_range(0u32..3);
        for _ in 0..squeezes {
            let start = rng.random_range(0u64..frames);
            let len = rng.random_range(1u64..(frames / 8).max(2));
            plan.faults.push(Fault::MempoolSqueeze {
                start_seq: start,
                frames: len,
            });
        }
        let stalls = rng.random_range(0u32..3);
        for _ in 0..stalls {
            plan.faults.push(Fault::RingStall {
                queue: rng.random_range(0u16..num_queues.max(1)),
                start_poll: rng.random_range(0u64..256),
                polls: rng.random_range(1u64..128),
            });
        }
        let slowdowns = rng.random_range(0u32..2);
        for _ in 0..slowdowns {
            plan.faults.push(Fault::WorkerSlowdown {
                core: rng.random_range(0u16..num_queues.max(1)),
                start_poll: rng.random_range(0u64..256),
                polls: rng.random_range(1u64..32),
                delay: Duration::from_micros(rng.random_range(10u64..200)),
            });
        }
        if rng.random::<bool>() {
            plan.faults.push(Fault::TruncateFrames {
                ppm: rng.random_range(1_000u32..30_000),
            });
        }
        if rng.random::<bool>() {
            plan.faults.push(Fault::CorruptFrames {
                ppm: rng.random_range(1_000u32..30_000),
            });
        }
        if rng.random::<bool>() {
            plan.faults.push(Fault::DuplicateFrames {
                ppm: rng.random_range(1_000u32..50_000),
            });
        }
        if rng.random::<bool>() {
            plan.faults.push(Fault::ReorderFrames {
                ppm: rng.random_range(1_000u32..50_000),
            });
        }
        if rng.random::<bool>() {
            plan.faults.push(Fault::ParserPanic {
                modulus: rng.random_range(4u64..64),
            });
        }
        plan
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The configured parser-panic modulus, if any.
    pub fn parser_panic_modulus(&self) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            Fault::ParserPanic { modulus } => Some(*modulus),
            _ => None,
        })
    }

    /// Multi-line human description of the plan.
    pub fn describe(&self) -> String {
        let mut out = format!("fault plan (seed {:#x}):\n", self.seed);
        if self.faults.is_empty() {
            out.push_str("  (no faults)\n");
        }
        for f in &self.faults {
            out.push_str("  - ");
            out.push_str(&f.describe());
            out.push('\n');
        }
        out
    }
}

/// Stateless per-index coin flip used by the wire-level faults: frame
/// `index` under fault family `salt` fires when the mixed hash lands
/// below `ppm` per million. Batch boundaries and scheduling cannot
/// change the outcome.
pub(crate) fn index_fires(seed: u64, salt: u64, index: u64, ppm: u32) -> bool {
    let mut s = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ index;
    (splitmix64(&mut s) % 1_000_000) < ppm as u64
}

/// Stateless per-index draw in `[0, bound)` for fault parameters
/// (truncation length, corrupted byte offset).
pub(crate) fn index_draw(seed: u64, salt: u64, index: u64, bound: u64) -> u64 {
    let mut s = seed ^ salt.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ index.rotate_left(17);
    splitmix64(&mut s) % bound.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let a = FaultPlan::from_seed(7, 10_000, 4);
        let b = FaultPlan::from_seed(7, 10_000, 4);
        assert_eq!(a, b);
        let c = FaultPlan::from_seed(8, 10_000, 4);
        assert_ne!(a, c, "different seeds should differ (for seed 7 vs 8)");
    }

    #[test]
    fn builder_appends() {
        let plan = FaultPlan::new(1)
            .with(Fault::TruncateFrames { ppm: 500 })
            .with(Fault::ParserPanic { modulus: 8 });
        assert_eq!(plan.faults.len(), 2);
        assert_eq!(plan.parser_panic_modulus(), Some(8));
        assert!(!plan.is_empty());
        assert!(plan.describe().contains("truncate frames: 500 ppm"));
    }

    #[test]
    fn index_decisions_are_stable_and_scale_with_ppm() {
        for idx in [0u64, 1, 1000, u64::MAX] {
            assert_eq!(index_fires(42, 1, idx, 5000), index_fires(42, 1, idx, 5000));
        }
        let fired = (0..100_000u64)
            .filter(|i| index_fires(9, 2, *i, 10_000))
            .count();
        // 1% nominal rate: accept anything within a loose band.
        assert!((500..2_000).contains(&fired), "fired {fired}");
        assert_eq!(index_draw(3, 4, 5, 1), 0, "bound 1 always draws 0");
        assert!(index_draw(3, 4, 5, 10) < 10);
    }
}
