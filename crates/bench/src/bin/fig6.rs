//! Figure 6: single-core comparison with optimized IDSes on the
//! controlled HTTPS workload — Retina vs. the Zeek/Snort/Suricata
//! architecture models, all performing the same task (log TLS
//! connections matching the server name).
//!
//! For each system we measure single-core processing *capacity* on the
//! closed-loop 256 KB HTTPS workload, then sweep the offered request
//! rate: a system processes min(offered, capacity) and drops the rest —
//! reproducing the figure's series (bytes processed vs. kreq/s, with the
//! loss onset at each system's capacity).

use std::sync::Arc;

use retina_baselines::{Monitor, SnortLike, SuricataLike, ZeekLike};
use retina_bench::{bench_args, gbps, rule, stream_bytes, timed};
use retina_core::offline::run_offline;
use retina_core::subscribables::TlsHandshakeData;
use retina_core::{compile, RuntimeConfig};
use retina_trafficgen::HttpsWorkload;

fn main() {
    let args = bench_args();
    let response_bytes = 256 * 1024;
    // Enough requests for a stable measurement.
    let requests = if args.quick { 60 } else { 400 };
    let wl = HttpsWorkload {
        requests_per_sec: requests,
        response_bytes,
        duration_secs: 1.0,
        ..Default::default()
    };
    println!("generating {requests} closed-loop 256KB HTTPS requests...");
    let packets = wl.generate();
    let total_bytes = stream_bytes(&packets);
    println!(
        "workload: {} packets, {} MB\n",
        packets.len(),
        total_bytes / 1_000_000
    );

    // --- measure single-core capacity per system ------------------------
    let mut capacities: Vec<(&str, f64, u64)> = Vec::new();

    // Retina: offline single-core pipeline (same code path as a worker).
    let filter = Arc::new(compile("tls.sni ~ 'nginx'").unwrap());
    let config = RuntimeConfig::default();
    let mut matches = 0u64;
    let (_, secs) = timed(|| {
        run_offline::<TlsHandshakeData, _>(&filter, &config, packets.clone(), |_| matches += 1)
    });
    capacities.push(("retina", gbps(total_bytes, secs), matches));

    for (name, mut monitor) in [
        (
            "suricata",
            Box::new(SuricataLike::new("nginx")) as Box<dyn Monitor>,
        ),
        ("zeek", Box::new(ZeekLike::new("nginx")) as Box<dyn Monitor>),
        (
            "snort",
            Box::new(SnortLike::new("nginx")) as Box<dyn Monitor>,
        ),
    ] {
        let (_, secs) = timed(|| {
            for (frame, ts) in &packets {
                monitor.process(frame, *ts);
            }
        });
        capacities.push((name, gbps(total_bytes, secs), monitor.report().matches));
    }

    println!("single-core processing capacity (same analysis task):");
    println!(
        "{:>10} {:>14} {:>10} {:>10}",
        "system", "capacity Gbps", "matches", "vs retina"
    );
    rule(48);
    let retina_cap = capacities[0].1;
    for (name, cap, m) in &capacities {
        println!(
            "{name:>10} {cap:>14.3} {m:>10} {:>9.1}x",
            retina_cap / cap.max(1e-9)
        );
    }

    // --- figure series: bytes processed vs offered request rate ---------
    // Offered rate in kreq/s maps to Gbps as kreq/s * response_bytes * 8.
    let gbps_per_kreq = (response_bytes as f64 * 8.0 * 1000.0) / 1e9;
    println!(
        "\nFigure 6 series: bytes processed (Gbps) vs offered HTTPS request rate\n\
         (loss begins where processed < offered; offered = kreq/s x {gbps_per_kreq:.2} Gbps)"
    );
    print!("{:>10}", "kreq/s");
    let rates: Vec<f64> = vec![0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 30.0];
    for r in &rates {
        print!("{r:>8.2}");
    }
    println!();
    rule(10 + 8 * rates.len());
    for (name, cap, _) in &capacities {
        print!("{name:>10}");
        for r in &rates {
            let offered = r * gbps_per_kreq;
            print!("{:>8.2}", offered.min(*cap));
        }
        println!();
    }
    print!("{:>10}", "zero-loss?");
    for r in &rates {
        let offered = r * gbps_per_kreq;
        let losers = capacities
            .iter()
            .filter(|(_, cap, _)| *cap < offered)
            .count();
        print!("{:>8}", format!("{}ok", capacities.len() - losers));
    }
    println!();
    println!(
        "\nExpected shape (paper): retina > suricata > zeek > snort, with\n\
         retina sustaining 5-100x the others' rates."
    );
}
