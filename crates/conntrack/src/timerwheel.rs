//! Timer wheel for connection expiration (Varghese & Lauck style, §5.2).
//!
//! Design goals, following the paper and Girondi et al.: per-packet work
//! stays O(1) — activity updates only touch the connection's
//! `last_seen` stamp, never the wheel — and expiration work is amortized
//! by lazy revalidation: entries whose deadline has passed are handed to
//! the owner, which checks the connection's *actual* deadline and
//! reschedules if it moved.
//!
//! Deadlines beyond the wheel horizon are clamped to the furthest slot;
//! revalidation naturally reschedules them, giving unbounded range with a
//! fixed-size wheel (the "hierarchical" behavior).

// Narrowing casts in this file are intentional: tick, index, and counter arithmetic narrows to compact fields by design.
#![allow(clippy::cast_possible_truncation)]

use crate::tuple::ConnKey;

/// A fixed-size timer wheel keyed by [`ConnKey`].
#[derive(Debug)]
pub struct TimerWheel {
    tick_ns: u64,
    slots: Vec<Vec<(ConnKey, u64)>>,
    /// The tick index up to which the wheel has been advanced.
    current_tick: u64,
    len: usize,
}

impl TimerWheel {
    /// Creates a wheel with `num_slots` slots of `tick_ns` nanoseconds.
    ///
    /// # Panics
    /// Panics on a zero tick or slot count (configuration error).
    pub fn new(tick_ns: u64, num_slots: usize) -> Self {
        assert!(tick_ns > 0 && num_slots > 1, "invalid timer wheel config");
        TimerWheel {
            tick_ns,
            slots: (0..num_slots).map(|_| Vec::new()).collect(),
            current_tick: 0,
            len: 0,
        }
    }

    /// Number of scheduled (possibly stale) entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns true when no entries are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The wheel horizon in nanoseconds (deadlines further out are clamped
    /// and revalidated on expiry).
    pub fn horizon_ns(&self) -> u64 {
        self.tick_ns * (self.slots.len() as u64 - 1)
    }

    /// Schedules `key` to fire at `deadline_ns`. Deadlines in the past
    /// fire on the next [`TimerWheel::advance`]; deadlines beyond the
    /// horizon are clamped.
    pub fn schedule(&mut self, key: ConnKey, deadline_ns: u64) {
        let deadline_tick = deadline_ns / self.tick_ns;
        // Never schedule into the current or past tick's slot: it would
        // only fire after a full rotation.
        let tick = deadline_tick
            .max(self.current_tick + 1)
            .min(self.current_tick + self.slots.len() as u64 - 1);
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push((key, deadline_ns));
        self.len += 1;
    }

    /// Advances the wheel to `now_ns`, collecting every entry whose slot
    /// has come due. Entries are candidates — the owner must revalidate
    /// against the connection's actual deadline.
    pub fn advance(&mut self, now_ns: u64, expired: &mut Vec<(ConnKey, u64)>) {
        let target_tick = now_ns / self.tick_ns;
        // Bound the walk to one full rotation: beyond that every slot has
        // been visited.
        let steps = (target_tick.saturating_sub(self.current_tick)).min(self.slots.len() as u64);
        for _ in 0..steps {
            self.current_tick += 1;
            let slot = (self.current_tick % self.slots.len() as u64) as usize;
            self.len -= self.slots[slot].len();
            expired.append(&mut self.slots[slot]);
        }
        self.current_tick = self.current_tick.max(target_tick);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::SocketAddr;

    fn key(n: u16) -> ConnKey {
        let a: SocketAddr = format!("10.0.0.1:{n}").parse().unwrap();
        let b: SocketAddr = "1.1.1.1:443".parse().unwrap();
        ConnKey::new(a, b, 6)
    }

    #[test]
    fn fires_at_deadline() {
        let mut wheel = TimerWheel::new(1_000, 64); // 1µs ticks
        wheel.schedule(key(1), 5_000);
        let mut out = Vec::new();
        wheel.advance(4_000, &mut out);
        assert!(out.is_empty());
        wheel.advance(6_000, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, key(1));
        assert!(wheel.is_empty());
    }

    #[test]
    fn multiple_keys_same_slot() {
        let mut wheel = TimerWheel::new(1_000, 8);
        wheel.schedule(key(1), 3_000);
        wheel.schedule(key(2), 3_500);
        assert_eq!(wheel.len(), 2);
        let mut out = Vec::new();
        wheel.advance(4_000, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn beyond_horizon_clamped_not_lost() {
        let mut wheel = TimerWheel::new(1_000, 8); // horizon 7µs
        wheel.schedule(key(1), 1_000_000); // way out
        let mut out = Vec::new();
        wheel.advance(8_000, &mut out);
        // Fires early (clamped); owner revalidates and reschedules.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, 1_000_000, "original deadline preserved");
    }

    #[test]
    fn past_deadline_fires_next_advance() {
        let mut wheel = TimerWheel::new(1_000, 8);
        let mut out = Vec::new();
        wheel.advance(10_000, &mut out);
        wheel.schedule(key(1), 1_000); // already past
        wheel.advance(12_000, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn large_time_jump_bounded_walk() {
        let mut wheel = TimerWheel::new(1_000, 8);
        wheel.schedule(key(1), 2_000);
        let mut out = Vec::new();
        // Jump far ahead: the walk is bounded by one rotation but must
        // still collect everything due.
        wheel.advance(1_000_000_000, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn interleaved_schedule_and_advance() {
        let mut wheel = TimerWheel::new(1_000, 16);
        let mut fired = Vec::new();
        for i in 0..100u64 {
            wheel.schedule(key(i as u16), (i + 2) * 1_000);
            let mut out = Vec::new();
            wheel.advance(i * 1_000, &mut out);
            fired.extend(out);
        }
        let mut out = Vec::new();
        wheel.advance(200_000, &mut out);
        fired.extend(out);
        assert_eq!(fired.len(), 100);
    }

    #[test]
    #[should_panic(expected = "invalid timer wheel")]
    fn zero_tick_panics() {
        let _ = TimerWheel::new(0, 8);
    }
}
