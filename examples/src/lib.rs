//! Shared helpers for the example applications.

/// Parses `--packets N`, `--cores N`, and `--seed N` from `std::env::args`,
/// with defaults. Every example accepts these flags so runs can be scaled.
pub fn cli_args() -> ExampleArgs {
    let mut args = ExampleArgs::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |out: &mut u64| {
            if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                *out = v;
            }
        };
        match flag.as_str() {
            "--packets" => grab(&mut args.packets),
            "--cores" => grab(&mut args.cores),
            "--seed" => grab(&mut args.seed),
            "--help" | "-h" => {
                eprintln!(
                    "flags: --packets N   approximate packets to generate (default {})",
                    args.packets
                );
                eprintln!("       --cores N     worker cores (default {})", args.cores);
                eprintln!("       --seed N      traffic seed (default {})", args.seed);
                std::process::exit(0);
            }
            other => eprintln!("ignoring unknown flag {other}"),
        }
    }
    args
}

/// Common example parameters.
#[derive(Debug, Clone, Copy)]
pub struct ExampleArgs {
    /// Approximate packets of synthetic traffic.
    pub packets: u64,
    /// Worker cores.
    pub cores: u64,
    /// Traffic seed.
    pub seed: u64,
}

impl Default for ExampleArgs {
    fn default() -> Self {
        ExampleArgs {
            packets: 300_000,
            cores: 4,
            seed: 0xE7A,
        }
    }
}

/// Formats a byte count in human units.
pub fn human_bytes(n: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut v = n as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit + 1 < UNITS.len() {
        v /= 1024.0;
        unit += 1;
    }
    format!("{v:.1} {}", UNITS[unit])
}
