//! Offline mode (Appendix B): capture synthetic traffic to a pcap file,
//! then analyze the file — the "ingest a pcap instead of packets from
//! the network interface" workflow, plus interoperability: the written
//! file is standard libpcap format readable by tcpdump/Wireshark.
//!
//! ```text
//! cargo run --release -p retina-examples --bin pcap_offline
//! ```

// Narrowing casts in this file are intentional: synthetic traffic narrows seeded PRNG draws into ports, lengths, and header bytes.
#![allow(clippy::cast_possible_truncation)]

use std::sync::Arc;

use retina_core::offline::run_offline;
use retina_core::subscribables::TlsHandshakeData;
use retina_core::RuntimeConfig;
use retina_examples::cli_args;
use retina_filter::compile;
use retina_pcap::{PcapReader, PcapWriter};
use retina_trafficgen::campus::{generate, CampusConfig};

fn main() {
    let args = cli_args();
    let path = "/tmp/retina_capture.pcap";

    // 1. "Capture": write the campus mix to a pcap file.
    let packets = generate(&CampusConfig {
        seed: args.seed,
        target_packets: (args.packets as usize).min(200_000),
        ..CampusConfig::default()
    });
    let mut writer = PcapWriter::create(path).expect("create pcap");
    for (frame, ts) in &packets {
        writer.write_packet(frame, *ts).expect("write packet");
    }
    writer.flush().expect("flush");
    let bytes = std::fs::metadata(path).map_or(0, |m| m.len());
    println!(
        "wrote {} packets ({} MB) to {path}",
        packets.len(),
        bytes / 1_000_000
    );

    // 2. Analyze the file in offline mode.
    let mut reader = PcapReader::open(path).expect("open pcap");
    let replay = reader.read_all().expect("read pcap");
    assert_eq!(replay.len(), packets.len());

    let filter = Arc::new(compile(r"tls.sni matches '\.com$'").unwrap());
    let mut handshakes = 0u64;
    let mut sample = Vec::new();
    let stats =
        run_offline::<TlsHandshakeData, _>(&filter, &RuntimeConfig::default(), replay, |hs| {
            if sample.len() < 5 {
                sample.push(format!("{} ({})", hs.tls.sni(), hs.tls.cipher()));
            }
            handshakes += 1;
        });

    println!(
        "offline analysis: {} packets, {} .com TLS handshakes, {} connections tracked",
        stats.rx_packets, handshakes, stats.conns_created
    );
    for line in &sample {
        println!("  {line}");
    }
    println!("(the pcap at {path} is standard format — try `tcpdump -r {path} -c 5`)");
}
