//! Symmetric Receive Side Scaling via the Toeplitz hash.
//!
//! RSS distributes packets among RX queues by hashing the connection
//! 4-tuple. Retina requires *symmetric* RSS (§5.1): both directions of a
//! connection must land on the same core so connection state never crosses
//! cores. We use the standard Toeplitz construction with the symmetric key
//! of Woo & Park — `0x6d5a` repeated — which guarantees
//! `hash(src, dst) == hash(dst, src)`.

use std::net::IpAddr;

use retina_wire::ParsedPacket;

/// Length of the Toeplitz key in bytes (enough for IPv6 input: 36 bytes of
/// input need 36+4 bytes of key).
const KEY_LEN: usize = 52;

/// The symmetric RSS key: `0x6d5a` repeated (Woo & Park, "Scalable TCP
/// Session Monitoring with Symmetric Receive-side Scaling").
pub const SYMMETRIC_KEY: [u8; KEY_LEN] = {
    let mut key = [0u8; KEY_LEN];
    let mut i = 0;
    while i < KEY_LEN {
        key[i] = if i % 2 == 0 { 0x6d } else { 0x5a };
        i += 1;
    }
    key
};

/// Toeplitz hasher over a configurable key.
#[derive(Debug, Clone)]
pub struct RssHasher {
    key: [u8; KEY_LEN],
}

impl Default for RssHasher {
    fn default() -> Self {
        Self::symmetric()
    }
}

impl RssHasher {
    /// A hasher using the symmetric key (the configuration Retina installs).
    pub fn symmetric() -> Self {
        RssHasher { key: SYMMETRIC_KEY }
    }

    /// A hasher with a caller-provided key (e.g. Microsoft's reference key,
    /// which is *not* symmetric — used in tests to show why symmetry
    /// matters).
    pub fn with_key(key: [u8; KEY_LEN]) -> Self {
        RssHasher { key }
    }

    /// The raw Toeplitz hash of `input`.
    ///
    /// Each input bit selects a 32-bit window of the key; set bits XOR
    /// their window into the result.
    pub fn toeplitz(&self, input: &[u8]) -> u32 {
        debug_assert!(input.len() + 4 <= KEY_LEN, "input too long for key");
        let mut result = 0u32;
        // The sliding 32-bit window of key bits, advanced one bit per input
        // bit. Seed with the first 32 key bits.
        let mut window = u32::from_be_bytes([self.key[0], self.key[1], self.key[2], self.key[3]]);
        for (i, byte) in input.iter().enumerate() {
            let mut b = *byte;
            for bit in 0..8 {
                if b & 0x80 != 0 {
                    result ^= window;
                }
                b <<= 1;
                // Shift in the next key bit.
                let next_bit_index = (i * 8) + bit + 32;
                let next_bit = (self.key[next_bit_index / 8] >> (7 - (next_bit_index % 8))) & 1;
                window = (window << 1) | u32::from(next_bit);
            }
        }
        result
    }

    /// Hashes an IP 4-tuple (addresses + ports).
    pub fn hash_tuple(
        &self,
        src_ip: &IpAddr,
        dst_ip: &IpAddr,
        src_port: u16,
        dst_port: u16,
    ) -> u32 {
        let mut input = [0u8; 36];
        let len = match (src_ip, dst_ip) {
            (IpAddr::V4(s), IpAddr::V4(d)) => {
                input[0..4].copy_from_slice(&s.octets());
                input[4..8].copy_from_slice(&d.octets());
                input[8..10].copy_from_slice(&src_port.to_be_bytes());
                input[10..12].copy_from_slice(&dst_port.to_be_bytes());
                12
            }
            (IpAddr::V6(s), IpAddr::V6(d)) => {
                input[0..16].copy_from_slice(&s.octets());
                input[16..32].copy_from_slice(&d.octets());
                input[32..34].copy_from_slice(&src_port.to_be_bytes());
                input[34..36].copy_from_slice(&dst_port.to_be_bytes());
                36
            }
            // Mixed families cannot occur in one packet; hash nothing.
            _ => 0,
        };
        self.toeplitz(&input[..len])
    }

    /// Hashes a parsed packet's 4-tuple.
    pub fn hash_packet(&self, pkt: &ParsedPacket) -> u32 {
        self.hash_tuple(&pkt.src_ip, &pkt.dst_ip, pkt.src_port, pkt.dst_port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v4(s: &str) -> IpAddr {
        IpAddr::V4(s.parse().unwrap())
    }

    fn v6(s: &str) -> IpAddr {
        IpAddr::V6(s.parse().unwrap())
    }

    /// Microsoft's reference Toeplitz key and verification vectors from the
    /// RSS specification ("Verifying the RSS Hash Calculation").
    const MS_KEY: [u8; 52] = {
        let base = [
            0x6du8, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3,
            0x8f, 0xb0, 0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3,
            0x80, 0x30, 0xf2, 0x0c, 0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
        ];
        let mut key = [0u8; 52];
        let mut i = 0;
        while i < 40 {
            key[i] = base[i];
            i += 1;
        }
        key
    };

    #[test]
    fn microsoft_vector_ipv4_with_ports() {
        // 66.9.149.187:2794 -> 161.142.100.80:1766 => 0x51ccc178
        let hasher = RssHasher::with_key(MS_KEY);
        let mut input = [0u8; 12];
        input[0..4].copy_from_slice(&[66, 9, 149, 187]);
        input[4..8].copy_from_slice(&[161, 142, 100, 80]);
        input[8..10].copy_from_slice(&2794u16.to_be_bytes());
        input[10..12].copy_from_slice(&1766u16.to_be_bytes());
        assert_eq!(hasher.toeplitz(&input), 0x51ccc178);
    }

    #[test]
    fn microsoft_vector_ipv4_second() {
        // 199.92.111.2:14230 -> 65.69.140.83:4739 => 0xc626b0ea
        let hasher = RssHasher::with_key(MS_KEY);
        let mut input = [0u8; 12];
        input[0..4].copy_from_slice(&[199, 92, 111, 2]);
        input[4..8].copy_from_slice(&[65, 69, 140, 83]);
        input[8..10].copy_from_slice(&14230u16.to_be_bytes());
        input[10..12].copy_from_slice(&4739u16.to_be_bytes());
        assert_eq!(hasher.toeplitz(&input), 0xc626b0ea);
    }

    #[test]
    fn symmetric_key_is_symmetric_v4() {
        let hasher = RssHasher::symmetric();
        let fwd = hasher.hash_tuple(&v4("10.1.2.3"), &v4("93.184.216.34"), 50123, 443);
        let rev = hasher.hash_tuple(&v4("93.184.216.34"), &v4("10.1.2.3"), 443, 50123);
        assert_eq!(fwd, rev);
        assert_ne!(fwd, 0);
    }

    #[test]
    fn symmetric_key_is_symmetric_v6() {
        let hasher = RssHasher::symmetric();
        let fwd = hasher.hash_tuple(&v6("2001:db8::1"), &v6("2607:f8b0::2"), 55555, 443);
        let rev = hasher.hash_tuple(&v6("2607:f8b0::2"), &v6("2001:db8::1"), 443, 55555);
        assert_eq!(fwd, rev);
    }

    #[test]
    fn microsoft_key_is_not_symmetric() {
        // Demonstrates why the default key cannot be used for Retina.
        let hasher = RssHasher::with_key(MS_KEY);
        let fwd = hasher.hash_tuple(&v4("10.1.2.3"), &v4("93.184.216.34"), 50123, 443);
        let rev = hasher.hash_tuple(&v4("93.184.216.34"), &v4("10.1.2.3"), 443, 50123);
        assert_ne!(fwd, rev);
    }

    #[test]
    fn flows_spread_across_queues() {
        // The periodic symmetric key trades hash entropy for symmetry, so
        // we do not demand distinct 32-bit hashes. What load balancing
        // needs is an even spread of realistic flows across queues.
        let hasher = RssHasher::symmetric();
        let mut counts = [0usize; 8];
        let mut state = 0x12345678u64;
        let mut next = move || {
            // xorshift64* — deterministic pseudo-random flows.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state = state.wrapping_mul(0x2545F4914F6CDD1D);
            state
        };
        const FLOWS: usize = 4096;
        for _ in 0..FLOWS {
            let r = next();
            let src = v4(&format!(
                "10.{}.{}.{}",
                (r >> 8) & 0xff,
                (r >> 16) & 0xff,
                (r >> 24) & 0xff
            ));
            let dst = v4(&format!("171.64.{}.{}", (r >> 32) & 0xff, (r >> 40) & 0xff));
            let port = 1024 + ((r >> 48) & 0xffff) as u16 % 50000;
            let h = hasher.hash_tuple(&src, &dst, port, 443);
            counts[(h % 8) as usize] += 1;
        }
        for (q, &c) in counts.iter().enumerate() {
            // Each of the 8 queues should get 5–25% of 4096 flows.
            assert!(
                (FLOWS / 20..FLOWS / 4).contains(&c),
                "queue {q} got {c} of {FLOWS} flows: {counts:?}"
            );
        }
    }

    retina_support::proptest! {
        #[test]
        fn symmetry_holds_for_all_v4_tuples(
            a in retina_support::proptest::any::<u32>(),
            b in retina_support::proptest::any::<u32>(),
            pa in retina_support::proptest::any::<u16>(),
            pb in retina_support::proptest::any::<u16>(),
        ) {
            let hasher = RssHasher::symmetric();
            let sa = IpAddr::V4(a.into());
            let sb = IpAddr::V4(b.into());
            retina_support::prop_assert_eq!(
                hasher.hash_tuple(&sa, &sb, pa, pb),
                hasher.hash_tuple(&sb, &sa, pb, pa)
            );
        }
    }
}
