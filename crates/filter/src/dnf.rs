//! Disjunctive-normal-form conversion and pattern expansion.
//!
//! Retina "first transforms the filter expression into disjunctive normal
//! form, creating a set of patterns that each consist of a conjunction of
//! atomic predicates", then "expands and reorders each pattern such that
//! packet headers and application-layer protocols are parsed in sequence"
//! (§4.1). This module implements both steps:
//!
//! - [`to_dnf`] distributes `and` over `or` to yield conjunction lists;
//! - [`expand_patterns`] consults the protocol registry's encapsulation
//!   metadata to insert the implied unary predicates (e.g. `tls.sni`
//!   implies `tls`, which implies `tcp`, which implies `ipv4` *or*
//!   `ipv6`), duplicate patterns per valid protocol chain, and order
//!   predicates by parse sequence.

use crate::ast::{Expr, Predicate};
use crate::datatypes::FilterError;
use crate::registry::{FilterLayer, ProtocolRegistry};

/// A conjunction of atomic predicates (one DNF term).
pub type Conjunction = Vec<Predicate>;

/// Converts an expression tree to DNF: a list of conjunctions whose
/// disjunction is equivalent to the input.
pub fn to_dnf(expr: &Expr) -> Vec<Conjunction> {
    match expr {
        Expr::Predicate(p) => vec![vec![p.clone()]],
        Expr::Or(a, b) => {
            let mut out = to_dnf(a);
            out.extend(to_dnf(b));
            out
        }
        Expr::And(a, b) => {
            let left = to_dnf(a);
            let right = to_dnf(b);
            let mut out = Vec::with_capacity(left.len() * right.len());
            for l in &left {
                for r in &right {
                    let mut combined = l.clone();
                    for pred in r {
                        if !combined.contains(pred) {
                            combined.push(pred.clone());
                        }
                    }
                    out.push(combined);
                }
            }
            out
        }
    }
}

/// A fully-expanded pattern: predicates ordered by parse sequence, with a
/// single consistent protocol chain. The leading `eth` is implicit (it is
/// the trie root).
#[derive(Debug, Clone, PartialEq)]
pub struct FlatPattern {
    /// Ordered predicates (root-most first).
    pub predicates: Vec<Predicate>,
}

/// Expands DNF conjunctions into flat patterns.
///
/// Each conjunction may expand to several patterns (one per consistent
/// protocol chain, e.g. IPv4 and IPv6 variants). Conjunctions with no
/// consistent chain (e.g. `ipv4 and ipv6`, or `tls and dns`) are
/// *unsatisfiable* and silently dropped; if every conjunction is
/// unsatisfiable the filter is rejected.
pub fn expand_patterns(
    conjunctions: &[Conjunction],
    registry: &ProtocolRegistry,
) -> Result<Vec<FlatPattern>, FilterError> {
    let mut patterns = Vec::new();
    for conj in conjunctions {
        // Type-check every predicate up front.
        for pred in conj {
            registry.check(pred)?;
        }
        patterns.extend(expand_one(conj, registry));
    }
    if patterns.is_empty() && !conjunctions.is_empty() {
        return Err(FilterError::TypeMismatch(
            "filter is unsatisfiable: no consistent protocol chain".into(),
        ));
    }
    Ok(patterns)
}

fn expand_one(conj: &Conjunction, registry: &ProtocolRegistry) -> Vec<FlatPattern> {
    // Protocols mentioned by any predicate.
    let mut required: Vec<&str> = Vec::new();
    for pred in conj {
        if !required.contains(&pred.protocol()) {
            required.push(pred.protocol());
        }
    }
    if required.is_empty() {
        // Empty conjunction: matches everything (pattern ends at the root).
        return vec![FlatPattern { predicates: vec![] }];
    }

    // Candidate chains: every root chain of every required protocol that
    // covers *all* required protocols. Keep maximal distinct chains.
    let mut chains: Vec<Vec<&'static str>> = Vec::new();
    for proto in &required {
        for chain in registry.chains(proto) {
            if required.iter().all(|r| chain.iter().any(|c| c == r)) && !chains.contains(&chain) {
                chains.push(chain);
            }
        }
    }
    // Drop chains that are strict prefixes of other candidate chains: the
    // longer chain imposes *more* constraints, so the shorter one already
    // covers it; keeping both would duplicate patterns. (Chains of equal
    // content are already deduped.)
    let all = chains.clone();
    chains.retain(|c| {
        !all.iter()
            .any(|other| other.len() > c.len() && other.starts_with(c))
    });

    let mut out = Vec::new();
    for chain in &chains {
        let mut predicates = Vec::new();
        let mut ok = true;
        for proto_name in chain {
            let def = registry.get(proto_name).expect("chain proto registered");
            // Unary predicate for the protocol itself ("eth" root implied).
            if *proto_name != "eth" {
                predicates.push(Predicate::Unary {
                    protocol: proto_name.to_string(),
                });
            }
            // Binary predicates on this protocol, in source order. A unary
            // predicate written by the user is subsumed by the chain node.
            for pred in conj {
                if pred.protocol() == *proto_name {
                    match pred {
                        Predicate::Unary { .. } => {}
                        Predicate::Binary { .. } => predicates.push(pred.clone()),
                    }
                }
            }
            let _ = def;
        }
        // Sanity: every conjunct must have been placed.
        for pred in conj {
            if let Predicate::Binary { .. } = pred {
                if !predicates.contains(pred) {
                    ok = false;
                }
            }
        }
        if ok {
            out.push(FlatPattern { predicates });
        }
    }
    out
}

/// Returns the layer of a predicate according to the registry. Must only
/// be called with predicates that passed [`ProtocolRegistry::check`].
pub fn predicate_layer(pred: &Predicate, registry: &ProtocolRegistry) -> FilterLayer {
    registry
        .get(pred.protocol())
        .map_or(FilterLayer::Packet, |def| {
            def.predicate_layer(pred.is_unary())
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn dnf_strings(src: &str) -> Vec<Vec<String>> {
        to_dnf(&parse(src).unwrap())
            .into_iter()
            .map(|c| c.into_iter().map(|p| p.to_string()).collect())
            .collect()
    }

    fn patterns(src: &str) -> Vec<Vec<String>> {
        let registry = ProtocolRegistry::default();
        let dnf = to_dnf(&parse(src).unwrap());
        expand_patterns(&dnf, &registry)
            .unwrap()
            .into_iter()
            .map(|p| {
                p.predicates
                    .iter()
                    .map(std::string::ToString::to_string)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn dnf_single_predicate() {
        assert_eq!(dnf_strings("tcp"), vec![vec!["tcp"]]);
    }

    #[test]
    fn dnf_distributes() {
        assert_eq!(
            dnf_strings("ipv4 and (tls or ssh)"),
            vec![vec!["ipv4", "tls"], vec!["ipv4", "ssh"]]
        );
    }

    #[test]
    fn dnf_nested_distribution() {
        assert_eq!(
            dnf_strings("(ipv4 or ipv6) and (tls or ssh)"),
            vec![
                vec!["ipv4", "tls"],
                vec!["ipv4", "ssh"],
                vec!["ipv6", "tls"],
                vec!["ipv6", "ssh"],
            ]
        );
    }

    #[test]
    fn dnf_dedupes_repeated_predicate() {
        assert_eq!(dnf_strings("tcp and tcp"), vec![vec!["tcp"]]);
    }

    #[test]
    fn expand_session_field_pulls_in_chain() {
        assert_eq!(
            patterns("tls.sni matches 'x'"),
            vec![
                vec!["ipv4", "tcp", "tls", "tls.sni matches 'x'"],
                vec!["ipv6", "tcp", "tls", "tls.sni matches 'x'"],
            ]
        );
    }

    #[test]
    fn expand_respects_explicit_ip_version() {
        assert_eq!(patterns("ipv4 and tls"), vec![vec!["ipv4", "tcp", "tls"]]);
    }

    #[test]
    fn figure3_expansion() {
        // (ipv4 and tcp.port >= 100 and tls.sni ~ 'netflix') or http
        let got = patterns("(ipv4 and tcp.port >= 100 and tls.sni ~ 'netflix') or http");
        assert_eq!(
            got,
            vec![
                vec![
                    "ipv4",
                    "tcp",
                    "tcp.port >= 100",
                    "tls",
                    "tls.sni matches 'netflix'"
                ],
                vec!["ipv4", "tcp", "http"],
                vec!["ipv6", "tcp", "http"],
            ]
        );
    }

    #[test]
    fn unsatisfiable_conjunction_dropped() {
        // ipv4 and ipv6 cannot coexist; with an alternative disjunct the
        // filter still compiles.
        assert_eq!(
            patterns("(ipv4 and ipv6) or tcp"),
            vec![vec!["ipv4", "tcp"], vec!["ipv6", "tcp"],]
        );
    }

    #[test]
    fn fully_unsatisfiable_rejected() {
        let registry = ProtocolRegistry::default();
        let dnf = to_dnf(&parse("ipv4 and ipv6").unwrap());
        assert!(expand_patterns(&dnf, &registry).is_err());
        let dnf = to_dnf(&parse("tls and dns").unwrap());
        assert!(expand_patterns(&dnf, &registry).is_err());
    }

    #[test]
    fn dns_expands_over_udp_and_tcp() {
        let got = patterns("dns");
        assert_eq!(got.len(), 4);
        assert!(got.contains(&vec!["ipv4".to_string(), "udp".into(), "dns".into()]));
        assert!(got.contains(&vec!["ipv6".to_string(), "tcp".into(), "dns".into()]));
    }

    #[test]
    fn empty_like_filter_matches_all() {
        // A bare "eth" unary ends at the trie root.
        assert_eq!(patterns("eth"), vec![Vec::<String>::new()]);
    }

    #[test]
    fn packet_binary_ordering() {
        // Binary predicates follow their protocol's unary node.
        assert_eq!(
            patterns("ipv4.ttl > 64 and tcp.port = 443"),
            vec![vec!["ipv4", "ipv4.ttl > 64", "tcp", "tcp.port = 443"]]
        );
    }

    #[test]
    fn unknown_protocol_rejected() {
        let registry = ProtocolRegistry::default();
        let dnf = to_dnf(&parse("bogus").unwrap());
        assert!(matches!(
            expand_patterns(&dnf, &registry),
            Err(FilterError::UnknownProtocol(_))
        ));
    }

    #[test]
    fn layer_assignment() {
        let registry = ProtocolRegistry::default();
        let p = |s: &str| {
            let Expr::Predicate(p) = parse(s).unwrap() else {
                unreachable!()
            };
            p
        };
        use crate::ast::Expr;
        assert_eq!(predicate_layer(&p("tcp"), &registry), FilterLayer::Packet);
        assert_eq!(
            predicate_layer(&p("tcp.port = 1"), &registry),
            FilterLayer::Packet
        );
        assert_eq!(
            predicate_layer(&p("tls"), &registry),
            FilterLayer::Connection
        );
        assert_eq!(
            predicate_layer(&p("tls.sni = 'x'"), &registry),
            FilterLayer::Session
        );
    }
}
