//! Hardware flow-rule synthesis (§4.1, "Hardware Packet Filter").
//!
//! For every packet-layer path of the predicate trie that either completes
//! a pattern or hands off to the connection filter, we build candidate NIC
//! flow rules. Each predicate is validated against the device's
//! capability profile *individually*: predicates the NIC cannot express
//! are simply omitted, widening the rule — the software packet filter
//! implements the remaining logic, so the installed rule set is always at
//! least as broad as the subscription filter.
//!
//! "Either-endpoint" predicates (`ipv4.addr`, `tcp.port`) expand into two
//! rules (source-side and destination-side), since NIC patterns constrain
//! one direction at a time.

// Narrowing casts in this file are intentional: tick, index, and counter arithmetic narrows to compact fields by design.
#![allow(clippy::cast_possible_truncation)]

use retina_nic::flow::{DeviceCaps, FlowRule, FlowRuleEngine, PortMatch, RuleItem};
use retina_wire::EtherType;

use crate::ast::{Op, Predicate, Value};
use crate::registry::FilterLayer;
use crate::trie::PredicateTrie;

/// Synthesizes the hardware rule set for `trie` on a device with `caps`.
///
/// Returns an empty vector when the filter matches everything at the root
/// (installing no rules leaves the NIC delivering all traffic, which is
/// exactly the broadest rule set).
pub fn synthesize(trie: &PredicateTrie, caps: DeviceCaps) -> Vec<FlowRule> {
    if trie.matches_everything() {
        return Vec::new();
    }
    let engine = FlowRuleEngine::new(caps);
    let mut rules: Vec<FlowRule> = Vec::new();

    // Anchor nodes: packet-layer pattern ends, plus frontiers that hand
    // off to the connection filter.
    let mut anchors: Vec<usize> = trie
        .reachable()
        .into_iter()
        .filter(|&id| {
            let n = trie.node(id);
            n.layer == FilterLayer::Packet
                && (n.pattern_end
                    || n.children
                        .iter()
                        .any(|&c| trie.node(c).layer != FilterLayer::Packet))
        })
        .collect();
    anchors.sort_unstable();
    anchors.dedup();

    for anchor in anchors {
        for rule in rules_for_path(trie, anchor, &engine) {
            if !rules.contains(&rule) {
                rules.push(rule);
            }
        }
    }
    rules
}

/// A rule under construction.
#[derive(Debug, Clone, Default)]
struct Draft {
    ethertype: Option<EtherType>,
    v4_src: Option<(std::net::Ipv4Addr, u8)>,
    v4_dst: Option<(std::net::Ipv4Addr, u8)>,
    v6_src: Option<(std::net::Ipv6Addr, u8)>,
    v6_dst: Option<(std::net::Ipv6Addr, u8)>,
    l4: Option<&'static str>, // "tcp" | "udp"
    src_port: Option<PortMatch>,
    dst_port: Option<PortMatch>,
}

impl Draft {
    fn to_rule(&self) -> FlowRule {
        let mut pattern = vec![RuleItem::Eth {
            ethertype: self.ethertype,
        }];
        match self.ethertype {
            Some(EtherType::Ipv4) => pattern.push(RuleItem::Ipv4 {
                src: self.v4_src,
                dst: self.v4_dst,
            }),
            Some(EtherType::Ipv6) => pattern.push(RuleItem::Ipv6 {
                src: self.v6_src,
                dst: self.v6_dst,
            }),
            _ => {}
        }
        match self.l4 {
            Some("tcp") => pattern.push(RuleItem::Tcp {
                src_port: self.src_port,
                dst_port: self.dst_port,
            }),
            Some("udp") => pattern.push(RuleItem::Udp {
                src_port: self.src_port,
                dst_port: self.dst_port,
            }),
            _ => {}
        }
        FlowRule::rss(pattern)
    }
}

fn rules_for_path(trie: &PredicateTrie, anchor: usize, engine: &FlowRuleEngine) -> Vec<FlowRule> {
    let mut drafts = vec![Draft::default()];
    for id in trie.path_to(anchor) {
        let Some(pred) = &trie.node(id).pred else {
            continue; // root
        };
        apply_pred(pred, &mut drafts, engine);
    }
    drafts.into_iter().map(|d| d.to_rule()).collect()
}

/// Applies one predicate to all drafts, widening (skipping) it when the
/// device cannot express it.
fn apply_pred(pred: &Predicate, drafts: &mut Vec<Draft>, engine: &FlowRuleEngine) {
    match pred {
        Predicate::Unary { protocol } => {
            for d in drafts.iter_mut() {
                match protocol.as_str() {
                    "ipv4" => d.ethertype = Some(EtherType::Ipv4),
                    "ipv6" => d.ethertype = Some(EtherType::Ipv6),
                    "tcp" => d.l4 = Some("tcp"),
                    "udp" => d.l4 = Some("udp"),
                    // icmp and unknown protocols: not expressible as a
                    // pattern item here; rule stays broader.
                    _ => {}
                }
            }
        }
        Predicate::Binary {
            protocol,
            field,
            op,
            value,
        } => {
            let port = port_match(*op, value);
            match (protocol.as_str(), field.as_str()) {
                ("ipv4", "src_addr") | ("ipv6", "src_addr") if is_eq_in(*op) => {
                    for d in drafts.iter_mut() {
                        set_ip(d, value, true);
                    }
                }
                ("ipv4", "dst_addr") | ("ipv6", "dst_addr") if is_eq_in(*op) => {
                    for d in drafts.iter_mut() {
                        set_ip(d, value, false);
                    }
                }
                ("ipv4", "addr") | ("ipv6", "addr") if is_eq_in(*op) => {
                    // Either-endpoint: duplicate drafts.
                    let mut expanded = Vec::with_capacity(drafts.len() * 2);
                    for d in drafts.iter() {
                        let mut src = d.clone();
                        set_ip(&mut src, value, true);
                        let mut dst = d.clone();
                        set_ip(&mut dst, value, false);
                        expanded.push(src);
                        expanded.push(dst);
                    }
                    *drafts = expanded;
                }
                ("tcp", "src_port") | ("udp", "src_port") => {
                    if let Some(pm) = port {
                        for d in drafts.iter_mut() {
                            d.src_port = Some(pm);
                        }
                    }
                }
                ("tcp", "dst_port") | ("udp", "dst_port") => {
                    if let Some(pm) = port {
                        for d in drafts.iter_mut() {
                            d.dst_port = Some(pm);
                        }
                    }
                }
                ("tcp", "port") | ("udp", "port") => {
                    if let Some(pm) = port {
                        let mut expanded = Vec::with_capacity(drafts.len() * 2);
                        for d in drafts.iter() {
                            let mut src = d.clone();
                            src.src_port = Some(pm);
                            let mut dst = d.clone();
                            dst.dst_port = Some(pm);
                            expanded.push(src);
                            expanded.push(dst);
                        }
                        *drafts = expanded;
                    }
                }
                // ttl, window, total_len, … are not offloadable: widen.
                _ => {}
            }
            // Drop constraints the device rejects, predicate by predicate.
            for d in drafts.iter_mut() {
                widen_until_valid(d, engine);
            }
        }
    }
}

fn is_eq_in(op: Op) -> bool {
    matches!(op, Op::Eq | Op::In)
}

fn set_ip(d: &mut Draft, value: &Value, src_side: bool) {
    match value {
        Value::Ipv4Net(a, p) => {
            d.ethertype = Some(EtherType::Ipv4);
            if src_side {
                d.v4_src = Some((*a, *p));
            } else {
                d.v4_dst = Some((*a, *p));
            }
        }
        Value::Ipv6Net(a, p) => {
            d.ethertype = Some(EtherType::Ipv6);
            if src_side {
                d.v6_src = Some((*a, *p));
            } else {
                d.v6_dst = Some((*a, *p));
            }
        }
        _ => {}
    }
}

fn port_match(op: Op, value: &Value) -> Option<PortMatch> {
    match (op, value) {
        (Op::Eq, Value::Int(p)) => Some(PortMatch::Exact(*p as u16)),
        (Op::Ge, Value::Int(p)) => Some(PortMatch::Range(*p as u16, u16::MAX)),
        (Op::Gt, Value::Int(p)) => Some(PortMatch::Range((*p as u16).saturating_add(1), u16::MAX)),
        (Op::Le, Value::Int(p)) => Some(PortMatch::Range(0, *p as u16)),
        (Op::Lt, Value::Int(p)) => Some(PortMatch::Range(0, (*p as u16).saturating_sub(1))),
        (Op::In, Value::IntRange(lo, hi)) => Some(PortMatch::Range(*lo as u16, *hi as u16)),
        // != cannot be expressed as a single NIC match: widen.
        _ => None,
    }
}

/// Strips unsupported constraints until the device accepts the rule.
fn widen_until_valid(d: &mut Draft, engine: &FlowRuleEngine) {
    for _ in 0..4 {
        match engine.validate(&d.to_rule()) {
            Ok(()) => return,
            Err(retina_nic::flow::FlowError::Unsupported(what)) => match what {
                "l4 port range" => {
                    if matches!(d.src_port, Some(PortMatch::Range(..))) {
                        d.src_port = None;
                    }
                    if matches!(d.dst_port, Some(PortMatch::Range(..))) {
                        d.dst_port = None;
                    }
                }
                "l4 port match" => {
                    d.src_port = None;
                    d.dst_port = None;
                }
                "ipv4 prefix match" | "ipv6 prefix match" => {
                    d.v4_src = None;
                    d.v4_dst = None;
                    d.v6_src = None;
                    d.v6_dst = None;
                }
                _ => return,
            },
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ProtocolRegistry;
    use retina_nic::flow::FlowAction;
    use retina_wire::build::{build_tcp, build_udp, TcpSpec, UdpSpec};
    use retina_wire::{ParsedPacket, TcpFlags};

    fn rules(src: &str, caps: DeviceCaps) -> Vec<FlowRule> {
        let trie = PredicateTrie::from_source(src, &ProtocolRegistry::default()).unwrap();
        synthesize(&trie, caps)
    }

    fn engine_with(rules: Vec<FlowRule>, caps: DeviceCaps) -> FlowRuleEngine {
        let mut e = FlowRuleEngine::new(caps);
        for r in rules {
            e.install(r).unwrap();
        }
        e
    }

    fn tcp_pkt(src: &str, dst: &str) -> ParsedPacket {
        let frame = build_tcp(&TcpSpec {
            src: src.parse().unwrap(),
            dst: dst.parse().unwrap(),
            seq: 1,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 64,
            ttl: 64,
            payload: b"",
        });
        ParsedPacket::parse(&frame).unwrap()
    }

    fn udp_pkt(src: &str, dst: &str) -> ParsedPacket {
        let frame = build_udp(&UdpSpec {
            src: src.parse().unwrap(),
            dst: dst.parse().unwrap(),
            ttl: 64,
            payload: b"x",
        });
        ParsedPacket::parse(&frame).unwrap()
    }

    #[test]
    fn figure3_on_connectx5_widens_port_range() {
        // ConnectX-5 profile cannot express `tcp.port >= 100`, so the
        // hardware filter permits all TCP (both IP versions) — exactly the
        // Figure 3 outcome.
        let caps = DeviceCaps::connectx5();
        let rs = rules(
            "(ipv4 and tcp.port >= 100 and tls.sni ~ 'netflix') or http",
            caps,
        );
        let engine = engine_with(rs, caps);
        // TCP with low ports still passes the hardware filter (software
        // will refine).
        assert_eq!(
            engine.apply(&tcp_pkt("1.1.1.1:5", "2.2.2.2:7")),
            FlowAction::Rss
        );
        assert_eq!(
            engine.apply(&tcp_pkt("[2001:db8::1]:5", "[2001:db8::2]:7")),
            FlowAction::Rss
        );
        // UDP is dropped in hardware.
        assert_eq!(
            engine.apply(&udp_pkt("1.1.1.1:53", "2.2.2.2:53")),
            FlowAction::Drop
        );
    }

    #[test]
    fn port_range_offloaded_on_full_device() {
        let caps = DeviceCaps::full();
        let rs = rules("ipv4 and tcp.port >= 100 and tls.sni ~ 'netflix'", caps);
        let engine = engine_with(rs, caps);
        assert_eq!(
            engine.apply(&tcp_pkt("1.1.1.1:5000", "2.2.2.2:443")),
            FlowAction::Rss
        );
        // Both ports below 100: dropped in hardware on this device.
        assert_eq!(
            engine.apply(&tcp_pkt("1.1.1.1:5", "2.2.2.2:7")),
            FlowAction::Drop
        );
    }

    #[test]
    fn exact_port_offloaded_on_connectx5() {
        let caps = DeviceCaps::connectx5();
        let rs = rules("tcp.port = 443 and tls", caps);
        let engine = engine_with(rs, caps);
        assert_eq!(
            engine.apply(&tcp_pkt("1.1.1.1:50000", "2.2.2.2:443")),
            FlowAction::Rss
        );
        assert_eq!(
            engine.apply(&tcp_pkt("1.1.1.1:443", "2.2.2.2:50000")),
            FlowAction::Rss
        );
        assert_eq!(
            engine.apply(&tcp_pkt("1.1.1.1:50000", "2.2.2.2:80")),
            FlowAction::Drop
        );
    }

    #[test]
    fn match_all_installs_no_rules() {
        assert!(rules("", DeviceCaps::connectx5()).is_empty());
        assert!(rules("eth", DeviceCaps::connectx5()).is_empty());
    }

    #[test]
    fn prefix_rules() {
        let caps = DeviceCaps::connectx5();
        let rs = rules("ipv4.addr in 23.246.0.0/18 and tcp", caps);
        let engine = engine_with(rs, caps);
        assert_eq!(
            engine.apply(&tcp_pkt("23.246.1.1:9", "8.8.8.8:443")),
            FlowAction::Rss
        );
        assert_eq!(
            engine.apply(&tcp_pkt("8.8.8.8:9", "23.246.1.1:443")),
            FlowAction::Rss
        );
        assert_eq!(
            engine.apply(&tcp_pkt("8.8.8.8:9", "9.9.9.9:443")),
            FlowAction::Drop
        );
    }

    #[test]
    fn basic_nic_keeps_protocol_stack_only() {
        // A "dumb" NIC without port matching still installs protocol-level
        // rules: TLS filter → all TCP delivered, everything else dropped.
        let caps = DeviceCaps::basic();
        let rs = rules("tls.sni ~ 'x' and tcp.port = 443", caps);
        let engine = engine_with(rs, caps);
        assert_eq!(
            engine.apply(&tcp_pkt("1.1.1.1:1", "2.2.2.2:2")),
            FlowAction::Rss
        );
        assert_eq!(
            engine.apply(&udp_pkt("1.1.1.1:1", "2.2.2.2:2")),
            FlowAction::Drop
        );
    }

    #[test]
    fn rules_always_at_least_as_broad_as_filter() {
        // Property: any packet the software packet filter matches must
        // pass the synthesized hardware rules.
        use crate::interp::{CompiledFilter, FilterFns};
        let registry = ProtocolRegistry::default();
        for caps in [
            DeviceCaps::basic(),
            DeviceCaps::connectx5(),
            DeviceCaps::full(),
        ] {
            for src in [
                "tcp.port = 443",
                "tcp.port >= 1000",
                "udp.src_port in 50..100",
                "ipv4.addr in 10.0.0.0/8 and tcp",
                "tls.sni ~ 'netflix' or http",
                "ipv4.ttl > 64",
                "dns",
            ] {
                let filter = CompiledFilter::build(src, &registry).unwrap();
                let engine = engine_with(filter.hw_rules(caps, &registry).unwrap(), caps);
                let pkts = [
                    tcp_pkt("10.1.2.3:50000", "93.184.216.34:443"),
                    tcp_pkt("10.1.2.3:80", "10.9.9.9:90"),
                    tcp_pkt("172.16.0.1:1000", "172.16.0.2:2000"),
                    udp_pkt("10.0.0.1:53", "8.8.8.8:53"),
                    udp_pkt("1.1.1.1:70", "2.2.2.2:99"),
                    tcp_pkt("[2001:db8::1]:5000", "[2607:f8b0::2]:443"),
                ];
                for pkt in &pkts {
                    if filter.packet_filter(pkt).is_match() {
                        assert_eq!(
                            engine.apply(pkt),
                            FlowAction::Rss,
                            "filter '{src}' caps {caps:?}: hw dropped a sw-matched packet"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rule_count_reasonable_for_either_endpoint() {
        // `tcp.port = 443` → src and dst variants, for v4 and v6 = 4 rules.
        let rs = rules("tcp.port = 443", DeviceCaps::connectx5());
        assert_eq!(rs.len(), 4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::registry::ProtocolRegistry;
    use retina_nic::flow::FlowAction;
    use retina_support::proptest::prelude::*;
    use retina_wire::build::{build_tcp, build_udp, TcpSpec, UdpSpec};
    use retina_wire::{ParsedPacket, TcpFlags};

    /// Subscription filter pool: a spread of packet-only, connection-,
    /// and session-layer filters, plus a match-everything entry (the
    /// empty source) to exercise the no-rules broadest case.
    const SOURCES: &[&str] = &[
        "",
        "tls",
        "http",
        "dns",
        "ipv4 and tcp",
        "udp",
        "tcp.port = 443",
        "tcp.port >= 1024",
        "ipv4.src_addr = 10.0.0.0/8 and tcp",
        "tls.sni ~ 'netflix'",
        "ipv6 and tcp.dst_port = 80",
    ];

    fn caps_for(sel: u8) -> DeviceCaps {
        match sel % 3 {
            0 => DeviceCaps::full(),
            1 => DeviceCaps::connectx5(),
            _ => DeviceCaps::basic(),
        }
    }

    fn merged_rules(srcs: &[&str], caps: DeviceCaps) -> Vec<FlowRule> {
        let trie = PredicateTrie::from_sources(srcs, &ProtocolRegistry::default()).unwrap();
        synthesize(&trie, caps)
    }

    fn single_rules(src: &str, caps: DeviceCaps) -> Vec<FlowRule> {
        let trie = PredicateTrie::from_source(src, &ProtocolRegistry::default()).unwrap();
        synthesize(&trie, caps)
    }

    fn engine_with(rules: &[FlowRule], caps: DeviceCaps) -> FlowRuleEngine {
        let mut e = FlowRuleEngine::new(caps);
        for r in rules {
            e.install(r.clone()).expect("synthesized rule must install");
        }
        e
    }

    fn packet(is_udp: bool, v6: bool, sport: u16, dport: u16) -> ParsedPacket {
        let (src, dst) = if v6 {
            (
                format!("[2001:db8::1]:{sport}"),
                format!("[2001:db8::2]:{dport}"),
            )
        } else {
            (
                format!("10.1.2.3:{sport}"),
                format!("93.184.216.34:{dport}"),
            )
        };
        let frame = if is_udp {
            build_udp(&UdpSpec {
                src: src.parse().unwrap(),
                dst: dst.parse().unwrap(),
                ttl: 64,
                payload: b"x",
            })
        } else {
            build_tcp(&TcpSpec {
                src: src.parse().unwrap(),
                dst: dst.parse().unwrap(),
                seq: 1,
                ack: 0,
                flags: TcpFlags::SYN,
                window: 64,
                ttl: 64,
                payload: b"",
            })
        };
        ParsedPacket::parse(&frame).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The merged trie's hardware rules are the deduplicated union of
        /// the individual subscriptions' rules: every rule a subscription
        /// would install on its own is present (unless the merged set is
        /// the broadest possible — empty, delivering everything), no rule
        /// appears twice, and every rule passes device validation (caps
        /// fallback widened it rather than producing a rejected rule).
        #[test]
        fn union_superset_dedup_and_caps_fallback(
            srcs in sample::subsequence(SOURCES.to_vec(), 1..=6),
            capsel in 0u8..3,
        ) {
            let caps = caps_for(capsel);
            let merged = merged_rules(&srcs, caps);
            for (i, r) in merged.iter().enumerate() {
                prop_assert!(!merged[i + 1..].contains(r), "duplicate rule {r:?}");
            }
            // Installs cleanly within caps (validates every rule).
            let _ = engine_with(&merged, caps);
            // An empty merged set is the broadest possible (deliver
            // everything); otherwise it must contain every rule each
            // subscription would install on its own.
            if !merged.is_empty() {
                for src in &srcs {
                    for r in single_rules(src, caps) {
                        prop_assert!(
                            merged.contains(&r),
                            "rule {r:?} from {src:?} missing from the merged set",
                        );
                    }
                }
            }
        }

        /// Per-packet broadness: any packet an individual subscription's
        /// hardware filter would deliver, the merged filter also delivers
        /// (the union never narrows any subscription, on any device).
        #[test]
        fn union_never_narrows_a_subscription(
            srcs in sample::subsequence(SOURCES.to_vec(), 1..=6),
            capsel in 0u8..3,
            sport in 1u16..u16::MAX,
            dport in 1u16..u16::MAX,
            shape in 0u8..4,
        ) {
            let caps = caps_for(capsel);
            let merged = engine_with(&merged_rules(&srcs, caps), caps);
            let pkt = packet(shape & 1 == 1, shape & 2 == 2, sport, dport);
            for src in &srcs {
                let single = engine_with(&single_rules(src, caps), caps);
                if single.apply(&pkt) == FlowAction::Rss {
                    prop_assert!(
                        merged.apply(&pkt) == FlowAction::Rss,
                        "packet delivered by {src:?} alone but dropped by the union",
                    );
                }
            }
        }
    }
}
