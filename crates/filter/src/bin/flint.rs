//! `retina-flint` — the filter linter.
//!
//! Runs the semantic analyzer ([`retina_filter::analysis`]) over filter
//! files and prints rustc-style caret diagnostics, or machine-readable
//! JSON for CI consumption. Exit status is non-zero when any
//! error-severity finding (or unparseable filter) is present, so a CI
//! stage can gate on it directly.
//!
//! ```text
//! retina-flint [--json] [--union] [--caps basic|connectx5|full|none] \
//!              [--expr FILTER]... [FILE]...
//! ```
//!
//! Each input file holds one filter per line; blank lines and lines
//! starting with `#` are ignored. With `--union`, all filters in a file
//! are analyzed as one multi-subscription union (enabling the W004/W005
//! duplicate/containment checks); by default each line is analyzed
//! independently.

use std::process::ExitCode;

use retina_filter::analysis::{analyze, analyze_union, Analysis};
use retina_filter::ast::Span;
use retina_filter::diag::{json_escape, render_filter_error, Diagnostic, Severity};
use retina_filter::registry::ProtocolRegistry;
use retina_nic::flow::DeviceCaps;

/// One filter queued for analysis, with its provenance.
struct Entry {
    /// Display origin: file path, or `<expr>` for `--expr` filters.
    origin: String,
    /// 1-based line number within the origin file.
    line: usize,
    /// The filter source text.
    filter: String,
}

/// One finding, flattened for output.
struct Finding {
    origin: String,
    line: usize,
    filter: String,
    code: String,
    severity: Severity,
    message: String,
    span: Option<Span>,
    note: Option<String>,
}

fn usage() -> &'static str {
    "retina-flint: lint Retina filter expressions\n\
     \n\
     usage: retina-flint [options] [FILE]...\n\
     \n\
     options:\n\
       --expr FILTER   lint FILTER directly (repeatable)\n\
       --json          emit machine-readable JSON instead of caret diagnostics\n\
       --union         analyze each file's filters as one subscription union\n\
       --caps PROFILE  DeviceCaps for offload warnings: basic | connectx5\n\
                       | full | none (default: connectx5)\n\
       -h, --help      show this help\n\
     \n\
     input files hold one filter per line; '#' starts a comment line.\n\
     exit status: 0 clean (warnings allowed), 1 on any E-code or usage error."
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut union = false;
    let mut caps: Option<DeviceCaps> = Some(DeviceCaps::connectx5());
    let mut files: Vec<String> = Vec::new();
    let mut exprs: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--union" => union = true,
            "--caps" => {
                i += 1;
                let Some(profile) = args.get(i) else {
                    eprintln!("error: --caps needs a profile\n\n{}", usage());
                    return ExitCode::FAILURE;
                };
                caps = match profile.as_str() {
                    "basic" => Some(DeviceCaps::basic()),
                    "connectx5" => Some(DeviceCaps::connectx5()),
                    "full" => Some(DeviceCaps::full()),
                    "none" => None,
                    other => {
                        eprintln!("error: unknown caps profile '{other}'\n\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--expr" => {
                i += 1;
                let Some(e) = args.get(i) else {
                    eprintln!("error: --expr needs a filter\n\n{}", usage());
                    return ExitCode::FAILURE;
                };
                exprs.push(e.clone());
            }
            "-h" | "--help" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("error: unknown option '{other}'\n\n{}", usage());
                return ExitCode::FAILURE;
            }
            file => files.push(file.to_string()),
        }
        i += 1;
    }
    if files.is_empty() && exprs.is_empty() {
        eprintln!("error: no input\n\n{}", usage());
        return ExitCode::FAILURE;
    }

    let registry = ProtocolRegistry::default();
    let mut findings: Vec<Finding> = Vec::new();
    let mut broken = false;

    // Group entries per origin so --union can merge a file's filters.
    let mut groups: Vec<Vec<Entry>> = Vec::new();
    for (n, expr) in exprs.iter().enumerate() {
        groups.push(vec![Entry {
            origin: format!("<expr {}>", n + 1),
            line: 1,
            filter: expr.clone(),
        }]);
    }
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {file}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let entries: Vec<Entry> = text
            .lines()
            .enumerate()
            .filter(|(_, l)| {
                let t = l.trim();
                !t.is_empty() && !t.starts_with('#')
            })
            .map(|(idx, l)| Entry {
                origin: file.clone(),
                line: idx + 1,
                filter: l.trim().to_string(),
            })
            .collect();
        groups.push(entries);
    }

    for group in &groups {
        if group.is_empty() {
            continue;
        }
        if union && group.len() > 1 {
            let srcs: Vec<&str> = group.iter().map(|e| e.filter.as_str()).collect();
            match analyze_union(&srcs, &registry, caps.as_ref()) {
                Ok(analysis) => collect(&analysis, group, &mut findings),
                Err(e) => {
                    // A union fails to parse as a whole; attribute the
                    // error by finding the first unparseable member.
                    for entry in group {
                        if let Err(err) = retina_filter::parser::parse(&entry.filter) {
                            report_parse_error(entry, &err, json, &mut findings);
                            broken = true;
                        }
                    }
                    let _ = e;
                }
            }
        } else {
            for entry in group {
                match analyze(&entry.filter, &registry, caps.as_ref()) {
                    Ok(analysis) => {
                        collect(&analysis, std::slice::from_ref(entry), &mut findings);
                    }
                    Err(err) => {
                        report_parse_error(entry, &err, json, &mut findings);
                        broken = true;
                    }
                }
            }
        }
    }

    let errors = findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .count();
    let warnings = findings.len() - errors;

    if json {
        print_json(&findings);
    } else {
        for f in &findings {
            print!("{}", render_finding(f));
        }
        eprintln!(
            "retina-flint: {errors} error{}, {warnings} warning{}",
            if errors == 1 { "" } else { "s" },
            if warnings == 1 { "" } else { "s" }
        );
    }

    if errors > 0 || broken {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Flattens an [`Analysis`] into findings tagged with each subscription's
/// origin entry.
fn collect(analysis: &Analysis, entries: &[Entry], findings: &mut Vec<Finding>) {
    for d in &analysis.diagnostics {
        let entry = &entries[d.sub.min(entries.len().saturating_sub(1))];
        findings.push(Finding {
            origin: entry.origin.clone(),
            line: entry.line,
            filter: entry.filter.clone(),
            code: d.code.to_string(),
            severity: d.severity,
            message: d.message.clone(),
            span: d.span,
            note: d.note.clone(),
        });
    }
}

/// Records an unparseable filter as an `E000` finding (and prints the
/// caret rendering immediately in human mode via [`render_finding`]).
fn report_parse_error(
    entry: &Entry,
    err: &retina_filter::FilterError,
    _json: bool,
    findings: &mut Vec<Finding>,
) {
    let span = retina_filter::diag::error_span(err);
    findings.push(Finding {
        origin: entry.origin.clone(),
        line: entry.line,
        filter: entry.filter.clone(),
        code: "E000".to_string(),
        severity: Severity::Error,
        message: err.to_string(),
        span,
        note: None,
    });
}

/// Renders one finding rustc-style, locating it at its real line within
/// the origin file (the filter source is padded with newlines so the
/// caret snippet reports file coordinates, not filter-local ones).
fn render_finding(f: &Finding) -> String {
    let padded = format!("{}{}", "\n".repeat(f.line - 1), f.filter);
    let pad = f.line - 1;
    let d = Diagnostic {
        code: leak_code(&f.code),
        severity: f.severity,
        message: f.message.clone(),
        span: f.span.map(|s| Span::new(s.start + pad, s.end + pad)),
        sub: 0,
        note: f.note.clone(),
    };
    if f.code == "E000" {
        // Parse/lex errors re-render through the shared error path so the
        // output matches what the proc macros print.
        let err = retina_filter::parser::parse(&f.filter).unwrap_err();
        return render_filter_error(&padded, &f.origin, &shift_error(err, pad));
    }
    d.render(&padded, &f.origin)
}

/// `Diagnostic::code` is `&'static str`; the handful of distinct codes are
/// interned here when round-tripping through the flattened form.
fn leak_code(code: &str) -> &'static str {
    const CODES: &[&str] = &[
        "E000", "E001", "E002", "E003", "E004", "W001", "W002", "W003", "W004", "W005",
    ];
    CODES
        .iter()
        .find(|c| **c == code)
        .copied()
        .unwrap_or("E???")
}

fn shift_error(err: retina_filter::FilterError, pad: usize) -> retina_filter::FilterError {
    use retina_filter::FilterError as FE;
    match err {
        FE::Lex { pos, msg } => FE::Lex {
            pos: pos + pad,
            msg,
        },
        FE::Parse { pos, msg } => FE::Parse {
            pos: pos + pad,
            msg,
        },
        other => other,
    }
}

fn print_json(findings: &[Finding]) {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        let span = match f.span {
            Some(s) => format!("{{\"start\":{},\"end\":{}}}", s.start, s.end),
            None => "null".to_string(),
        };
        let note = match &f.note {
            Some(n) => format!("\"{}\"", json_escape(n)),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "  {{\"file\":\"{}\",\"line\":{},\"filter\":\"{}\",\"code\":\"{}\",\
             \"severity\":\"{}\",\"message\":\"{}\",\"span\":{},\"note\":{}}}{}\n",
            json_escape(&f.origin),
            f.line,
            json_escape(&f.filter),
            f.code,
            f.severity,
            json_escape(&f.message),
            span,
            note,
            if i + 1 == findings.len() { "" } else { "," }
        ));
    }
    out.push(']');
    println!("{out}");
}
