//! Figure 12 (Appendix B): speedup of compile-time filter code
//! generation over runtime filter interpretation, on four offline traces
//! with filters of increasing complexity.
//!
//! Both engines run the identical offline pipeline (single core, no
//! hardware filtering, TLS-handshake subscription, mirroring the
//! appendix's "log TLS handshakes" task); only the filter execution
//! strategy differs. Speedup = interpreted CPU time / compiled CPU time.

use std::sync::Arc;

use retina_bench::{bench_args, rule, timed};
use retina_core::offline::run_offline;
use retina_core::subscribables::TlsHandshakeData;
use retina_core::{compile, FilterFns, RuntimeConfig};
use retina_filtergen::filter;
use retina_trafficgen::traces::{stratosphere_trace, TRACE_NAMES};

// The five filters of Figure 12, statically compiled.
filter!(CNone, "");
filter!(CIpv4, "ipv4");
filter!(CPort, "tcp.port = 443");
filter!(CCipher, r"tls.cipher ~ 'AES_128_GCM'");
filter!(
    CNetflix,
    "ipv4.addr in 23.246.0.0/18 or ipv4.addr in 37.77.184.0/21 or \
     ipv4.addr in 45.57.0.0/17 or ipv4.addr in 64.120.128.0/17 or \
     ipv4.addr in 66.197.128.0/17 or ipv4.addr in 108.175.32.0/20 or \
     ipv4.addr in 185.2.220.0/22 or ipv4.addr in 185.9.188.0/22 or \
     ipv4.addr in 192.173.64.0/18 or ipv4.addr in 198.38.96.0/19 or \
     ipv4.addr in 198.45.48.0/20 or ipv4.addr in 208.75.79.0/24 or \
     ipv6.addr in 2620:10c:7000::/44 or ipv6.addr in 2a00:86c0::/32 or \
     tls.sni ~ 'netflix.com' or tls.sni ~ 'nflxvideo.net' or \
     tls.sni ~ 'nflximg.net' or tls.sni ~ 'nflxext.com' or \
     tls.sni ~ 'nflximg.com' or tls.sni ~ 'nflxso.net'"
);

struct Case {
    label: &'static str,
    source: &'static str,
    static_filter: &'static dyn FilterFns,
}

fn main() {
    let args = bench_args();
    let trace_packets = if args.quick {
        30_000
    } else {
        args.packets.max(120_000)
    };
    let repeats = if args.quick { 1 } else { 3 };

    let cases: Vec<Case> = vec![
        Case {
            label: "None",
            source: "",
            static_filter: &CNone,
        },
        Case {
            label: "\"ipv4\"",
            source: "ipv4",
            static_filter: &CIpv4,
        },
        Case {
            label: "\"tcp.port = 443\"",
            source: "tcp.port = 443",
            static_filter: &CPort,
        },
        Case {
            label: "\"tls.cipher ~ AES_128_GCM\"",
            source: r"tls.cipher ~ 'AES_128_GCM'",
            static_filter: &CCipher,
        },
        Case {
            label: "Netflix traffic (32 preds)",
            source: CNetflix.source(),
            static_filter: &CNetflix,
        },
    ];

    println!(
        "Figure 12: speedup of compiled (static codegen) over interpreted filters\n\
         traces: {} packets each, best of {repeats} runs\n",
        trace_packets
    );
    print!("{:<30}", "filter \\ trace");
    for name in TRACE_NAMES {
        print!("{name:>10}");
    }
    println!();
    rule(30 + 10 * TRACE_NAMES.len());

    let config = RuntimeConfig::default();
    for case in &cases {
        print!("{:<30}", case.label);
        for trace_name in TRACE_NAMES {
            let packets = stratosphere_trace(trace_name, trace_packets);
            let interp = Arc::new(compile(case.source).unwrap());

            let mut interp_best = f64::MAX;
            let mut static_best = f64::MAX;
            let mut interp_hits = 0u64;
            let mut static_hits = 0u64;
            for _ in 0..repeats {
                interp_hits = 0;
                let (_, secs) = timed(|| {
                    run_offline::<TlsHandshakeData, _>(&interp, &config, packets.clone(), |_| {
                        interp_hits += 1;
                    })
                });
                interp_best = interp_best.min(secs);

                static_hits = 0;
                let (_, secs) = timed(|| {
                    run_static(
                        case.static_filter,
                        &config,
                        packets.clone(),
                        &mut static_hits,
                    );
                });
                static_best = static_best.min(secs);
            }
            assert_eq!(
                interp_hits, static_hits,
                "engines must deliver identical results ({}: {})",
                case.label, trace_name
            );
            print!("{:>10.2}", interp_best / static_best);
        }
        println!();
    }
    println!(
        "\nvalues > 1.0 mean compiled code is faster; paper reports 1.05x-3.0x,\n\
         growing with filter complexity (largest for the 32-predicate filter)."
    );
}

/// Monomorphized offline run for each static filter type.
fn run_static(
    f: &dyn FilterFns,
    config: &RuntimeConfig,
    packets: Vec<(retina_support::bytes::Bytes, u64)>,
    hits: &mut u64,
) {
    // Dispatch to the concrete type so the filter calls are static.
    macro_rules! try_type {
        ($ty:ty, $val:expr) => {
            if f.source() == <$ty as Default>::default().source() {
                let filter = Arc::new(<$ty as Default>::default());
                run_offline::<TlsHandshakeData, $ty>(&filter, config, packets, |_| *hits += 1);
                return;
            }
            let _ = $val;
        };
    }
    try_type!(CNone, ());
    try_type!(CIpv4, ());
    try_type!(CPort, ());
    try_type!(CCipher, ());
    try_type!(CNetflix, ());
    unreachable!("unknown static filter");
}
