//! The RSS redirection table (RETA).
//!
//! The NIC maps `hash % table_size` to an RX queue via this table. Retina
//! uses the table for two things: spreading flows across cores, and the
//! §6.1 ingress-rate control trick — remapping a random subset of entries
//! to a *sink* queue whose packets are dropped. Because the mapping is
//! per-hash-bucket, sampling preserves flow consistency: every packet of a
//! given connection is either fully delivered or fully sunk.

// Narrowing casts in this file are intentional: tick, index, and counter arithmetic narrows to compact fields by design.
#![allow(clippy::cast_possible_truncation)]

/// Queue index reserved for "sink" entries.
///
/// The device treats packets mapped here as intentionally dropped; they are
/// counted separately from loss so zero-loss measurements remain meaningful.
pub const SINK_QUEUE: u16 = u16::MAX;

/// An RSS redirection table.
#[derive(Debug, Clone)]
pub struct RedirectionTable {
    entries: Vec<u16>,
    num_queues: u16,
}

impl RedirectionTable {
    /// Standard RETA size on ConnectX-5-class devices.
    pub const DEFAULT_SIZE: usize = 512;

    /// Builds a table of `size` entries spreading round-robin over
    /// `num_queues` queues.
    ///
    /// # Panics
    /// Panics if `num_queues` is zero or `size` is zero (device
    /// misconfiguration, not a data-dependent condition).
    pub fn new(size: usize, num_queues: u16) -> Self {
        assert!(size > 0 && num_queues > 0, "invalid RETA configuration");
        let entries = (0..size)
            .map(|i| (i % num_queues as usize) as u16)
            .collect();
        RedirectionTable {
            entries,
            num_queues,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true if the table has no entries (never after construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of real (non-sink) queues the table spreads over.
    pub fn num_queues(&self) -> u16 {
        self.num_queues
    }

    /// Looks up the queue for an RSS hash.
    pub fn lookup(&self, hash: u32) -> u16 {
        self.entries[hash as usize % self.entries.len()]
    }

    /// Overwrites a single entry (e.g. for custom load-balancing).
    pub fn set_entry(&mut self, index: usize, queue: u16) {
        self.entries[index] = queue;
    }

    /// Remaps approximately `fraction` of the entries to the sink queue,
    /// choosing entries deterministically by spacing so the sampled set is
    /// stable across calls. `fraction` is clamped to `[0, 1]`.
    ///
    /// This reproduces the paper's method of adjusting the rate of traffic
    /// reaching the processing cores "by modifying the NIC's RSS
    /// redirection table to direct random four-tuples to a separate sink
    /// core" (§6.1).
    pub fn set_sink_fraction(&mut self, fraction: f64) {
        let fraction = fraction.clamp(0.0, 1.0);
        let n = self.entries.len();
        let sink_count = (fraction * n as f64).round() as usize;
        // Reset all entries to the round-robin layout first.
        for (i, e) in self.entries.iter_mut().enumerate() {
            *e = (i % self.num_queues as usize) as u16;
        }
        if sink_count == 0 {
            return;
        }
        // Evenly space sink entries through the table.
        let stride = n as f64 / sink_count as f64;
        for k in 0..sink_count {
            let idx = (k as f64 * stride) as usize % n;
            self.entries[idx] = SINK_QUEUE;
        }
    }

    /// Fraction of entries currently mapped to the sink queue.
    pub fn sink_fraction(&self) -> f64 {
        let sunk = self.entries.iter().filter(|&&q| q == SINK_QUEUE).count();
        sunk as f64 / self.entries.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_spread() {
        let reta = RedirectionTable::new(512, 4);
        let mut counts = [0usize; 4];
        for hash in 0..512u32 {
            counts[reta.lookup(hash) as usize] += 1;
        }
        assert_eq!(counts, [128; 4]);
    }

    #[test]
    fn lookup_wraps_hash() {
        let reta = RedirectionTable::new(8, 2);
        assert_eq!(reta.lookup(0), reta.lookup(8));
        assert_eq!(reta.lookup(3), reta.lookup(11));
    }

    #[test]
    fn sink_fraction_applied() {
        let mut reta = RedirectionTable::new(512, 8);
        reta.set_sink_fraction(0.25);
        let f = reta.sink_fraction();
        assert!((f - 0.25).abs() < 0.01, "got {f}");
    }

    #[test]
    fn sink_fraction_zero_and_one() {
        let mut reta = RedirectionTable::new(128, 2);
        reta.set_sink_fraction(0.0);
        assert_eq!(reta.sink_fraction(), 0.0);
        reta.set_sink_fraction(1.0);
        assert_eq!(reta.sink_fraction(), 1.0);
    }

    #[test]
    fn sink_fraction_resets_previous_layout() {
        let mut reta = RedirectionTable::new(128, 2);
        reta.set_sink_fraction(0.9);
        reta.set_sink_fraction(0.1);
        assert!((reta.sink_fraction() - 0.1).abs() < 0.02);
    }

    #[test]
    fn same_hash_same_queue_consistency() {
        // Flow consistency: the queue for a hash depends only on the table,
        // so every packet of a flow goes to the same place.
        let mut reta = RedirectionTable::new(512, 16);
        reta.set_sink_fraction(0.5);
        let q1 = reta.lookup(0xdeadbeef);
        let q2 = reta.lookup(0xdeadbeef);
        assert_eq!(q1, q2);
    }

    #[test]
    #[should_panic(expected = "invalid RETA")]
    fn zero_queues_panics() {
        let _ = RedirectionTable::new(512, 0);
    }
}
