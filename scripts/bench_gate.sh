#!/usr/bin/env bash
# Bench regression gate: compares the CI bench results produced by the
# smoke stage (results/BENCH_ci.json, written by `telemetry_smoke
# --json-out` and `governor_storm --json-out`) against the committed
# baseline, with a ±15% default tolerance per metric. Record-only
# metrics ("_" prefix) are printed but never gate.
#
#   scripts/bench_gate.sh [baseline.json] [current.json]
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${1:-results/BENCH_baseline.json}"
CURRENT="${2:-results/BENCH_ci.json}"

if [ ! -f "$CURRENT" ]; then
    echo "bench gate: $CURRENT not found — run 'scripts/ci.sh smoke' first" >&2
    exit 2
fi

cargo run --release --offline -q -p retina-bench --bin bench_gate -- \
    "$BASELINE" "$CURRENT"
