//! Real-time run monitoring (§5.3).
//!
//! "Retina does provide logs and real-time monitoring of packet loss,
//! throughput, and memory usage that can be used as feedback to adjust
//! the filter or improve callback efficiency." This module implements
//! that feedback loop: [`Monitor`] samples the NIC counters and runtime
//! gauges on an interval and hands each [`MonitorSample`] to a sink
//! (a logger, a CSV writer, an adaptive controller…).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use retina_nic::{PortStatsSnapshot, VirtualNic};

use crate::runtime::RuntimeGauges;

/// One monitoring sample.
#[derive(Debug, Clone, Copy)]
pub struct MonitorSample {
    /// Wall-clock time since monitoring started.
    pub elapsed: Duration,
    /// Delivered throughput since the previous sample (Gbps).
    pub gbps: f64,
    /// Packets lost (ring overflow + mempool exhaustion) since the
    /// previous sample.
    pub lost: u64,
    /// Packets dropped by hardware rules since the previous sample.
    pub hw_dropped: u64,
    /// Connections currently tracked across all cores.
    pub connections: usize,
    /// Estimated connection-state bytes across all cores.
    pub state_bytes: usize,
    /// Packet buffers currently held in the mempool.
    pub mbufs_in_use: usize,
    /// Simulation clock high-water mark (ns).
    pub sim_clock_ns: u64,
}

impl MonitorSample {
    /// Renders the sample as a single human-readable log line.
    pub fn to_log_line(&self) -> String {
        format!(
            "[{:>8.1}s] {:>7.2} Gbps | lost {:>6} | hw-drop {:>8} | conns {:>8} ({} KB) | mbufs {:>7}",
            self.elapsed.as_secs_f64(),
            self.gbps,
            self.lost,
            self.hw_dropped,
            self.connections,
            self.state_bytes / 1024,
            self.mbufs_in_use,
        )
    }
}

/// A periodic sampler over a running [`crate::Runtime`]'s NIC and gauges.
pub struct Monitor {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<Vec<MonitorSample>>>,
}

impl Monitor {
    /// Starts sampling every `interval`, feeding each sample to `sink`.
    /// All samples are also collected and returned by [`Monitor::stop`].
    pub fn start(
        nic: Arc<VirtualNic>,
        gauges: Arc<RuntimeGauges>,
        interval: Duration,
        mut sink: impl FnMut(&MonitorSample) + Send + 'static,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let start = Instant::now();
            let mut samples = Vec::new();
            let mut prev: PortStatsSnapshot = nic.stats();
            let mut prev_t = start;
            while !stop2.load(Ordering::Acquire) {
                std::thread::sleep(interval);
                let now = Instant::now();
                let stats = nic.stats();
                let dt = now.duration_since(prev_t).as_secs_f64().max(1e-9);
                let sample = MonitorSample {
                    elapsed: now.duration_since(start),
                    gbps: ((stats.rx_bytes - prev.rx_bytes) as f64 * 8.0) / dt / 1e9,
                    lost: stats.lost() - prev.lost(),
                    hw_dropped: stats.hw_dropped - prev.hw_dropped,
                    connections: gauges
                        .connections
                        .iter()
                        .map(|c| c.load(Ordering::Relaxed))
                        .sum(),
                    state_bytes: gauges
                        .state_bytes
                        .iter()
                        .map(|c| c.load(Ordering::Relaxed))
                        .sum(),
                    mbufs_in_use: nic.mempool().in_use(),
                    sim_clock_ns: gauges.sim_clock_ns.load(Ordering::Relaxed),
                };
                sink(&sample);
                samples.push(sample);
                prev = stats;
                prev_t = now;
            }
            samples
        });
        Monitor {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the monitor and returns every collected sample.
    pub fn stop(mut self) -> Vec<MonitorSample> {
        self.stop.store(true, Ordering::Release);
        self.handle
            .take()
            .map(|h| h.join().unwrap_or_default())
            .unwrap_or_default()
    }
}

impl Drop for Monitor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_log_line_formats() {
        let s = MonitorSample {
            elapsed: Duration::from_secs(5),
            gbps: 42.5,
            lost: 0,
            hw_dropped: 100,
            connections: 1234,
            state_bytes: 64 * 1024,
            mbufs_in_use: 77,
            sim_clock_ns: 1,
        };
        let line = s.to_log_line();
        assert!(line.contains("42.50 Gbps"));
        assert!(line.contains("conns     1234 (64 KB)"));
    }
}
