//! TLS handshake message builders.
//!
//! Used by the synthetic traffic generator to emit realistic handshakes,
//! and by the parser tests as round-trip vectors.

// Narrowing casts in this file are intentional: wire formats pack values into fixed-width header fields.
#![allow(clippy::cast_possible_truncation)]

/// Parameters for a synthesized ClientHello.
#[derive(Debug, Clone)]
pub struct ClientHelloSpec {
    /// SNI to embed (none omits the extension).
    pub sni: Option<String>,
    /// Offered ciphersuites.
    pub ciphers: Vec<u16>,
    /// The 32-byte client random.
    pub random: [u8; 32],
    /// Legacy client version (0x0303 for TLS 1.2+).
    pub version: u16,
    /// First ALPN protocol to offer (none omits the extension).
    pub alpn: Option<String>,
}

/// Parameters for a synthesized ServerHello.
#[derive(Debug, Clone)]
pub struct ServerHelloSpec {
    /// Selected ciphersuite.
    pub cipher: u16,
    /// The 32-byte server random.
    pub random: [u8; 32],
    /// Legacy version field.
    pub version: u16,
    /// `supported_versions` extension value (present for TLS 1.3).
    pub supported_version: Option<u16>,
    /// Selected ALPN protocol.
    pub alpn: Option<String>,
}

fn record(content_type: u8, version: u16, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + body.len());
    out.push(content_type);
    out.extend_from_slice(&version.to_be_bytes());
    out.extend_from_slice(&(body.len() as u16).to_be_bytes());
    out.extend_from_slice(body);
    out
}

fn handshake_msg(msg_type: u8, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + body.len());
    out.push(msg_type);
    let len = body.len() as u32;
    out.push((len >> 16) as u8);
    out.push((len >> 8) as u8);
    out.push(len as u8);
    out.extend_from_slice(body);
    out
}

fn extension(ext_type: u16, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + data.len());
    out.extend_from_slice(&ext_type.to_be_bytes());
    out.extend_from_slice(&(data.len() as u16).to_be_bytes());
    out.extend_from_slice(data);
    out
}

/// Builds a complete ClientHello record.
pub fn client_hello_record(spec: &ClientHelloSpec) -> Vec<u8> {
    let mut body = Vec::new();
    body.extend_from_slice(&spec.version.to_be_bytes());
    body.extend_from_slice(&spec.random);
    body.push(0); // empty session id
    body.extend_from_slice(&((spec.ciphers.len() * 2) as u16).to_be_bytes());
    for c in &spec.ciphers {
        body.extend_from_slice(&c.to_be_bytes());
    }
    body.extend_from_slice(&[1, 0]); // compression: null only

    let mut exts = Vec::new();
    if let Some(sni) = &spec.sni {
        let name = sni.as_bytes();
        let mut data = Vec::new();
        data.extend_from_slice(&((name.len() + 3) as u16).to_be_bytes());
        data.push(0); // hostname type
        data.extend_from_slice(&(name.len() as u16).to_be_bytes());
        data.extend_from_slice(name);
        exts.extend_from_slice(&extension(0, &data));
    }
    if let Some(alpn) = &spec.alpn {
        let p = alpn.as_bytes();
        let mut data = Vec::new();
        data.extend_from_slice(&((p.len() + 1) as u16).to_be_bytes());
        data.push(p.len() as u8);
        data.extend_from_slice(p);
        exts.extend_from_slice(&extension(16, &data));
    }
    body.extend_from_slice(&(exts.len() as u16).to_be_bytes());
    body.extend_from_slice(&exts);

    record(22, 0x0301, &handshake_msg(1, &body))
}

/// Builds a complete ServerHello record.
pub fn server_hello_record(spec: &ServerHelloSpec) -> Vec<u8> {
    let mut body = Vec::new();
    body.extend_from_slice(&spec.version.to_be_bytes());
    body.extend_from_slice(&spec.random);
    body.push(0); // empty session id
    body.extend_from_slice(&spec.cipher.to_be_bytes());
    body.push(0); // null compression

    let mut exts = Vec::new();
    if let Some(v) = spec.supported_version {
        exts.extend_from_slice(&extension(43, &v.to_be_bytes()));
    }
    if let Some(alpn) = &spec.alpn {
        let p = alpn.as_bytes();
        let mut data = Vec::new();
        data.extend_from_slice(&((p.len() + 1) as u16).to_be_bytes());
        data.push(p.len() as u8);
        data.extend_from_slice(p);
        exts.extend_from_slice(&extension(16, &data));
    }
    body.extend_from_slice(&(exts.len() as u16).to_be_bytes());
    body.extend_from_slice(&exts);

    record(22, 0x0303, &handshake_msg(2, &body))
}

/// Builds a Certificate record with `total_len` bytes of placeholder DER
/// data (size-realistic, content-free).
pub fn certificate_record(total_len: usize) -> Vec<u8> {
    let body = vec![0xAAu8; total_len];
    record(22, 0x0303, &handshake_msg(11, &body))
}

/// Builds a ChangeCipherSpec record.
pub fn ccs_record() -> Vec<u8> {
    record(20, 0x0303, &[1])
}

/// Builds an application-data record of `len` opaque bytes.
pub fn appdata_record(len: usize) -> Vec<u8> {
    let body = vec![0x5Au8; len];
    record(23, 0x0303, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_framing() {
        let ch = client_hello_record(&ClientHelloSpec {
            sni: Some("a.example".into()),
            ciphers: vec![0x1301],
            random: [0u8; 32],
            version: 0x0303,
            alpn: None,
        });
        assert_eq!(ch[0], 22);
        let len = usize::from(u16::from_be_bytes([ch[3], ch[4]]));
        assert_eq!(ch.len(), 5 + len);
        assert_eq!(ch[5], 1); // ClientHello
    }

    #[test]
    fn appdata_and_ccs() {
        assert_eq!(ccs_record(), vec![20, 3, 3, 0, 1, 1]);
        let ad = appdata_record(100);
        assert_eq!(ad.len(), 105);
        assert_eq!(ad[0], 23);
    }

    #[test]
    fn certificate_sizes() {
        let cert = certificate_record(3000);
        assert_eq!(cert.len(), 5 + 4 + 3000);
        assert_eq!(cert[5], 11);
    }
}
