//! Property tests for the multicore dispatch layer, run entirely under
//! the virtual-time stepped executor so every case is schedule-exact
//! and replayable from its seeds.
//!
//! Two properties from the dispatch tentpole:
//!
//! 1. **Equivalence** — for random subscription mixes (filters ×
//!    inline/shared/dedicated modes × boundary-biased ring depths) over
//!    boundary-biased traffic, every lossless dispatched run delivers
//!    byte-identical per-subscription results to the all-inline run,
//!    under arbitrary seeded RX/worker interleavings.
//! 2. **Accounting** — under full-queue backpressure (a stalled worker
//!    over depth-1..4 rings, blocking or shedding), the per-sub ledger
//!    `delivered = executed + dropped_full + dropped_disconnected`
//!    stays exact, the digest (which excludes schedule-dependent drops)
//!    matches inline, and the lossless sibling is untouched.

use std::net::SocketAddr;
use std::sync::{Arc, Mutex};

use retina_core::subscribables::ConnRecord;
use retina_core::{
    DispatchMode, RunReport, RuntimeBuilder, RuntimeConfig, StepConfig, WorkerStall,
};
use retina_support::bytes::Bytes;
use retina_support::proptest::prelude::*;
use retina_trafficgen::flows::{tls_flow, TlsFlowSpec};
use retina_trafficgen::rng::Sampler;

/// Filters used by the random mixes. The workload is all TLS-over-443,
/// so the first three all match it at different tiers and `udp`
/// matches nothing (exercising the empty-delivery path in a union).
const FILTERS: [&str; 4] = ["tls", "ipv4 and tcp", "tcp.port = 443", "udp"];

/// A boundary-biased workload: `conns` TLS conversations whose payload
/// sizes sit on segment boundaries (0, 1, MSS-1, MSS, MSS+1 bytes),
/// with out-of-order and abandoned flows mixed in. Connection counts
/// are chosen by the strategies to straddle ring-depth boundaries.
fn workload(seed: u64, conns: usize) -> Vec<(Bytes, u64)> {
    let mut sampler = Sampler::new(seed);
    let server: SocketAddr = "192.168.7.1:443".parse().unwrap();
    let mut all = Vec::new();
    for c in 0..conns {
        let client: SocketAddr = format!("10.1.{}.{}:{}", c / 250, (c % 250) + 1, 10_000 + c)
            .parse()
            .unwrap();
        let spec = TlsFlowSpec {
            client,
            server,
            sni: format!("host{c}.example.com"),
            start_ts: c as u64 * 1_000_000,
            bytes_up: [0, 1, 1459, 1461][c % 4],
            bytes_down: [0, 1, 1460, 4096][c % 4],
            client_random: [u8::try_from(c % 256).unwrap(); 32],
            cipher: 0x1301,
            ooo: c % 3 == 0,
            graceful: c % 5 != 0,
        };
        all.extend(tls_flow(&spec, &mut sampler));
    }
    all.sort_by_key(|&(_, ts)| ts);
    all
}

/// Runs a subscription mix under the stepped executor and returns the
/// per-subscription sorted record multisets plus the finished report.
fn run_mix(
    packets: &[(Bytes, u64)],
    mix: &[(usize, DispatchMode)],
    cfg: &StepConfig,
) -> (Vec<Vec<String>>, RunReport) {
    let outs: Vec<Arc<Mutex<Vec<String>>>> = mix.iter().map(|_| Arc::default()).collect();
    let mut b = RuntimeBuilder::new(RuntimeConfig::default());
    for (i, (filter, mode)) in mix.iter().enumerate() {
        let o = Arc::clone(&outs[i]);
        b = b.subscribe_dispatched::<ConnRecord>(
            format!("s{i}"),
            FILTERS[*filter],
            *mode,
            move |c| {
                o.lock().unwrap().push(format!("{c:?}"));
            },
        );
    }
    let rt = b.build().expect("mix builds");
    let report = rt.run_stepped(packets, cfg);
    report.check_accounting().expect("accounting exact");
    let sets = outs
        .iter()
        .map(|o| {
            let mut v = o.lock().unwrap().clone();
            v.sort();
            v
        })
        .collect();
    (sets, report)
}

/// Boundary-biased ring depths: the degenerate single-slot ring, the
/// smallest ring that can hold a burst, and a comfortable one.
fn depths() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(2), Just(3), Just(8)]
}

/// Connection counts straddling the ring-depth boundaries above.
fn conn_counts() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(1usize),
        Just(2),
        Just(3),
        Just(7),
        Just(8),
        Just(9),
        4usize..16,
    ]
}

fn mode_from(kind: u8, depth: usize) -> DispatchMode {
    match kind % 3 {
        0 => DispatchMode::Inline,
        1 => DispatchMode::shared(depth),
        _ => DispatchMode::dedicated(depth),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Lossless dispatch is invisible to results: any mix of inline /
    /// shared / dedicated (blocking) subscriptions over boundary-biased
    /// traffic delivers exactly what the all-inline run delivers, per
    /// subscription, for any seeded schedule.
    #[test]
    fn random_mixes_match_inline(
        wl_seed in any::<u64>(),
        sched_seed in any::<u64>(),
        conns in conn_counts(),
        mix in collection::vec((0usize..4, 0u8..3, depths()), 1..5),
    ) {
        let packets = workload(wl_seed, conns);
        let inline_mix: Vec<_> = mix.iter().map(|&(f, ..)| (f, DispatchMode::Inline)).collect();
        let disp_mix: Vec<_> = mix
            .iter()
            .map(|&(f, kind, depth)| (f, mode_from(kind, depth)))
            .collect();
        let (base_sets, base_report) = run_mix(&packets, &inline_mix, &StepConfig::seeded(0));
        let (sets, report) = run_mix(&packets, &disp_mix, &StepConfig::seeded(sched_seed));
        prop_assert_eq!(
            report.deterministic_digest(),
            base_report.deterministic_digest()
        );
        for (i, (set, base)) in sets.iter().zip(&base_sets).enumerate() {
            prop_assert_eq!(set, base, "sub {} diverged under {:?}", i, disp_mix[i].1);
        }
        // Lossless modes must never shed.
        for sub in &report.subs {
            prop_assert_eq!(sub.cb_dropped_full, 0, "{}", sub.name);
            prop_assert_eq!(sub.cb_executed, sub.delivered, "{}", sub.name);
        }
    }

    /// Backpressure keeps the ledger exact: a worker stalled over a
    /// tiny ring either parks the RX step (blocking: nothing lost) or
    /// sheds with every drop counted, while the lossless sibling
    /// subscription is byte-identical to its inline run either way.
    #[test]
    fn accounting_exact_under_backpressure(
        wl_seed in any::<u64>(),
        sched_seed in any::<u64>(),
        conns in conn_counts(),
        depth in 1usize..4,
        shed in any::<bool>(),
        from_step in 0u64..64,
        stall_steps in 1u64..2_000,
    ) {
        let packets = workload(wl_seed, conns);
        let heavy = if shed {
            DispatchMode::dedicated(depth).shedding()
        } else {
            DispatchMode::dedicated(depth)
        };
        let mix = [(1usize, heavy), (0usize, DispatchMode::shared(8))];
        let inline_mix = [(1usize, DispatchMode::Inline), (0usize, DispatchMode::Inline)];
        let (base_sets, base_report) = run_mix(&packets, &inline_mix, &StepConfig::seeded(0));
        let cfg = StepConfig::seeded(sched_seed).with_stall(WorkerStall {
            sub: 0,
            from_step,
            steps: stall_steps,
        });
        let (sets, report) = run_mix(&packets, &mix, &cfg);

        // The digest counts delivery outcomes, not schedule-dependent
        // drops, so it matches inline even when the ring sheds.
        prop_assert_eq!(
            report.deterministic_digest(),
            base_report.deterministic_digest()
        );
        let heavy_rep = &report.subs[0];
        prop_assert_eq!(
            heavy_rep.delivered,
            heavy_rep.cb_executed + heavy_rep.cb_dropped_full + heavy_rep.cb_dropped_disconnected,
        );
        if !shed {
            // Blocking policy: the stall parks RX, it never loses.
            prop_assert_eq!(heavy_rep.cb_dropped_full, 0);
            prop_assert_eq!(&sets[0], &base_sets[0], "blocking run lost records");
        }
        // The lossless sibling is untouched by its neighbor's stall.
        let light = &report.subs[1];
        prop_assert_eq!(light.cb_dropped_full, 0);
        prop_assert_eq!(light.cb_executed, light.delivered);
        prop_assert_eq!(&sets[1], &base_sets[1], "sibling records diverged");
    }
}

/// Same seeds, same run: the stepped executor's schedule is a pure
/// function of its configuration, so a failing property case above
/// replays bit-for-bit from the seeds proptest prints.
#[test]
fn stepped_runs_replay_from_seeds() {
    let packets = workload(7, 9);
    let mix = [
        (0usize, DispatchMode::dedicated(2)),
        (1usize, DispatchMode::shared(1)),
    ];
    let cfg = StepConfig::seeded(0xD15B);
    let (a_sets, a) = run_mix(&packets, &mix, &cfg);
    let (b_sets, b) = run_mix(&packets, &mix, &cfg);
    assert!(
        a_sets.iter().all(|s| !s.is_empty()),
        "both subscriptions must deliver"
    );
    assert_eq!(a.deterministic_digest(), b.deterministic_digest());
    assert_eq!(a_sets, b_sets);
}
