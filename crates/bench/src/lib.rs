//! Shared benchmark harness: zero-loss throughput search, timing, and
//! table/CDF formatting.
//!
//! Every `fig*`/`table*` binary in `src/bin/` regenerates one table or
//! figure from the paper's evaluation; EXPERIMENTS.md maps each to its
//! paper counterpart and records measured-vs-paper results. Binaries
//! accept `--quick` for a reduced run and `--packets N` to scale the
//! workload.

// Narrowing casts in this file are intentional: test and bench harnesses narrow seeded draws and counter math to compact fields.
#![allow(clippy::cast_possible_truncation)]

use std::time::Instant;

use retina_core::{FilterFns, RunReport, Runtime, RuntimeConfig, Subscribable};
use retina_support::bytes::Bytes;
use retina_trafficgen::PreloadedSource;

pub mod ci;

/// CLI options shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Scale factor for workload sizes.
    pub packets: usize,
    /// Reduced run for smoke-testing.
    pub quick: bool,
    /// Where to merge this binary's CI metrics (see [`ci`]), if anywhere.
    pub json_out: Option<String>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            packets: 400_000,
            quick: false,
            json_out: None,
        }
    }
}

/// Parses `--quick`, `--packets N`, and `--json-out PATH`.
pub fn bench_args() -> BenchArgs {
    let mut args = BenchArgs::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => {
                args.quick = true;
                args.packets = args.packets.min(80_000);
            }
            "--packets" => {
                if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                    args.packets = v;
                }
            }
            "--json-out" => {
                args.json_out = it.next();
            }
            other => eprintln!("ignoring unknown flag {other}"),
        }
    }
    args
}

/// Runs a subscription over a preloaded source once (unpaced ingest, so
/// losses are observable) and returns the report.
pub fn run_once<S, F>(
    filter_factory: impl Fn() -> F,
    cores: u16,
    source: &PreloadedSource,
    sink_fraction: f64,
    callback: impl Fn(S) + Send + Sync + Clone + 'static,
) -> RunReport
where
    S: Subscribable,
    F: FilterFns + 'static,
{
    let mut config = RuntimeConfig::with_cores(cores);
    config.paced_ingest = false;
    config.device.ring_capacity = 8192;
    let mut runtime =
        Runtime::<S, F>::new(config, filter_factory(), callback).expect("runtime construction");
    runtime.nic().set_sink_fraction(sink_fraction);
    let mut src = source.clone();
    src.rewind();
    runtime.run(src)
}

/// The §6.1 methodology: adjust the fraction of flows sunk at the NIC
/// until the largest zero-loss configuration is found; report that run.
/// Returns `(report, sink_fraction)`.
///
/// The search walks sink fractions *downward* (heaviest sampling first):
/// heavily-sampled runs are cheap even for expensive callbacks, so the
/// expensive lossy configurations are probed last and abandoned at the
/// first loss.
pub fn max_zero_loss_run<S, F>(
    filter_factory: impl Fn() -> F + Copy,
    cores: u16,
    source: &PreloadedSource,
    callback: impl Fn(S) + Send + Sync + Clone + 'static,
) -> (RunReport, f64)
where
    S: Subscribable,
    F: FilterFns + 'static,
{
    let mut best: Option<(RunReport, f64)> = None;
    for &sink in &[0.98, 0.96, 0.92, 0.85, 0.75, 0.6, 0.4, 0.2, 0.0] {
        let report = run_once::<S, F>(filter_factory, cores, source, sink, callback.clone());
        if report.zero_loss() {
            best = Some((report, sink));
        } else {
            break;
        }
    }
    match best {
        Some(found) => found,
        None => {
            // Even 98% sampling lost packets: report a 99% run as-is.
            let report = run_once::<S, F>(filter_factory, cores, source, 0.99, callback);
            (report, 0.99)
        }
    }
}

/// Times a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Gbps for a byte count over a duration.
pub fn gbps(bytes: u64, secs: f64) -> f64 {
    (bytes as f64 * 8.0) / secs.max(1e-9) / 1e9
}

/// Total wire bytes of a packet stream.
pub fn stream_bytes(packets: &[(Bytes, u64)]) -> u64 {
    packets.iter().map(|(f, _)| f.len() as u64).sum()
}

/// Prints a row of dashes under a header.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Computes CDF points (value at each percentile in `pcts`) of a sample.
pub fn percentiles(mut values: Vec<f64>, pcts: &[f64]) -> Vec<(f64, f64)> {
    if values.is_empty() {
        return Vec::new();
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    pcts.iter()
        .map(|&p| {
            let idx = ((p / 100.0) * (values.len() - 1) as f64).round() as usize;
            (p, values[idx.min(values.len() - 1)])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_math() {
        let vals: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let pts = percentiles(vals, &[0.0, 50.0, 100.0]);
        assert_eq!(pts[0].1, 1.0);
        assert_eq!(pts[1].1, 51.0);
        assert_eq!(pts[2].1, 100.0);
        assert!(percentiles(vec![], &[50.0]).is_empty());
    }

    #[test]
    fn gbps_math() {
        assert!((gbps(125_000_000, 1.0) - 1.0).abs() < 1e-9);
    }
}
