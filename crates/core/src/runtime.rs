//! The multi-core runtime (Figure 2's run-time half).
//!
//! [`Runtime::run`] spawns one ingest thread (the "wire") and one worker
//! thread per configured core. The ingest thread pushes frames from a
//! [`TrafficSource`] into the virtual NIC, which applies hardware flow
//! rules and symmetric RSS; each worker polls its own RX queue and runs
//! the per-core pipeline — packet filter, connection tracker, callback —
//! with no cross-core communication (§5.1).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use retina_support::bytes::Bytes;
use retina_filter::{CompiledFilter, FilterFns, FilterResult};
use retina_nic::{PortStatsSnapshot, VirtualNic};
use retina_wire::ParsedPacket;

use crate::config::RuntimeConfig;
use crate::executor::{spawn_executor, CallbackMode, CallbackSink};
use crate::stats::CoreStats;
use crate::subscription::{Level, Subscribable};
use crate::tracker::ConnTracker;
use crate::util::rdtsc;

/// A source of timestamped frames for the virtual NIC (the "wire").
///
/// Implemented by the synthetic traffic generators in `retina-trafficgen`
/// and by pcap readers.
pub trait TrafficSource: Send {
    /// Fills `out` with the next batch of (frame, timestamp-ns) pairs.
    /// Returns `false` when the source is exhausted.
    fn next_batch(&mut self, out: &mut Vec<(Bytes, u64)>) -> bool;
}

/// Live gauges the runtime updates while running (read them from a
/// monitoring thread, e.g. for the Figure 8 memory series).
#[derive(Debug, Default)]
pub struct RuntimeGauges {
    /// Connections currently tracked, per core.
    pub connections: Vec<AtomicUsize>,
    /// Estimated connection-state bytes, per core.
    pub state_bytes: Vec<AtomicUsize>,
    /// Maximum packet timestamp processed so far (simulation clock, ns).
    pub sim_clock_ns: AtomicU64,
}

/// Errors from runtime construction.
#[derive(Debug)]
pub enum RuntimeError {
    /// The filter's hardware rules were rejected by the device.
    HwFilter(String),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::HwFilter(msg) => write!(f, "hardware filter installation: {msg}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Result of a completed run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Wall-clock processing time.
    pub elapsed: Duration,
    /// NIC counters (offered/delivered/dropped/lost).
    pub nic: PortStatsSnapshot,
    /// Merged per-core pipeline statistics.
    pub cores: CoreStats,
    /// Simulated time span covered by the traffic (ns).
    pub sim_duration_ns: u64,
}

impl RunReport {
    /// Delivered throughput in Gbps over wall-clock time.
    pub fn gbps(&self) -> f64 {
        (self.nic.rx_bytes as f64 * 8.0) / self.elapsed.as_secs_f64() / 1e9
    }

    /// Offered load in Gbps over wall-clock time (counting hardware drops
    /// and sink-sampled traffic as offered).
    pub fn offered_gbps(&self) -> f64 {
        // Approximate offered bytes by scaling delivered bytes by the
        // offered/delivered packet ratio.
        if self.nic.rx_delivered == 0 {
            return 0.0;
        }
        let scale = self.nic.rx_offered as f64 / self.nic.rx_delivered as f64;
        self.gbps() * scale
    }

    /// True when no packets were lost to ring overflow or mempool
    /// exhaustion — the paper's zero-loss criterion.
    pub fn zero_loss(&self) -> bool {
        self.nic.lost() == 0
    }
}

/// The Retina runtime: a subscription bound to a virtual NIC and worker
/// cores.
pub struct Runtime<S: Subscribable, F: FilterFns + 'static> {
    config: RuntimeConfig,
    filter: Arc<F>,
    callback: Arc<dyn Fn(S) + Send + Sync>,
    nic: Arc<VirtualNic>,
    gauges: Arc<RuntimeGauges>,
}

impl<S: Subscribable, F: FilterFns + 'static> Runtime<S, F> {
    /// Creates a runtime from a configuration, filter, and callback
    /// (Figure 1's `Runtime::new(cfg, filter, callback)`).
    pub fn new(
        config: RuntimeConfig,
        filter: F,
        callback: impl Fn(S) + Send + Sync + 'static,
    ) -> Result<Self, RuntimeError> {
        let mut device = config.device.clone();
        device.num_queues = config.cores;
        let nic = Arc::new(VirtualNic::new(&device));
        if config.hw_filtering {
            // Re-derive the trie from the filter source and synthesize
            // device-compatible rules (§4.1). Works identically for
            // interpreted and macro-generated filters.
            let compiled = CompiledFilter::build(filter.source(), &config.filter_registry)
                .map_err(|e| RuntimeError::HwFilter(e.to_string()))?;
            for rule in compiled.hw_rules(device.caps) {
                nic.install_rule(rule)
                    .map_err(|e| RuntimeError::HwFilter(e.to_string()))?;
            }
        }
        let gauges = Arc::new(RuntimeGauges {
            connections: (0..config.cores).map(|_| AtomicUsize::new(0)).collect(),
            state_bytes: (0..config.cores).map(|_| AtomicUsize::new(0)).collect(),
            sim_clock_ns: AtomicU64::new(0),
        });
        Ok(Runtime {
            config,
            filter: Arc::new(filter),
            callback: Arc::new(callback),
            nic,
            gauges,
        })
    }

    /// The virtual NIC (for sink-fraction control and port stats).
    pub fn nic(&self) -> &Arc<VirtualNic> {
        &self.nic
    }

    /// Live gauges for external monitoring.
    pub fn gauges(&self) -> Arc<RuntimeGauges> {
        Arc::clone(&self.gauges)
    }

    /// Runs the pipeline over a traffic source to completion, returning
    /// aggregate statistics.
    pub fn run(&mut self, source: impl TrafficSource + 'static) -> RunReport {
        let ingest_done = Arc::new(AtomicBool::new(false));
        let start = Instant::now();

        // Ingest thread: the wire feeding the NIC.
        let ingest = {
            let nic = Arc::clone(&self.nic);
            let done = Arc::clone(&ingest_done);
            let paced = self.config.paced_ingest;
            let mut source = source;
            std::thread::spawn(move || {
                let mut batch: Vec<(Bytes, u64)> = Vec::with_capacity(512);
                let mut max_ts = 0u64;
                loop {
                    batch.clear();
                    if !source.next_batch(&mut batch) {
                        break;
                    }
                    for (frame, ts) in batch.drain(..) {
                        max_ts = max_ts.max(ts);
                        if paced {
                            nic.ingest_paced(frame, ts);
                        } else {
                            nic.ingest(frame, ts);
                        }
                    }
                }
                done.store(true, Ordering::Release);
                max_ts
            })
        };

        // Callback execution model (§5.3): inline on the worker, or a
        // dedicated executor thread fed over a bounded channel.
        let (sink, executor) = match self.config.callback_mode {
            CallbackMode::Inline => (CallbackSink::Inline(Arc::clone(&self.callback)), None),
            CallbackMode::Queued { depth } => {
                let (tx, handle) = spawn_executor(depth, Arc::clone(&self.callback));
                (CallbackSink::Queued(tx), Some(handle))
            }
        };

        // Worker threads: one per core.
        let mut workers = Vec::new();
        for core in 0..self.config.cores {
            let nic = Arc::clone(&self.nic);
            let filter = Arc::clone(&self.filter);
            let sink = sink.clone();
            let done = Arc::clone(&ingest_done);
            let gauges = Arc::clone(&self.gauges);
            let config = self.config.clone();
            workers.push(std::thread::spawn(move || {
                worker_loop::<S, F>(core, &nic, &filter, &sink, &done, &gauges, &config)
            }));
        }
        drop(sink);

        let sim_duration_ns = ingest.join().expect("ingest thread panicked");
        let mut cores = CoreStats::default();
        for w in workers {
            let stats = w.join().expect("worker thread panicked");
            cores.merge(&stats);
        }
        if let Some(handle) = executor {
            // All worker-held senders are dropped: the executor drains its
            // queue and exits.
            let _ = handle.join().expect("executor thread panicked");
        }
        RunReport {
            elapsed: start.elapsed(),
            nic: self.nic.stats(),
            cores,
            sim_duration_ns,
        }
    }
}

fn worker_loop<S: Subscribable, F: FilterFns>(
    core: u16,
    nic: &VirtualNic,
    filter: &Arc<F>,
    callback: &CallbackSink<S>,
    ingest_done: &AtomicBool,
    gauges: &RuntimeGauges,
    config: &RuntimeConfig,
) -> CoreStats {
    let mut tracker: ConnTracker<S, F> = ConnTracker::with_registry(
        Arc::clone(filter),
        config.timeouts,
        config.ooo_capacity,
        config.profile_stages,
        config.parsers.clone(),
    );
    let mut burst = Vec::with_capacity(config.burst);
    let mut max_ts = 0u64;
    let mut since_advance = 0usize;
    let profile = config.profile_stages;

    loop {
        burst.clear();
        let n = nic.rx_burst(core, &mut burst, config.burst);
        if n == 0 {
            if ingest_done.load(Ordering::Acquire) {
                // One final poll to drain racing deliveries.
                if nic.rx_burst(core, &mut burst, config.burst) == 0 {
                    break;
                }
            } else {
                // On busy hosts (or single-CPU machines) yielding lets the
                // ingest thread and sibling workers make progress.
                std::thread::yield_now();
                continue;
            }
        }
        for mbuf in burst.drain(..) {
            tracker.stats.rx_packets += 1;
            tracker.stats.rx_bytes += mbuf.len() as u64;
            max_ts = max_ts.max(mbuf.timestamp_ns);

            let Ok(pkt) = ParsedPacket::parse(mbuf.data()) else {
                tracker.stats.parse_failures += 1;
                continue;
            };

            // Software packet filter (§4.1) — inlined per-packet.
            let tf = profile.then(rdtsc);
            let result = filter.packet_filter(&pkt);
            tracker.stats.packet_filter.runs += 1;
            if let Some(t) = tf {
                tracker.stats.packet_filter.cycles += rdtsc().wrapping_sub(t);
            }
            match result {
                FilterResult::NoMatch => continue,
                FilterResult::MatchTerminal(_) if S::level() == Level::Packet => {
                    // Bypass: callback straight off the packet filter.
                    if let Some(data) = S::from_mbuf(&mbuf) {
                        let tc = profile.then(rdtsc);
                        tracker.stats.callbacks.runs += 1;
                        callback.deliver(data);
                        if let Some(t) = tc {
                            tracker.stats.callbacks.cycles += rdtsc().wrapping_sub(t);
                        }
                    }
                    continue;
                }
                _ => {}
            }
            tracker.process(&mbuf, &pkt, result);
            for data in tracker.take_outputs() {
                tracker.stats.callbacks.runs += 1;
                let tc = profile.then(rdtsc);
                callback.deliver(data);
                if let Some(t) = tc {
                    tracker.stats.callbacks.cycles += rdtsc().wrapping_sub(t);
                }
            }
        }
        since_advance += 1;
        if since_advance >= 64 {
            since_advance = 0;
            tracker.advance(max_ts);
            for data in tracker.take_outputs() {
                tracker.stats.callbacks.runs += 1;
                callback.deliver(data);
            }
            gauges.connections[core as usize].store(tracker.connections(), Ordering::Relaxed);
            gauges.state_bytes[core as usize].store(tracker.state_bytes(), Ordering::Relaxed);
            gauges.sim_clock_ns.fetch_max(max_ts, Ordering::Relaxed);
        }
    }

    // Drain still-open connections at end of input.
    tracker.drain();
    for data in tracker.take_outputs() {
        tracker.stats.callbacks.runs += 1;
        callback.deliver(data);
    }
    gauges.connections[core as usize].store(0, Ordering::Relaxed);
    tracker.stats
}
