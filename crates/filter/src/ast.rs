//! Abstract syntax for filter expressions (Table 1 of the paper).

use core::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// A half-open byte range `start..end` into the filter source text.
///
/// Spans are carried *alongside* the AST (see [`SpanMap`]) rather than inside
/// [`Predicate`] so that structural equality — which the trie builder relies
/// on for deduplication — is unaffected by where a predicate was written.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character (exclusive).
    pub end: usize,
}

impl Span {
    /// Builds a span from start/end byte offsets.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// A zero-width span at a byte offset (used for plain positions).
    pub fn point(pos: usize) -> Self {
        Span {
            start: pos,
            end: pos + 1,
        }
    }
}

/// Side table mapping predicates to the source span where they were first
/// written. Lookup is by structural equality: if the same predicate text
/// appears twice, the first occurrence's span is reported.
#[derive(Debug, Clone, Default)]
pub struct SpanMap {
    entries: Vec<(Predicate, Span)>,
}

impl SpanMap {
    /// Records a predicate span (first occurrence wins).
    pub fn insert(&mut self, pred: Predicate, span: Span) {
        if !self.entries.iter().any(|(p, _)| *p == pred) {
            self.entries.push((pred, span));
        }
    }

    /// Looks up the span for a structurally equal predicate.
    pub fn get(&self, pred: &Predicate) -> Option<Span> {
        self.entries
            .iter()
            .find(|(p, _)| p == pred)
            .map(|(_, s)| *s)
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A right-hand-side constant in a binary predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Unsigned integer literal.
    Int(u64),
    /// Inclusive integer range `lo..hi` (used with `in`).
    IntRange(u64, u64),
    /// Single-quoted string literal.
    Str(String),
    /// IPv4 address or CIDR network.
    Ipv4Net(Ipv4Addr, u8),
    /// IPv6 address or CIDR network.
    Ipv6Net(Ipv6Addr, u8),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::IntRange(lo, hi) => write!(f, "{lo}..{hi}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Ipv4Net(a, p) => write!(f, "{a}/{p}"),
            Value::Ipv6Net(a, p) => write!(f, "{a}/{p}"),
        }
    }
}

/// Comparison operator in a binary predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `in` — membership in an integer range or CIDR network.
    In,
    /// `matches` / `~` — regular-expression match on a string field.
    Matches,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::Eq => "=",
            Op::Ne => "!=",
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
            Op::In => "in",
            Op::Matches => "matches",
        };
        f.write_str(s)
    }
}

/// An atomic predicate: either a unary protocol test (`tcp`) or a binary
/// field comparison (`tcp.port >= 100`).
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Matches when the entity *is* this protocol.
    Unary {
        /// Protocol name as written in the filter.
        protocol: String,
    },
    /// Compares a protocol field against a constant.
    Binary {
        /// Protocol name.
        protocol: String,
        /// Field name within the protocol.
        field: String,
        /// Comparison operator.
        op: Op,
        /// Right-hand-side constant.
        value: Value,
    },
}

impl Predicate {
    /// The protocol this predicate constrains.
    pub fn protocol(&self) -> &str {
        match self {
            Predicate::Unary { protocol } | Predicate::Binary { protocol, .. } => protocol,
        }
    }

    /// Returns true for unary (protocol-identity) predicates.
    pub fn is_unary(&self) -> bool {
        matches!(self, Predicate::Unary { .. })
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Unary { protocol } => f.write_str(protocol),
            Predicate::Binary {
                protocol,
                field,
                op,
                value,
            } => write!(f, "{protocol}.{field} {op} {value}"),
        }
    }
}

/// A filter expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// An atomic predicate.
    Predicate(Predicate),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Predicate(p) => write!(f, "{p}"),
            Expr::And(a, b) => write!(f, "({a} and {b})"),
            Expr::Or(a, b) => write!(f, "({a} or {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrip_shapes() {
        let p = Predicate::Binary {
            protocol: "tcp".into(),
            field: "port".into(),
            op: Op::Ge,
            value: Value::Int(100),
        };
        assert_eq!(p.to_string(), "tcp.port >= 100");
        let e = Expr::Or(
            Box::new(Expr::Predicate(p)),
            Box::new(Expr::Predicate(Predicate::Unary {
                protocol: "http".into(),
            })),
        );
        assert_eq!(e.to_string(), "(tcp.port >= 100 or http)");
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::IntRange(1, 9).to_string(), "1..9");
        assert_eq!(Value::Str("x".into()).to_string(), "'x'");
        assert_eq!(
            Value::Ipv4Net("10.0.0.0".parse().unwrap(), 8).to_string(),
            "10.0.0.0/8"
        );
    }

    #[test]
    fn predicate_protocol_access() {
        let u = Predicate::Unary {
            protocol: "tls".into(),
        };
        assert_eq!(u.protocol(), "tls");
        assert!(u.is_unary());
    }
}
