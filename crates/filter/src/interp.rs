//! Runtime (interpreted) filter execution.
//!
//! [`CompiledFilter`] is the product of filter compilation: the predicate
//! trie plus pre-computed dispatch tables and a regex cache. Its three
//! engines — [`PacketFilter`], [`ConnFilter`], [`SessionFilter`] — walk
//! the trie at runtime. This is the strategy Appendix B calls
//! "interpreted"; the `retina-filtergen` proc-macro generates equivalent
//! static code (the paper's default), and Figure 12's bench compares the
//! two.

// Narrowing casts in this file are intentional: tick, index, and counter arithmetic narrows to compact fields by design.
#![allow(clippy::cast_possible_truncation)]

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use retina_nic::DeviceCaps;
use retina_nic::FlowRule;
use retina_support::rematch::Regex;
use retina_wire::ParsedPacket;

use crate::ast::{Predicate, Value};
use crate::datatypes::{
    ConnVerdict, FilterError, FilterResult, Frontiers, PacketVerdict, SessionData, SubscriptionSet,
};
use crate::registry::{FilterLayer, ProtocolRegistry};
use crate::subfilters::{eval_packet_pred, eval_session_pred};
use crate::trie::PredicateTrie;

/// The filter functions every execution strategy provides.
///
/// Implemented by [`CompiledFilter`] (interpreted) and by the structs the
/// `retina-filtergen` proc-macro generates (static code). The runtime is
/// generic over this trait, so switching strategies is a type parameter,
/// not a code change.
///
/// The trait has two views of the same filter:
///
/// - the **single-subscription** methods ([`FilterFns::packet_filter`],
///   [`FilterFns::conn_filter`], [`FilterFns::session_filter`]) return
///   match/no-match plus one resume node, as in Figure 3;
/// - the **multi-subscription** methods (`*_set`) return
///   [`SubscriptionSet`]s saying *which* of the N subscriptions sharing
///   the filter matched or remain live, plus the [`Frontiers`] at which
///   later layers resume. The runtime drives these, so one filter pass
///   serves every subscription.
///
/// Single-subscription implementations get the `*_set` methods for free:
/// the provided defaults adapt the single-subscription results to
/// one-element sets, so existing generated filters work unmodified in
/// the multi-subscription engine.
pub trait FilterFns: Send + Sync {
    /// Applies the software packet filter to a parsed packet.
    fn packet_filter(&self, pkt: &ParsedPacket) -> FilterResult;

    /// Applies the connection filter once the L7 protocol is known.
    /// `service` is the probed protocol name; `pkt_term_node` is the node
    /// the packet filter tagged the connection with.
    fn conn_filter(&self, service: Option<&str>, pkt_term_node: usize) -> FilterResult;

    /// Applies the session filter to a fully parsed session.
    /// `pkt_term_node` selects the branch set, as in Figure 3.
    fn session_filter(&self, session: &dyn SessionData, pkt_term_node: usize) -> bool;

    /// Connection-layer protocols this filter needs probed.
    fn conn_protocols(&self) -> Vec<String>;

    /// The original filter source text (used for diagnostics and, by the
    /// default [`FilterFns::hw_rules`], to synthesize hardware rules).
    fn source(&self) -> &str;

    /// True when the filter has connection- or session-layer predicates.
    fn needs_conn_layer(&self) -> bool;

    /// True when the filter has session-layer predicates.
    fn needs_session_layer(&self) -> bool;

    // --- multi-subscription view -------------------------------------

    /// Number of subscriptions this filter decides (1 unless the filter
    /// was built as a union of per-subscription filters).
    fn num_subscriptions(&self) -> usize {
        1
    }

    /// Applies the software packet filter for every subscription at
    /// once, returning which subscriptions matched terminally, which
    /// remain live for deeper layers, and the frontier nodes at which
    /// those layers resume.
    fn packet_filter_set(&self, pkt: &ParsedPacket) -> PacketVerdict {
        let mut v = PacketVerdict::default();
        match self.packet_filter(pkt) {
            FilterResult::NoMatch => {}
            FilterResult::MatchTerminal(_) => {
                v.matched = SubscriptionSet::single(0);
            }
            FilterResult::MatchNonTerminal(n) => {
                v.live = SubscriptionSet::single(0);
                v.frontiers.push(n as u32);
            }
        }
        v
    }

    /// Applies the connection filter for the still-`live` subscriptions
    /// of a connection tagged with `frontiers`. Subscriptions absent
    /// from both returned sets have failed and can drop their state.
    fn conn_filter_set(
        &self,
        service: Option<&str>,
        frontiers: &Frontiers,
        live: SubscriptionSet,
    ) -> ConnVerdict {
        let mut v = ConnVerdict::default();
        if !live.contains(0) {
            return v;
        }
        let node = frontiers.first().unwrap_or(0) as usize;
        match self.conn_filter(service, node) {
            FilterResult::NoMatch => {}
            FilterResult::MatchTerminal(_) => v.matched = SubscriptionSet::single(0),
            FilterResult::MatchNonTerminal(_) => v.live = SubscriptionSet::single(0),
        }
        v
    }

    /// Applies the session filter for the still-`live` subscriptions,
    /// returning the set whose filter the session satisfies.
    fn session_filter_set(
        &self,
        session: &dyn SessionData,
        frontiers: &Frontiers,
        live: SubscriptionSet,
    ) -> SubscriptionSet {
        if !live.contains(0) {
            return SubscriptionSet::empty();
        }
        let node = frontiers.first().unwrap_or(0) as usize;
        if self.session_filter(session, node) {
            SubscriptionSet::single(0)
        } else {
            SubscriptionSet::empty()
        }
    }

    /// Connection-layer protocols subscription `sub` needs probed.
    fn conn_protocols_for(&self, sub: usize) -> Vec<String> {
        let _ = sub;
        self.conn_protocols()
    }

    /// True when subscription `sub`'s filter has connection- or
    /// session-layer predicates.
    fn needs_conn_layer_for(&self, sub: usize) -> bool {
        let _ = sub;
        self.needs_conn_layer()
    }

    /// True when subscription `sub`'s filter has session-layer predicates.
    fn needs_session_layer_for(&self, sub: usize) -> bool {
        let _ = sub;
        self.needs_session_layer()
    }

    /// Synthesizes the hardware flow rules for a device with `caps`
    /// (§4.1: at least as broad as the filter, widened where the NIC
    /// cannot express a predicate). For a merged filter this is the
    /// union of every subscription's rules, deduplicated.
    ///
    /// The default re-derives the trie from [`FilterFns::source`];
    /// implementations that already hold a trie (like
    /// [`CompiledFilter`]) override this so the filter is compiled
    /// exactly once.
    fn hw_rules(
        &self,
        caps: DeviceCaps,
        registry: &ProtocolRegistry,
    ) -> Result<Vec<FlowRule>, FilterError> {
        let trie = PredicateTrie::from_source(self.source(), registry)?;
        Ok(crate::hw::synthesize(&trie, caps))
    }
}

/// A fully compiled filter: trie + dispatch tables + regex cache.
///
/// Compiles one source ([`CompiledFilter::build`]) or the merged trie of
/// N subscription sources ([`CompiledFilter::build_union`]); in the
/// latter case the `*_set` methods natively evaluate every subscription
/// in one trie walk.
#[derive(Debug, Clone)]
pub struct CompiledFilter {
    trie: Arc<PredicateTrie>,
    regexes: Arc<HashMap<String, Regex>>,
    /// pkt frontier node → connection-layer candidate nodes.
    conn_cands: Arc<BTreeMap<usize, Vec<usize>>>,
    /// pkt frontier node → subscriptions still live through it.
    frontier_live: Arc<BTreeMap<usize, SubscriptionSet>>,
}

impl CompiledFilter {
    /// Parses, expands, and compiles `src` against `registry`.
    pub fn build(src: &str, registry: &ProtocolRegistry) -> Result<Self, FilterError> {
        let trie = PredicateTrie::from_source(src, registry)?;
        Self::from_trie(trie)
    }

    /// Compiles N per-subscription sources into one merged filter whose
    /// `*_set` methods decide all of them in a single pass.
    pub fn build_union(srcs: &[&str], registry: &ProtocolRegistry) -> Result<Self, FilterError> {
        let trie = PredicateTrie::from_sources(srcs, registry)?;
        Self::from_trie(trie)
    }

    /// Builds the dispatch tables for an existing trie.
    pub fn from_trie(trie: PredicateTrie) -> Result<Self, FilterError> {
        // Pre-compile every regex exactly once (§4.1: "all regular
        // expressions in the filter are compiled only once").
        let mut regexes = HashMap::new();
        for id in trie.reachable() {
            if let Some(Predicate::Binary {
                op: crate::ast::Op::Matches,
                value: Value::Str(pattern),
                ..
            }) = &trie.node(id).pred
            {
                if !regexes.contains_key(pattern) {
                    let re =
                        Regex::new(pattern).map_err(|e| FilterError::BadRegex(e.to_string()))?;
                    regexes.insert(pattern.clone(), re);
                }
            }
        }
        let mut conn_cands = BTreeMap::new();
        let mut frontier_live = BTreeMap::new();
        for frontier in trie.packet_frontiers() {
            let cands = trie.conn_candidates(frontier);
            let mut live = SubscriptionSet::empty();
            for &c in &cands {
                live |= trie.node(c).subtree_subs;
            }
            conn_cands.insert(frontier, cands);
            frontier_live.insert(frontier, live);
        }
        Ok(CompiledFilter {
            trie: Arc::new(trie),
            regexes: Arc::new(regexes),
            conn_cands: Arc::new(conn_cands),
            frontier_live: Arc::new(frontier_live),
        })
    }

    /// The underlying predicate trie.
    pub fn trie(&self) -> &PredicateTrie {
        &self.trie
    }

    /// Walks every satisfied packet-layer branch, collecting terminal
    /// subscription sets and frontier handoffs. Unlike the
    /// single-subscription walk this never early-returns: divergent
    /// branches can decide different subscriptions.
    fn walk_packet_collect(&self, id: usize, pkt: &ParsedPacket, v: &mut PacketVerdict) {
        let node = self.trie.node(id);
        v.matched |= node.subs;
        if let Some(&live) = self.frontier_live.get(&id) {
            v.frontiers.push(id as u32);
            v.live |= live;
        }
        for &c in &node.children {
            let child = self.trie.node(c);
            if child.layer != FilterLayer::Packet {
                continue;
            }
            let pred = child.pred.as_ref().expect("non-root has predicate");
            if eval_packet_pred(pred, pkt) {
                self.walk_packet_collect(c, pkt, v);
            }
        }
    }

    fn walk_packet(
        &self,
        id: usize,
        depth: usize,
        pkt: &ParsedPacket,
        best_frontier: &mut Option<(usize, usize)>,
    ) -> Option<usize> {
        let node = self.trie.node(id);
        if node.pattern_end {
            return Some(id);
        }
        if self.conn_cands.contains_key(&id) {
            // This node can hand off to the connection filter; remember the
            // deepest such node reached.
            if best_frontier.is_none_or(|(d, _)| depth > d) {
                *best_frontier = Some((depth, id));
            }
        }
        for &c in &node.children {
            let child = self.trie.node(c);
            if child.layer != FilterLayer::Packet {
                continue;
            }
            let pred = child.pred.as_ref().expect("non-root has predicate");
            if eval_packet_pred(pred, pkt) {
                if let Some(term) = self.walk_packet(c, depth + 1, pkt, best_frontier) {
                    return Some(term);
                }
            }
        }
        None
    }
}

impl FilterFns for CompiledFilter {
    fn packet_filter(&self, pkt: &ParsedPacket) -> FilterResult {
        let mut best_frontier = None;
        match self.walk_packet(0, 0, pkt, &mut best_frontier) {
            Some(terminal) => FilterResult::MatchTerminal(terminal),
            None => match best_frontier {
                Some((_, id)) => FilterResult::MatchNonTerminal(id),
                None => FilterResult::NoMatch,
            },
        }
    }

    fn conn_filter(&self, service: Option<&str>, pkt_term_node: usize) -> FilterResult {
        if self.trie.node(pkt_term_node).pattern_end {
            // The filter was already fully satisfied at the packet layer.
            return FilterResult::MatchTerminal(pkt_term_node);
        }
        let Some(cands) = self.conn_cands.get(&pkt_term_node) else {
            return FilterResult::NoMatch;
        };
        let mut non_terminal = None;
        for &c in cands {
            let node = self.trie.node(c);
            let proto = node.pred.as_ref().expect("conn node has pred").protocol();
            if Some(proto) == service {
                if node.pattern_end {
                    return FilterResult::MatchTerminal(c);
                }
                if non_terminal.is_none() {
                    non_terminal = Some(c);
                }
            }
        }
        match non_terminal {
            Some(c) => FilterResult::MatchNonTerminal(c),
            None => FilterResult::NoMatch,
        }
    }

    fn session_filter(&self, session: &dyn SessionData, pkt_term_node: usize) -> bool {
        if self.trie.node(pkt_term_node).pattern_end {
            return true;
        }
        let Some(cands) = self.conn_cands.get(&pkt_term_node) else {
            return false;
        };
        for &c in cands {
            let node = self.trie.node(c);
            let proto = node.pred.as_ref().expect("conn node has pred").protocol();
            if proto != session.protocol() {
                continue;
            }
            if node.pattern_end {
                // Connection-terminal pattern: the session filter defaults
                // to a match (Figure 4a).
                return true;
            }
            if self.walk_session(c, session) {
                return true;
            }
        }
        false
    }

    fn conn_protocols(&self) -> Vec<String> {
        self.trie.conn_protocols()
    }

    fn source(&self) -> &str {
        self.trie.source()
    }

    fn needs_conn_layer(&self) -> bool {
        self.trie.needs_conn_layer()
    }

    fn needs_session_layer(&self) -> bool {
        self.trie.needs_session_layer()
    }

    fn num_subscriptions(&self) -> usize {
        self.trie.num_subscriptions()
    }

    fn packet_filter_set(&self, pkt: &ParsedPacket) -> PacketVerdict {
        let mut v = PacketVerdict::default();
        self.walk_packet_collect(0, pkt, &mut v);
        // A terminal disjunct subsumes the same subscription's deeper
        // branches: matched wins over live.
        v.live -= v.matched;
        v
    }

    fn conn_filter_set(
        &self,
        service: Option<&str>,
        frontiers: &Frontiers,
        live: SubscriptionSet,
    ) -> ConnVerdict {
        let mut v = ConnVerdict::default();
        let Some(service) = service else {
            // No protocol identified: no conn-layer predicate can pass.
            return v;
        };
        for f in frontiers.iter() {
            let Some(cands) = self.conn_cands.get(&(f as usize)) else {
                continue;
            };
            for &c in cands {
                let node = self.trie.node(c);
                let proto = node.pred.as_ref().expect("conn node has pred").protocol();
                if proto == service {
                    v.matched |= node.subs & live;
                    v.live |= (node.subtree_subs - node.subs) & live;
                }
            }
        }
        v.live -= v.matched;
        v
    }

    fn session_filter_set(
        &self,
        session: &dyn SessionData,
        frontiers: &Frontiers,
        live: SubscriptionSet,
    ) -> SubscriptionSet {
        let mut pass = SubscriptionSet::empty();
        for f in frontiers.iter() {
            let Some(cands) = self.conn_cands.get(&(f as usize)) else {
                continue;
            };
            for &c in cands {
                let node = self.trie.node(c);
                let proto = node.pred.as_ref().expect("conn node has pred").protocol();
                if proto != session.protocol() {
                    continue;
                }
                // Conn-terminal patterns default-pass (Figure 4a).
                pass |= node.subs & live;
                self.walk_session_collect(c, session, live, &mut pass);
            }
        }
        pass & live
    }

    fn conn_protocols_for(&self, sub: usize) -> Vec<String> {
        self.trie.conn_protocols_for(sub)
    }

    fn needs_conn_layer_for(&self, sub: usize) -> bool {
        self.trie.needs_conn_layer_for(sub)
    }

    fn needs_session_layer_for(&self, sub: usize) -> bool {
        self.trie.needs_session_layer_for(sub)
    }

    fn hw_rules(
        &self,
        caps: DeviceCaps,
        _registry: &ProtocolRegistry,
    ) -> Result<Vec<FlowRule>, FilterError> {
        // The trie is already built: no re-compilation.
        Ok(crate::hw::synthesize(&self.trie, caps))
    }
}

impl CompiledFilter {
    fn walk_session_collect(
        &self,
        id: usize,
        session: &dyn SessionData,
        live: SubscriptionSet,
        pass: &mut SubscriptionSet,
    ) {
        for &c in &self.trie.node(id).children {
            let child = self.trie.node(c);
            if child.layer != FilterLayer::Session {
                continue;
            }
            let pred = child.pred.as_ref().expect("session node has pred");
            if eval_session_pred(pred, session, &self.regexes) {
                *pass |= child.subs & live;
                self.walk_session_collect(c, session, live, pass);
            }
        }
    }

    fn walk_session(&self, id: usize, session: &dyn SessionData) -> bool {
        for &c in &self.trie.node(id).children {
            let child = self.trie.node(c);
            if child.layer != FilterLayer::Session {
                continue;
            }
            let pred = child.pred.as_ref().expect("session node has pred");
            if eval_session_pred(pred, session, &self.regexes)
                && (child.pattern_end || self.walk_session(c, session))
            {
                return true;
            }
        }
        false
    }
}

/// Standalone packet filter handle (borrowing a [`CompiledFilter`]); a
/// convenience for code that only needs one stage.
pub type PacketFilter = CompiledFilter;
/// Standalone connection filter handle.
pub type ConnFilter = CompiledFilter;
/// Standalone session filter handle.
pub type SessionFilter = CompiledFilter;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatypes::FieldValue;
    use retina_wire::build::{build_tcp, build_udp, TcpSpec, UdpSpec};
    use retina_wire::TcpFlags;

    fn compile(src: &str) -> CompiledFilter {
        CompiledFilter::build(src, &ProtocolRegistry::default()).unwrap()
    }

    fn tcp_pkt(src: &str, dst: &str) -> ParsedPacket {
        let frame = build_tcp(&TcpSpec {
            src: src.parse().unwrap(),
            dst: dst.parse().unwrap(),
            seq: 1,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 64,
            ttl: 64,
            payload: b"",
        });
        ParsedPacket::parse(&frame).unwrap()
    }

    fn udp_pkt(src: &str, dst: &str) -> ParsedPacket {
        let frame = build_udp(&UdpSpec {
            src: src.parse().unwrap(),
            dst: dst.parse().unwrap(),
            ttl: 64,
            payload: b"x",
        });
        ParsedPacket::parse(&frame).unwrap()
    }

    struct Tls(&'static str);
    impl SessionData for Tls {
        fn protocol(&self) -> &str {
            "tls"
        }
        fn field(&self, name: &str) -> Option<FieldValue<'_>> {
            (name == "sni").then_some(FieldValue::Str(self.0))
        }
    }

    struct Http;
    impl SessionData for Http {
        fn protocol(&self) -> &str {
            "http"
        }
        fn field(&self, _: &str) -> Option<FieldValue<'_>> {
            None
        }
    }

    #[test]
    fn packet_terminal_match() {
        let f = compile("tcp.port = 443");
        assert!(f
            .packet_filter(&tcp_pkt("10.0.0.1:50000", "1.1.1.1:443"))
            .is_terminal());
        assert_eq!(
            f.packet_filter(&tcp_pkt("10.0.0.1:50000", "1.1.1.1:80")),
            FilterResult::NoMatch
        );
        assert_eq!(
            f.packet_filter(&udp_pkt("10.0.0.1:443", "1.1.1.1:443")),
            FilterResult::NoMatch
        );
    }

    #[test]
    fn figure3_end_to_end() {
        let f = compile("(ipv4 and tcp.port >= 100 and tls.sni ~ 'netflix') or http");

        // TCP packet, port >= 100: non-terminal; both TLS and HTTP viable.
        let pkt = tcp_pkt("10.0.0.1:50000", "1.1.1.1:443");
        let r = f.packet_filter(&pkt);
        let FilterResult::MatchNonTerminal(node) = r else {
            panic!("expected non-terminal, got {r:?}");
        };

        // TLS connection on that node: non-terminal (session pred pending).
        let cr = f.conn_filter(Some("tls"), node);
        assert!(matches!(cr, FilterResult::MatchNonTerminal(_)), "{cr:?}");
        // HTTP connection: terminal (the `http` disjunct).
        assert!(f.conn_filter(Some("http"), node).is_terminal());
        // SSH connection: no match.
        assert_eq!(f.conn_filter(Some("ssh"), node), FilterResult::NoMatch);

        // Session filter: netflix SNI matches, other SNI does not.
        assert!(f.session_filter(&Tls("video.netflix.com"), node));
        assert!(!f.session_filter(&Tls("example.com"), node));
        // HTTP session defaults to match (conn-terminal pattern).
        assert!(f.session_filter(&Http, node));

        // TCP packet with both ports < 100 (e.g. 80 -> 90): the tls
        // pattern is out, but http is still viable through the tcp node.
        let pkt_low = tcp_pkt("10.0.0.1:80", "1.1.1.1:90");
        let r = f.packet_filter(&pkt_low);
        let FilterResult::MatchNonTerminal(node_low) = r else {
            panic!("expected non-terminal, got {r:?}");
        };
        assert_ne!(node, node_low);
        assert!(f.conn_filter(Some("http"), node_low).is_terminal());
        assert_eq!(f.conn_filter(Some("tls"), node_low), FilterResult::NoMatch);
        assert!(!f.session_filter(&Tls("video.netflix.com"), node_low));

        // IPv6 TCP: only the http disjunct applies.
        let pkt6 = tcp_pkt("[2001:db8::1]:50000", "[2001:db8::2]:443");
        let r6 = f.packet_filter(&pkt6);
        assert!(matches!(r6, FilterResult::MatchNonTerminal(_)));
        assert!(f
            .conn_filter(Some("http"), r6.node().unwrap())
            .is_terminal());
        assert_eq!(
            f.conn_filter(Some("tls"), r6.node().unwrap()),
            FilterResult::NoMatch
        );

        // UDP: nothing.
        assert_eq!(
            f.packet_filter(&udp_pkt("1.1.1.1:1", "2.2.2.2:2")),
            FilterResult::NoMatch
        );
    }

    #[test]
    fn match_all_filter() {
        let f = compile("");
        assert_eq!(
            f.packet_filter(&tcp_pkt("1.1.1.1:1", "2.2.2.2:2")),
            FilterResult::MatchTerminal(0)
        );
        assert!(f.conn_filter(Some("tls"), 0).is_terminal());
        assert!(f.conn_filter(None, 0).is_terminal());
        assert!(f.session_filter(&Http, 0));
        assert!(!f.needs_conn_layer());
    }

    #[test]
    fn conn_only_filter() {
        let f = compile("tls");
        let pkt = tcp_pkt("10.0.0.1:50000", "1.1.1.1:443");
        let r = f.packet_filter(&pkt);
        let FilterResult::MatchNonTerminal(node) = r else {
            panic!("{r:?}")
        };
        assert!(f.conn_filter(Some("tls"), node).is_terminal());
        assert_eq!(f.conn_filter(Some("http"), node), FilterResult::NoMatch);
        assert_eq!(f.conn_filter(None, node), FilterResult::NoMatch);
        assert!(f.needs_conn_layer());
        assert!(!f.needs_session_layer());
        assert_eq!(f.conn_protocols(), vec!["tls".to_string()]);
    }

    #[test]
    fn session_chain_requires_all_predicates() {
        struct Session {
            sni: &'static str,
            version: u64,
        }
        impl SessionData for Session {
            fn protocol(&self) -> &str {
                "tls"
            }
            fn field(&self, name: &str) -> Option<FieldValue<'_>> {
                match name {
                    "sni" => Some(FieldValue::Str(self.sni)),
                    "version" => Some(FieldValue::Int(self.version)),
                    _ => None,
                }
            }
        }
        let f = compile("tls.sni ~ 'netflix' and tls.version = 771");
        let pkt = tcp_pkt("10.0.0.1:50000", "1.1.1.1:443");
        let node = f.packet_filter(&pkt).node().unwrap();
        assert!(f.session_filter(
            &Session {
                sni: "a.netflix.com",
                version: 771
            },
            node
        ));
        assert!(!f.session_filter(
            &Session {
                sni: "a.netflix.com",
                version: 770
            },
            node
        ));
        assert!(!f.session_filter(
            &Session {
                sni: "example.com",
                version: 771
            },
            node
        ));
    }

    #[test]
    fn disjoint_session_patterns() {
        let f = compile("tls.sni ~ 'netflix' or tls.sni ~ 'googlevideo'");
        let pkt = tcp_pkt("10.0.0.1:50000", "1.1.1.1:443");
        let node = f.packet_filter(&pkt).node().unwrap();
        assert!(f.session_filter(&Tls("x.netflix.com"), node));
        assert!(f.session_filter(&Tls("r1.googlevideo.com"), node));
        assert!(!f.session_filter(&Tls("example.org"), node));
    }

    #[test]
    fn ip_version_restriction() {
        let f = compile("ipv4 and tls");
        let pkt4 = tcp_pkt("10.0.0.1:5000", "1.1.1.1:443");
        let pkt6 = tcp_pkt("[2001:db8::1]:5000", "[2001:db8::2]:443");
        assert!(f.packet_filter(&pkt4).is_match());
        assert_eq!(f.packet_filter(&pkt6), FilterResult::NoMatch);
    }

    #[test]
    fn terminal_preferred_over_frontier() {
        // Port 80 satisfies the terminal disjunct even though the tls
        // pattern also partially matches.
        let f = compile("tcp.port = 80 or tls.sni ~ 'x'");
        let pkt = tcp_pkt("10.0.0.1:50000", "1.1.1.1:80");
        assert!(f.packet_filter(&pkt).is_terminal());
        // Port 443 leaves only the tls pattern.
        let pkt = tcp_pkt("10.0.0.1:50000", "1.1.1.1:443");
        assert!(matches!(
            f.packet_filter(&pkt),
            FilterResult::MatchNonTerminal(_)
        ));
    }

    #[test]
    fn bad_regex_rejected_at_build() {
        assert!(matches!(
            CompiledFilter::build("tls.sni ~ '[bad'", &ProtocolRegistry::default()),
            Err(FilterError::BadRegex(_))
        ));
    }

    fn compile_union(srcs: &[&str]) -> CompiledFilter {
        CompiledFilter::build_union(srcs, &ProtocolRegistry::default()).unwrap()
    }

    #[test]
    fn single_sub_set_methods_match_scalar_methods() {
        // The set view of a single-subscription filter must agree with
        // the scalar view on every packet and layer.
        for src in [
            "tcp.port = 443",
            "(ipv4 and tcp.port >= 100 and tls.sni ~ 'netflix') or http",
            "tls",
            "",
            "tcp.port = 80 or tls.sni ~ 'x'",
        ] {
            let f = compile(src);
            for pkt in [
                tcp_pkt("10.0.0.1:50000", "1.1.1.1:443"),
                tcp_pkt("10.0.0.1:80", "1.1.1.1:90"),
                udp_pkt("10.0.0.1:5353", "8.8.8.8:53"),
                tcp_pkt("[2001:db8::1]:50000", "[2001:db8::2]:443"),
            ] {
                let scalar = f.packet_filter(&pkt);
                let set = f.packet_filter_set(&pkt);
                assert_eq!(set.matched.contains(0), scalar.is_terminal(), "{src}");
                assert_eq!(
                    set.matched.contains(0) || set.live.contains(0),
                    scalar.is_match(),
                    "{src}"
                );
                if let FilterResult::MatchNonTerminal(node) = scalar {
                    // Conn layer agreement on every service.
                    for service in [Some("tls"), Some("http"), Some("dns"), None] {
                        let sr = f.conn_filter(service, node);
                        let sv = f.conn_filter_set(service, &set.frontiers, set.live);
                        assert_eq!(
                            sv.matched.contains(0),
                            sr.is_terminal(),
                            "{src} {service:?}"
                        );
                        assert_eq!(
                            sv.matched.contains(0) || sv.live.contains(0),
                            sr.is_match(),
                            "{src} {service:?}"
                        );
                    }
                    // Session layer agreement.
                    for session in [
                        &Tls("video.netflix.com") as &dyn SessionData,
                        &Tls("example.com"),
                    ] {
                        assert_eq!(
                            f.session_filter_set(session, &set.frontiers, set.live)
                                .contains(0),
                            f.session_filter(session, node),
                            "{src}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn union_packet_filter_decides_each_subscription() {
        // Sub 0: terminal on port 443. Sub 1: conn-layer tls. Sub 2: http.
        let f = compile_union(&["tcp.port = 443", "tls", "http"]);
        assert_eq!(f.num_subscriptions(), 3);
        let v = f.packet_filter_set(&tcp_pkt("10.0.0.1:50000", "1.1.1.1:443"));
        assert!(v.matched.contains(0));
        assert!(v.live.contains(1) && v.live.contains(2));
        // Non-443 TCP: sub 0 out, 1 and 2 live.
        let v = f.packet_filter_set(&tcp_pkt("10.0.0.1:50000", "1.1.1.1:80"));
        assert!(!v.matched.contains(0) && !v.live.contains(0));
        assert!(v.live.contains(1) && v.live.contains(2));
        // UDP: nothing survives (tls/http are tcp-only, port is tcp.port).
        let v = f.packet_filter_set(&udp_pkt("1.1.1.1:1", "2.2.2.2:2"));
        assert!(v.is_no_match());
    }

    #[test]
    fn union_conn_filter_routes_by_service() {
        let f = compile_union(&["tls", "http", "tls.sni ~ 'netflix'"]);
        let v = f.packet_filter_set(&tcp_pkt("10.0.0.1:50000", "1.1.1.1:443"));
        assert_eq!(v.live.len(), 3);
        let cv = f.conn_filter_set(Some("tls"), &v.frontiers, v.live);
        // Sub 0 conn-terminal; sub 2 stays live for the session filter;
        // sub 1 (http) fails.
        assert!(cv.matched.contains(0));
        assert!(cv.live.contains(2));
        assert!(!cv.matched.contains(1) && !cv.live.contains(1));
        let cv = f.conn_filter_set(Some("http"), &v.frontiers, v.live);
        assert!(cv.matched.contains(1) && cv.matched.len() == 1);
        assert!(cv.live.is_empty());
        // Unknown service: everything falls off.
        let cv = f.conn_filter_set(Some("ssh"), &v.frontiers, v.live);
        assert!(cv.matched.is_empty() && cv.live.is_empty());
        // No service identified: same.
        let cv = f.conn_filter_set(None, &v.frontiers, v.live);
        assert!(cv.matched.is_empty() && cv.live.is_empty());
    }

    #[test]
    fn union_session_filter_per_subscription() {
        let f = compile_union(&["tls.sni ~ 'netflix'", "tls.sni ~ 'googlevideo'", "http"]);
        let v = f.packet_filter_set(&tcp_pkt("10.0.0.1:50000", "1.1.1.1:443"));
        let cv = f.conn_filter_set(Some("tls"), &v.frontiers, v.live);
        assert!(cv.live.contains(0) && cv.live.contains(1) && !cv.live.contains(2));
        let pass = f.session_filter_set(&Tls("a.netflix.com"), &v.frontiers, cv.live);
        assert!(pass.contains(0) && !pass.contains(1));
        let pass = f.session_filter_set(&Tls("r1.googlevideo.com"), &v.frontiers, cv.live);
        assert!(!pass.contains(0) && pass.contains(1));
        let pass = f.session_filter_set(&Tls("example.org"), &v.frontiers, cv.live);
        assert!(pass.is_empty());
    }

    #[test]
    fn union_divergent_packet_branches_stay_live() {
        // Sub 0 needs port >= 100 before tls; sub 1 matches http on any
        // tcp. A packet satisfying both tags BOTH frontiers — the
        // one-frontier single-subscription walk could only keep the
        // deepest.
        let f = compile_union(&["ipv4 and tcp.port >= 100 and tls.sni ~ 'n'", "http"]);
        let v = f.packet_filter_set(&tcp_pkt("10.0.0.1:50000", "1.1.1.1:443"));
        assert!(v.live.contains(0) && v.live.contains(1));
        assert!(v.frontiers.len() >= 2, "{:?}", v.frontiers);
        // Low ports: only http remains live.
        let v = f.packet_filter_set(&tcp_pkt("10.0.0.1:80", "1.1.1.1:90"));
        assert!(!v.live.contains(0) && v.live.contains(1));
    }

    #[test]
    fn union_with_match_all_subscription() {
        let f = compile_union(&["", "tls"]);
        let v = f.packet_filter_set(&udp_pkt("1.1.1.1:1", "2.2.2.2:2"));
        assert!(v.matched.contains(0));
        assert!(!v.live.contains(1)); // tls needs tcp
        let v = f.packet_filter_set(&tcp_pkt("1.1.1.1:1", "2.2.2.2:2"));
        assert!(v.matched.contains(0) && v.live.contains(1));
        let cv = f.conn_filter_set(Some("tls"), &v.frontiers, v.live);
        assert!(cv.matched.contains(1));
    }

    #[test]
    fn union_per_sub_metadata() {
        let f = compile_union(&["tls", "tcp.port = 80", "dns or http"]);
        assert_eq!(f.conn_protocols_for(0), vec!["tls".to_string()]);
        assert!(f.conn_protocols_for(1).is_empty());
        assert_eq!(f.conn_protocols_for(2).len(), 2);
        assert!(f.needs_conn_layer_for(0));
        assert!(!f.needs_conn_layer_for(1));
        assert!(!f.needs_session_layer_for(0));
        let protos = f.conn_protocols();
        assert_eq!(protos.len(), 3);
    }

    #[test]
    fn union_matches_independent_filters_on_packets() {
        // Semantic equivalence: for every packet, each subscription's
        // verdict in the union equals its verdict standalone.
        let srcs = ["tcp.port = 443", "tls", "http", "udp"];
        let union = compile_union(&srcs);
        let singles: Vec<_> = srcs.iter().map(|s| compile(s)).collect();
        for pkt in [
            tcp_pkt("10.0.0.1:50000", "1.1.1.1:443"),
            tcp_pkt("10.0.0.1:80", "1.1.1.1:90"),
            udp_pkt("10.0.0.1:53", "8.8.8.8:53"),
            tcp_pkt("[2001:db8::1]:50000", "[2001:db8::2]:443"),
        ] {
            let v = union.packet_filter_set(&pkt);
            for (i, single) in singles.iter().enumerate() {
                let r = single.packet_filter(&pkt);
                assert_eq!(v.matched.contains(i), r.is_terminal(), "sub {i}");
                assert_eq!(
                    v.matched.contains(i) || v.live.contains(i),
                    r.is_match(),
                    "sub {i}"
                );
            }
        }
    }

    #[test]
    fn dns_over_udp_and_tcp() {
        let f = compile("dns");
        for pkt in [
            udp_pkt("10.0.0.1:5353", "8.8.8.8:53"),
            tcp_pkt("10.0.0.1:5353", "8.8.8.8:53"),
        ] {
            let r = f.packet_filter(&pkt);
            let node = r.node().expect("should match");
            assert!(f.conn_filter(Some("dns"), node).is_terminal());
        }
    }
}
