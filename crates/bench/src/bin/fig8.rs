//! Figure 8: connection-state memory over time under three timeout
//! schemes — Retina's default (5 s establish + 5 min inactivity), a
//! single 5-minute inactivity timeout, and no timeouts.
//!
//! Drives the connection tracker directly over a long simulated capture
//! (scan-heavy arrivals, per Table 2's 65% single-SYN rate) and samples
//! the number of resident connections and estimated state bytes each
//! simulated 10 seconds.

use std::sync::Arc;

use retina_bench::{bench_args, rule};
use retina_conntrack::TimeoutConfig;
use retina_core::subscribables::ConnRecord;
use retina_core::tracker::ConnTracker;
use retina_core::{compile, CompiledFilter, FilterFns};
use retina_telemetry::LogHistogram;
use retina_trafficgen::campus::{generate, CampusConfig};
use retina_wire::ParsedPacket;

const SAMPLE_EVERY_NS: u64 = 10_000_000_000; // 10 simulated seconds

/// (sim time ns, resident connections, estimated state bytes) samples.
type SamplePoint = (u64, usize, usize);

fn main() {
    let args = bench_args();
    // Long simulated window so the 5-minute timeout becomes visible.
    let sim_secs = if args.quick { 420.0 } else { 900.0 };
    println!(
        "generating campus mix over {} simulated seconds (~{} packets)...",
        sim_secs, args.packets
    );
    let packets = generate(&CampusConfig {
        target_packets: args.packets,
        duration_secs: sim_secs,
        ..CampusConfig::default()
    });

    let schemes: [(&str, TimeoutConfig); 3] = [
        (
            "5s establish + 5m inactive (default)",
            TimeoutConfig::retina_default(),
        ),
        ("5m inactive only", TimeoutConfig::inactivity_only()),
        ("no timeouts", TimeoutConfig::none()),
    ];

    let mut series: Vec<(&str, Vec<SamplePoint>)> = Vec::new();
    let mut peaks: Vec<(&str, usize, LogHistogram)> = Vec::new();
    for (name, timeouts) in schemes {
        let filter = Arc::new(compile("").unwrap());
        let mut tracker: ConnTracker<CompiledFilter> =
            ConnTracker::single::<ConnRecord>(Arc::clone(&filter), timeouts, 500, false);
        let mut samples = Vec::new();
        let mut next_sample = SAMPLE_EVERY_NS;
        // Per-packet peak: sampling every 10 sim-seconds can miss a
        // spike, so track the true maximum alongside the series, plus a
        // distribution of the sampled state sizes.
        let mut peak_conns = 0usize;
        let mut state_hist = LogHistogram::new();
        for (frame, ts) in &packets {
            let Ok(pkt) = ParsedPacket::parse(frame) else {
                continue;
            };
            let mut mbuf = retina_nic::Mbuf::from_bytes(frame.clone());
            mbuf.timestamp_ns = *ts;
            let verdict = filter.packet_filter_set(&pkt);
            if !verdict.is_no_match() {
                tracker.process(&mbuf, &pkt, verdict);
            }
            let _ = tracker.take_outputs();
            peak_conns = peak_conns.max(tracker.connections());
            if *ts >= next_sample {
                tracker.advance(*ts);
                let _ = tracker.take_outputs();
                let state = tracker.state_bytes();
                state_hist.record(state as u64);
                samples.push((*ts / 1_000_000_000, tracker.connections(), state));
                next_sample += SAMPLE_EVERY_NS;
            }
        }
        series.push((name, samples));
        peaks.push((name, peak_conns, state_hist));
    }

    println!("\nFigure 8: connections in memory over time (sampled every 10 sim-seconds)");
    println!(
        "{:>6} {:>22} {:>22} {:>22}",
        "t(s)", "default (5s+5m)", "5m inactive", "no timeouts"
    );
    rule(76);
    let rows = series.iter().map(|(_, s)| s.len()).min().unwrap_or(0);
    for i in 0..rows {
        // Print every other sample to keep the table readable.
        if i % 2 != 0 {
            continue;
        }
        let t = series[0].1[i].0;
        print!("{t:>6}");
        for (_, samples) in &series {
            let (_, conns, bytes) = samples[i];
            print!("{:>22}", format!("{conns} ({} KB)", bytes / 1024));
        }
        println!();
    }

    println!("\nsteady-state comparison (last sample):");
    let mut last: Vec<(&str, usize, usize)> = Vec::new();
    for (name, samples) in &series {
        if let Some(&(_, conns, bytes)) = samples.last() {
            last.push((name, conns, bytes));
        }
    }
    for (name, conns, bytes) in &last {
        println!("  {name:<40} {conns:>9} conns {:>12} KB", bytes / 1024);
    }

    println!("\nmemory pressure (peak conns; sampled state bytes p50/p95/max):");
    for (name, peak, hist) in &peaks {
        println!(
            "  {name:<40} peak {peak:>9} conns | state p50 {:>10} KB  p95 {:>10} KB  max {:>10} KB",
            hist.p50() / 1024,
            hist.p95() / 1024,
            hist.max_bound() / 1024,
        );
    }
    if last.len() == 3 && last[0].1 > 0 {
        println!(
            "\nratios vs default: inactivity-only {:.1}x conns, no-timeout {:.1}x conns",
            last[1].1 as f64 / last[0].1 as f64,
            last[2].1 as f64 / last[0].1 as f64,
        );
        println!(
            "paper: default tracked 7.7x fewer connections and used 6.4x less\n\
             memory than 5m-inactivity-only; no-timeout exhausted 340 GB in ~11 min."
        );
    }
}
