//! The multi-core runtime (Figure 2's run-time half).
//!
//! [`MultiRuntime::run`] spawns one ingest thread (the "wire") and one
//! worker thread per configured core. The ingest thread pushes frames
//! from a [`TrafficSource`] into the virtual NIC, which applies hardware
//! flow rules and symmetric RSS; each worker polls its own RX queue and
//! runs the per-core pipeline — packet filter, connection tracker,
//! callbacks — with no cross-core communication (§5.1).
//!
//! ## One pipeline, N subscriptions
//!
//! A [`MultiRuntime`] serves any number of subscriptions in a single
//! pass: their filters are merged into one predicate trie (see
//! `retina_filter::PredicateTrie::from_sources`), so each packet is
//! filtered **once** no matter how many subscriptions are registered,
//! and each connection is tracked, reassembled, and parsed **once**,
//! with per-subscription actions decided by `SubscriptionSet` bitmaps
//! at every layer. Build one with [`RuntimeBuilder`]:
//!
//! ```no_run
//! use retina_core::{RuntimeBuilder, RuntimeConfig};
//! use retina_core::subscribables::{ConnRecord, TlsHandshakeData};
//!
//! let mut runtime = RuntimeBuilder::new(RuntimeConfig::default())
//!     .subscribe("tls", |hs: TlsHandshakeData| println!("{}", hs.tls.sni()))
//!     .subscribe("ipv4 and tcp", |c: ConnRecord| println!("{}", c.tuple))
//!     .build()
//!     .unwrap();
//! // runtime.run(source) — see retina-trafficgen for traffic sources.
//! # let _ = &mut runtime;
//! ```
//!
//! [`Runtime`] remains the single-subscription view from Figure 1; it is
//! a thin wrapper over a one-entry [`MultiRuntime`].

// Narrowing casts in this file are intentional: tick, index, and counter arithmetic narrows to compact fields by design.
#![allow(clippy::cast_possible_truncation)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use retina_filter::{CompiledFilter, FilterFns, PacketVerdict, SubscriptionSet};
use retina_nic::{PortStatsSnapshot, VirtualNic};
use retina_support::bytes::Bytes;
use retina_telemetry::{
    CounterId, DispatchHub, DropBreakdown, DropReason, GaugeId, GaugeMerge, Registry, StageSummary,
    TelemetrySnapshot, TraceConfig, TraceKind, TraceReport, Tracer, TriggerReason,
};
use retina_wire::ParsedPacket;

use crate::config::RuntimeConfig;
use crate::erased::{ErasedSubscription, TypedSubscription};
use crate::executor::{channel_dispatcher, CallbackDelayFn, DispatchMode};
use crate::governor::{Governor, GovernorConfig, ShedState};
use crate::reconfig::{ConfigEpoch, EpochState, SwapController, EXITED};
use crate::stats::CoreStats;
use crate::subscription::{Level, Subscribable};
use crate::tracker::{ConnTracker, SubTally};
use crate::util::rdtsc;

/// Shared slot holding the in-flight run's tracer.
///
/// Empty between runs; [`MultiRuntime::run`] installs a fresh
/// per-run [`Tracer`] at start and clears it at the end, so long-lived
/// observers started before the run (a [`Governor`], a
/// [`crate::Monitor`], a fault layer) can fire anomaly triggers against
/// whichever run is currently in flight without holding a stale tracer.
pub type TraceHandle = Arc<std::sync::RwLock<Option<Arc<Tracer>>>>;

/// A source of timestamped frames for the virtual NIC (the "wire").
///
/// Implemented by the synthetic traffic generators in `retina-trafficgen`
/// and by pcap readers.
pub trait TrafficSource: Send {
    /// Fills `out` with the next batch of (frame, timestamp-ns) pairs.
    /// Returns `false` when the source is exhausted.
    fn next_batch(&mut self, out: &mut Vec<(Bytes, u64)>) -> bool;
}

/// Live gauges the runtime updates while running (read them from a
/// monitoring thread, e.g. for the Figure 8 memory series).
///
/// Backed by a per-core [`Registry`]: workers flush into their own
/// cache-line-padded shard and readers merge on demand, so monitoring
/// never introduces cross-core contention.
#[derive(Debug)]
pub struct RuntimeGauges {
    registry: Registry,
    connections: GaugeId,
    state_bytes: GaugeId,
    conn_arena_bytes: GaugeId,
    sim_clock_ns: GaugeId,
    mbuf_high_water: GaugeId,
    config_epoch: GaugeId,
    swap_pickup_lag_us: GaugeId,
    parse_failures: CounterId,
    rx_packets: CounterId,
}

impl RuntimeGauges {
    /// Creates gauges sharded over `cores` workers.
    pub fn new(cores: usize) -> Self {
        let mut registry = Registry::new(cores);
        let connections = registry.gauge("connections", GaugeMerge::Sum);
        let state_bytes = registry.gauge("state_bytes", GaugeMerge::Sum);
        let conn_arena_bytes = registry.gauge("conn_arena_bytes", GaugeMerge::Sum);
        let sim_clock_ns = registry.gauge("sim_clock_ns", GaugeMerge::Max);
        let mbuf_high_water = registry.gauge("mbuf_high_water", GaugeMerge::Max);
        let config_epoch = registry.gauge("config_epoch", GaugeMerge::Max);
        let swap_pickup_lag_us = registry.gauge("swap_pickup_lag_us", GaugeMerge::Max);
        let parse_failures = registry.counter("parse_failures");
        let rx_packets = registry.counter("rx_packets");
        RuntimeGauges {
            registry,
            connections,
            state_bytes,
            conn_arena_bytes,
            sim_clock_ns,
            mbuf_high_water,
            config_epoch,
            swap_pickup_lag_us,
            parse_failures,
            rx_packets,
        }
    }

    /// The underlying registry (snapshots, extra metrics).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Connections currently tracked across all cores.
    pub fn connections(&self) -> usize {
        self.registry.gauge_value(self.connections) as usize
    }

    /// Estimated connection-state bytes across all cores.
    pub fn state_bytes(&self) -> usize {
        self.registry.gauge_value(self.state_bytes) as usize
    }

    /// Connection-arena high-water bytes summed across all cores: the
    /// peak backing-store footprint of the conn tables (arena slots plus
    /// shard index). Unlike [`RuntimeGauges::state_bytes`] this is a
    /// high-water mark, not a live value — arena capacity is monotonic,
    /// so it never decreases over a run.
    pub fn conn_arena_bytes(&self) -> usize {
        self.registry.gauge_value(self.conn_arena_bytes) as usize
    }

    /// Maximum packet timestamp processed so far (simulation clock, ns).
    pub fn sim_clock_ns(&self) -> u64 {
        self.registry.gauge_value(self.sim_clock_ns)
    }

    /// Peak mempool occupancy mirrored from the NIC.
    pub fn mbuf_high_water(&self) -> usize {
        self.registry.gauge_value(self.mbuf_high_water) as usize
    }

    /// L2–L4 parse failures flushed by the workers so far.
    pub fn parse_failures(&self) -> u64 {
        self.registry.counter_total(self.parse_failures)
    }

    /// Packets received by the workers so far.
    pub fn rx_packets(&self) -> u64 {
        self.registry.counter_total(self.rx_packets)
    }

    /// The configuration generation currently published to the workers
    /// (0 before the first run; bumped by each live swap).
    pub fn config_epoch(&self) -> u64 {
        self.registry.gauge_value(self.config_epoch)
    }

    /// Worst per-core epoch-pickup lag observed so far, in
    /// microseconds: the time from a swap's publish to the slowest
    /// core's acknowledgment at its between-bursts safe point.
    pub fn swap_pickup_lag_us(&self) -> u64 {
        self.registry.gauge_value(self.swap_pickup_lag_us)
    }

    /// Records a newly published configuration generation (`Max` merge
    /// makes this safe from any thread, including the swap publisher).
    pub fn note_config_epoch(&self, generation: u64) {
        self.registry.shard(0).max(self.config_epoch, generation);
    }

    /// Records one core's epoch-pickup lag for the swap just observed.
    pub fn note_swap_pickup_lag(&self, core: usize, lag_us: u64) {
        self.registry
            .shard(core)
            .max(self.swap_pickup_lag_us, lag_us);
    }

    /// Mirrors the mempool's high-water mark into the registry (called
    /// by whichever thread observes the NIC; `Max` merge makes this
    /// safe from any core).
    pub fn note_mbuf_high_water(&self, peak: usize) {
        self.registry
            .shard(0)
            .max(self.mbuf_high_water, peak as u64);
    }

    /// Flushes one worker's live state into its shard. Called from the
    /// worker's periodic maintenance block, so per-packet paths stay
    /// atomics-free.
    pub fn worker_update(
        &self,
        core: usize,
        stats: &CoreStats,
        connections: usize,
        state_bytes: usize,
        arena_bytes: usize,
        sim_clock_ns: u64,
    ) {
        let shard = self.registry.shard(core);
        shard.set(self.connections, connections as u64);
        shard.set(self.state_bytes, state_bytes as u64);
        shard.max(self.conn_arena_bytes, arena_bytes as u64);
        shard.max(self.sim_clock_ns, sim_clock_ns);
        shard.set_counter(self.parse_failures, stats.parse_failures);
        shard.set_counter(self.rx_packets, stats.rx_packets);
    }
}

/// Errors from runtime construction.
#[derive(Debug)]
pub enum RuntimeError {
    /// The filter's hardware rules were rejected by the device.
    HwFilter(String),
    /// A subscription filter failed to parse or compile.
    Filter(String),
    /// The subscription table does not line up with the merged filter.
    Subscriptions(String),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::HwFilter(msg) => write!(f, "hardware filter installation: {msg}"),
            RuntimeError::Filter(msg) => write!(f, "filter compilation: {msg}"),
            RuntimeError::Subscriptions(msg) => write!(f, "subscription table: {msg}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Per-subscription outcome of a completed run.
#[derive(Debug, Clone)]
pub struct SubReport {
    /// Subscription name (as registered with the builder).
    pub name: String,
    /// Data items handed to the subscription's delivery layer (inline
    /// invocation or dispatch-ring enqueue).
    pub delivered: u64,
    /// Connections on which the subscription was engaged and then
    /// rejected by a later filter layer.
    pub discarded: u64,
    /// Callbacks that actually ran (inline or on a dispatch worker).
    pub cb_executed: u64,
    /// Results shed on a full dispatch ring ([`crate::QueuePolicy::Shed`]).
    pub cb_dropped_full: u64,
    /// Results lost to a disconnected dispatch worker.
    pub cb_dropped_disconnected: u64,
    /// Dispatch-ring depth high-water mark over the run.
    pub queue_depth_peak: u64,
    /// Total dispatch-ring capacity (0 = inline execution).
    pub queue_capacity: u64,
}

/// Result of a completed run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Wall-clock processing time.
    pub elapsed: Duration,
    /// NIC counters (offered/delivered/dropped/lost).
    pub nic: PortStatsSnapshot,
    /// Merged per-core pipeline statistics.
    pub cores: CoreStats,
    /// Per-subscription delivery/discard outcomes, in registration order.
    pub subs: Vec<SubReport>,
    /// Simulated time span covered by the traffic (ns).
    pub sim_duration_ns: u64,
    /// Peak mempool occupancy over the run (buffers).
    pub mbuf_high_water: usize,
    /// Connection-arena high-water bytes summed across cores: the peak
    /// backing-store footprint of the per-core connection tables (arena
    /// slots plus shard index). The memory half of the churn-bench gate.
    /// Excluded from [`RunReport::deterministic_digest`] — allocation
    /// capacity depends on growth timing, not on what was delivered.
    pub conn_arena_bytes: usize,
    /// Filter-analyzer warnings recorded at build time (W-code summaries
    /// from [`retina_filter::analyze_union`]): dead disjuncts, lost
    /// hardware offload, redundant predicates. Empty when the filters are
    /// clean or the runtime was built without [`RuntimeBuilder`].
    pub filter_warnings: Vec<String>,
    /// Per-flow trace artifact: the sampled span-tree session plus any
    /// frozen flight-recorder dump. `None` unless tracing was enabled
    /// via [`RuntimeBuilder::trace`] /
    /// [`MultiRuntime::set_trace_config`]. Excluded from
    /// [`RunReport::deterministic_digest`] (it has its own
    /// mode-independent form,
    /// [`retina_telemetry::FlowTrace::canonical_bytes`]).
    pub trace: Option<TraceReport>,
}

impl RunReport {
    /// Delivered throughput in Gbps over wall-clock time.
    pub fn gbps(&self) -> f64 {
        (self.nic.rx_bytes as f64 * 8.0) / self.elapsed.as_secs_f64() / 1e9
    }

    /// Offered load in Gbps over wall-clock time (counting hardware drops
    /// and sink-sampled traffic as offered).
    pub fn offered_gbps(&self) -> f64 {
        // Approximate offered bytes by scaling delivered bytes by the
        // offered/delivered packet ratio.
        if self.nic.rx_delivered == 0 {
            return 0.0;
        }
        let scale = self.nic.rx_offered as f64 / self.nic.rx_delivered as f64;
        self.gbps() * scale
    }

    /// True when no packets were lost to ring overflow or mempool
    /// exhaustion — the paper's zero-loss criterion.
    pub fn zero_loss(&self) -> bool {
        self.nic.lost() == 0
    }

    /// Total data items delivered across all subscriptions.
    pub fn delivered(&self) -> u64 {
        self.subs.iter().map(|s| s.delivered).sum()
    }

    /// The run's complete drop taxonomy: the NIC's packet-subject
    /// reasons plus the pipeline's parse failures and connection-subject
    /// reasons, each attributed exactly once.
    pub fn drop_breakdown(&self) -> DropBreakdown {
        let mut drops = self.nic.drop_breakdown();
        drops.add(DropReason::ParseFailure, self.cores.parse_failures);
        drops.add(
            DropReason::ConnFilterDiscard,
            self.cores.discard_conn_filter,
        );
        drops.add(
            DropReason::SessionFilterDiscard,
            self.cores.discard_session_filter,
        );
        drops.add(DropReason::TimeoutExpiry, self.cores.conns_expired);
        drops
    }

    /// Pipeline stages in processing order, as `(name, summary)` pairs.
    pub fn stages(&self) -> Vec<(String, StageSummary)> {
        let stage = |s: &crate::stats::StageStats| StageSummary {
            runs: s.runs,
            cycles: s.cycles,
            hist: s.hist,
        };
        vec![
            (
                "packet_filter".to_string(),
                stage(&self.cores.packet_filter),
            ),
            (
                "conn_tracking".to_string(),
                stage(&self.cores.conn_tracking),
            ),
            ("reassembly".to_string(), stage(&self.cores.reassembly)),
            ("app_parsing".to_string(), stage(&self.cores.app_parsing)),
            (
                "session_filter".to_string(),
                stage(&self.cores.session_filter),
            ),
            ("callbacks".to_string(), stage(&self.cores.callbacks)),
        ]
    }

    /// The full telemetry view of the run: named counters, gauges,
    /// per-stage cycle distributions, and the drop-reason breakdown —
    /// ready for any [`retina_telemetry::MetricSink`] exporter.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        let mut counters = vec![
            (
                "core.conns_completed_early".to_string(),
                self.cores.conns_completed_early,
            ),
            ("core.conns_created".to_string(), self.cores.conns_created),
            (
                "core.conns_discarded".to_string(),
                self.cores.conns_discarded,
            ),
            ("core.conns_drained".to_string(), self.cores.conns_drained),
            ("core.conns_expired".to_string(), self.cores.conns_expired),
            (
                "core.conns_terminated".to_string(),
                self.cores.conns_terminated,
            ),
            (
                "core.discard_conn_filter".to_string(),
                self.cores.discard_conn_filter,
            ),
            (
                "core.discard_session_filter".to_string(),
                self.cores.discard_session_filter,
            ),
            ("core.ooo_buffered".to_string(), self.cores.ooo_buffered),
            ("core.parse_failures".to_string(), self.cores.parse_failures),
            ("core.parser_panics".to_string(), self.cores.parser_panics),
            ("core.rx_bytes".to_string(), self.cores.rx_bytes),
            ("core.rx_packets".to_string(), self.cores.rx_packets),
            ("nic.hw_dropped".to_string(), self.nic.hw_dropped),
            ("nic.rx_bytes".to_string(), self.nic.rx_bytes),
            ("nic.rx_delivered".to_string(), self.nic.rx_delivered),
            ("nic.rx_missed".to_string(), self.nic.rx_missed),
            ("nic.rx_nombuf".to_string(), self.nic.rx_nombuf),
            ("nic.rx_offered".to_string(), self.nic.rx_offered),
            ("nic.sunk".to_string(), self.nic.sunk),
        ];
        for sub in &self.subs {
            counters.push((format!("sub.{}.delivered", sub.name), sub.delivered));
            counters.push((format!("sub.{}.discarded", sub.name), sub.discarded));
            counters.push((format!("sub.{}.cb_executed", sub.name), sub.cb_executed));
            counters.push((
                format!("sub.{}.cb_dropped_full", sub.name),
                sub.cb_dropped_full,
            ));
            counters.push((
                format!("sub.{}.cb_dropped_disconnected", sub.name),
                sub.cb_dropped_disconnected,
            ));
            counters.push((
                format!("sub.{}.queue_depth_peak", sub.name),
                sub.queue_depth_peak,
            ));
        }
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let gauges = vec![
            ("conn_arena_bytes".to_string(), self.conn_arena_bytes as u64),
            ("conns_peak".to_string(), self.cores.conns_peak),
            ("mbuf_high_water".to_string(), self.mbuf_high_water as u64),
            ("sim_duration_ns".to_string(), self.sim_duration_ns),
        ];
        TelemetrySnapshot {
            counters,
            gauges,
            stages: self.stages(),
            drops: self.drop_breakdown(),
        }
    }

    /// A schedule-independent fingerprint of the run, for replay tests:
    /// two runs of the same seeded workload (paced ingest, static sink
    /// fraction) must produce identical digests bit for bit.
    ///
    /// Includes every NIC counter, every deterministic core counter, and
    /// every per-subscription tally. Excludes wall-clock time and cycle
    /// measurements (machine- and schedule-dependent), and merges
    /// `conns_expired + conns_drained` into one `conns_retired` line —
    /// whether an idle connection is expired by the last maintenance
    /// tick or drained at shutdown depends on poll scheduling, but their
    /// sum does not.
    pub fn deterministic_digest(&self) -> String {
        let lines = [
            ("nic.rx_offered", self.nic.rx_offered),
            ("nic.rx_delivered", self.nic.rx_delivered),
            ("nic.rx_bytes", self.nic.rx_bytes),
            ("nic.hw_dropped", self.nic.hw_dropped),
            ("nic.sunk", self.nic.sunk),
            ("nic.rx_missed", self.nic.rx_missed),
            ("nic.rx_nombuf", self.nic.rx_nombuf),
            ("core.rx_packets", self.cores.rx_packets),
            ("core.rx_bytes", self.cores.rx_bytes),
            ("core.parse_failures", self.cores.parse_failures),
            ("core.parser_panics", self.cores.parser_panics),
            ("core.packet_filter.runs", self.cores.packet_filter.runs),
            ("core.conn_tracking.runs", self.cores.conn_tracking.runs),
            ("core.reassembly.runs", self.cores.reassembly.runs),
            ("core.app_parsing.runs", self.cores.app_parsing.runs),
            ("core.session_filter.runs", self.cores.session_filter.runs),
            ("core.callbacks.runs", self.cores.callbacks.runs),
            ("core.conns_created", self.cores.conns_created),
            ("core.conns_discarded", self.cores.conns_discarded),
            ("core.discard_conn_filter", self.cores.discard_conn_filter),
            (
                "core.discard_session_filter",
                self.cores.discard_session_filter,
            ),
            (
                "core.conns_completed_early",
                self.cores.conns_completed_early,
            ),
            ("core.conns_terminated", self.cores.conns_terminated),
            (
                "core.conns_retired",
                self.cores.conns_expired + self.cores.conns_drained,
            ),
            ("core.conns_swapped", self.cores.conns_swapped),
            ("core.ooo_buffered", self.cores.ooo_buffered),
        ];
        let mut out = String::new();
        for (name, value) in lines {
            out.push_str(name);
            out.push('=');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        for (i, sub) in self.subs.iter().enumerate() {
            out.push_str(&format!(
                "sub.{i}.delivered={}\nsub.{i}.discarded={}\n",
                sub.delivered, sub.discarded
            ));
        }
        out
    }

    /// Per-subscription digest, keyed by name instead of index: the
    /// delivery counts for subscription `name`, or `None` if the run
    /// had no such subscription. Runs with different subscription
    /// orders (e.g. a swap run vs. a no-swap control) compare
    /// untouched subscriptions with this.
    pub fn sub_digest(&self, name: &str) -> Option<String> {
        let sub = self.subs.iter().find(|s| s.name == name)?;
        Some(format!(
            "delivered={}\ndiscarded={}\n",
            sub.delivered, sub.discarded
        ))
    }

    /// Verifies the run's accounting invariants: every ingress frame and
    /// every created connection is attributed to exactly one outcome.
    /// Returns the first violated invariant on failure.
    pub fn check_accounting(&self) -> Result<(), String> {
        if !self.nic.fully_attributed() {
            return Err(format!(
                "nic: rx_offered ({}) != delivered ({}) + sunk ({}) + hw_dropped ({}) + \
                 missed ({}) + nombuf ({})",
                self.nic.rx_offered,
                self.nic.rx_delivered,
                self.nic.sunk,
                self.nic.hw_dropped,
                self.nic.rx_missed,
                self.nic.rx_nombuf,
            ));
        }
        if self.cores.rx_packets != self.nic.rx_delivered {
            return Err(format!(
                "cores.rx_packets ({}) != nic.rx_delivered ({})",
                self.cores.rx_packets, self.nic.rx_delivered,
            ));
        }
        if self.cores.rx_packets != self.cores.parse_failures + self.cores.packet_filter.runs {
            return Err(format!(
                "cores.rx_packets ({}) != parse_failures ({}) + packet_filter.runs ({})",
                self.cores.rx_packets, self.cores.parse_failures, self.cores.packet_filter.runs,
            ));
        }
        // Dispatch accounting: every handoff to the delivery layer is
        // attributed to exactly one outcome — executed, shed on a full
        // ring, or lost to a dead worker. Holds for inline subs too
        // (delivered == executed, drops zero).
        for sub in &self.subs {
            let attributed = sub.cb_executed + sub.cb_dropped_full + sub.cb_dropped_disconnected;
            if sub.delivered != attributed {
                return Err(format!(
                    "sub {}: delivered ({}) != cb_executed ({}) + cb_dropped_full ({}) + \
                     cb_dropped_disconnected ({})",
                    sub.name,
                    sub.delivered,
                    sub.cb_executed,
                    sub.cb_dropped_full,
                    sub.cb_dropped_disconnected,
                ));
            }
        }
        self.cores.check_conn_accounting()
    }
}

/// Builds a [`MultiRuntime`]: register any number of typed subscriptions,
/// each with its own filter and callback, then [`RuntimeBuilder::build`]
/// merges the filters into a single [`CompiledFilter`] trie so the whole
/// set is decided in one pass per packet.
pub struct RuntimeBuilder {
    config: RuntimeConfig,
    sources: Vec<String>,
    subs: Vec<Arc<dyn ErasedSubscription>>,
    modes: Vec<Option<DispatchMode>>,
    trace: Option<TraceConfig>,
}

impl RuntimeBuilder {
    /// Starts a builder over `config`.
    pub fn new(config: RuntimeConfig) -> Self {
        RuntimeBuilder {
            config,
            sources: Vec::new(),
            subs: Vec::new(),
            modes: Vec::new(),
            trace: None,
        }
    }

    /// Enables sampled per-flow causal tracing and the always-on
    /// anomaly flight recorder for every run of the built runtime (see
    /// [`retina_telemetry::trace`]).
    #[must_use]
    pub fn trace(mut self, config: TraceConfig) -> Self {
        self.trace = Some(config);
        self
    }

    /// Registers a subscription: deliver traffic matching `filter` as
    /// values of type `S` to `callback`. Named `sub<N>` in telemetry;
    /// use [`RuntimeBuilder::subscribe_named`] to pick the name.
    pub fn subscribe<S: Subscribable>(
        self,
        filter: &str,
        callback: impl Fn(S) + Send + Sync + 'static,
    ) -> Self {
        let name = format!("sub{}", self.subs.len());
        self.subscribe_named(name, filter, callback)
    }

    /// [`RuntimeBuilder::subscribe`] with an explicit telemetry name.
    pub fn subscribe_named<S: Subscribable>(
        mut self,
        name: impl Into<String>,
        filter: &str,
        callback: impl Fn(S) + Send + Sync + 'static,
    ) -> Self {
        self.sources.push(filter.to_string());
        self.subs
            .push(Arc::new(TypedSubscription::<S>::new(name, callback)));
        self.modes.push(None);
        self
    }

    /// Sets the callback execution model of the most recently registered
    /// subscription (§5.3 execution models: [`DispatchMode::Inline`],
    /// a [`DispatchMode::Shared`] pool, or a [`DispatchMode::Dedicated`]
    /// worker).
    ///
    /// # Panics
    /// Panics if no subscription has been registered yet.
    #[must_use]
    pub fn dispatch(mut self, mode: DispatchMode) -> Self {
        *self
            .modes
            .last_mut()
            .expect("dispatch() must follow a subscribe call") = Some(mode);
        self
    }

    /// Registers a subscription with an explicit dispatch mode in one
    /// call (`subscribe_named` + [`RuntimeBuilder::dispatch`]).
    pub fn subscribe_dispatched<S: Subscribable>(
        self,
        name: impl Into<String>,
        filter: &str,
        mode: DispatchMode,
        callback: impl Fn(S) + Send + Sync + 'static,
    ) -> Self {
        self.subscribe_named(name, filter, callback).dispatch(mode)
    }

    /// Merges the registered filters and builds the runtime. The merged
    /// trie is compiled exactly once; hardware rules are synthesized from
    /// it (the union of every subscription's rules, deduplicated).
    ///
    /// The semantic analyzer runs first, against the configured registry
    /// and the device's capabilities: any E-code diagnostic (unsatisfiable
    /// conjunction, contradictory constraints, a filter with no satisfiable
    /// disjunct, …) rejects the build with [`RuntimeError::Filter`] carrying
    /// the same code and message `retina-flint` and the `filter!` macro
    /// report. W-code warnings are recorded on the runtime and surfaced in
    /// every [`RunReport::filter_warnings`].
    pub fn build(self) -> Result<MultiRuntime<CompiledFilter>, RuntimeError> {
        if self.subs.is_empty() {
            return Err(RuntimeError::Subscriptions(
                "no subscriptions registered".to_string(),
            ));
        }
        let srcs: Vec<&str> = self
            .sources
            .iter()
            .map(std::string::String::as_str)
            .collect();
        let mut warnings = Vec::new();
        // Lex/parse errors fall through to build_union below, which
        // reports them with the subscription's source text.
        if let Ok(analysis) = retina_filter::analyze_union(
            &srcs,
            &self.config.filter_registry,
            Some(&self.config.device.caps),
        ) {
            if analysis.has_errors() {
                let msg = analysis
                    .errors()
                    .map(retina_filter::Diagnostic::summary)
                    .collect::<Vec<_>>()
                    .join("; ");
                return Err(RuntimeError::Filter(msg));
            }
            warnings = analysis
                .warnings()
                .map(retina_filter::Diagnostic::summary)
                .collect();
        }
        let filter = CompiledFilter::build_union(&srcs, &self.config.filter_registry)
            .map_err(|e| RuntimeError::Filter(e.to_string()))?;
        let mut rt = MultiRuntime::new(self.config, filter, self.subs)?;
        rt.filter_warnings = warnings;
        for (i, mode) in self.modes.into_iter().enumerate() {
            if let Some(mode) = mode {
                rt.set_dispatch_mode(i, mode);
            }
        }
        if let Some(tc) = self.trace {
            rt.set_trace_config(tc);
        }
        Ok(rt)
    }
}

/// The Retina runtime: N subscriptions bound to a virtual NIC and worker
/// cores, served by one shared pipeline.
pub struct MultiRuntime<F: FilterFns + 'static> {
    pub(crate) config: RuntimeConfig,
    pub(crate) filter: Arc<F>,
    pub(crate) subs: Vec<Arc<dyn ErasedSubscription>>,
    pub(crate) modes: Vec<DispatchMode>,
    nic: Arc<VirtualNic>,
    gauges: Arc<RuntimeGauges>,
    shed: Arc<ShedState>,
    hub: Arc<DispatchHub>,
    epochs: Arc<EpochState<F>>,
    filter_warnings: Vec<String>,
    pub(crate) trace_config: Option<TraceConfig>,
    trace_handle: TraceHandle,
}

impl<F: FilterFns + 'static> MultiRuntime<F> {
    /// Creates a runtime from a configuration, a (possibly merged)
    /// filter, and the subscription table the filter was built for.
    ///
    /// The filter is used as-is: hardware rules come from
    /// [`FilterFns::hw_rules`], so the filter is compiled exactly once
    /// (interpreted filters hold their trie; macro-generated filters
    /// re-derive it here, once, instead of per-call).
    pub fn new(
        config: RuntimeConfig,
        filter: F,
        subs: Vec<Arc<dyn ErasedSubscription>>,
    ) -> Result<Self, RuntimeError> {
        if subs.len() != filter.num_subscriptions() {
            return Err(RuntimeError::Subscriptions(format!(
                "{} subscriptions registered but the filter decides {}",
                subs.len(),
                filter.num_subscriptions(),
            )));
        }
        if subs.len() > SubscriptionSet::MAX {
            return Err(RuntimeError::Subscriptions(format!(
                "at most {} subscriptions per runtime (got {})",
                SubscriptionSet::MAX,
                subs.len(),
            )));
        }
        let mut device = config.device.clone();
        device.num_queues = config.cores;
        let nic = Arc::new(VirtualNic::new(&device));
        if config.hw_filtering {
            // Synthesize device-compatible rules (§4.1) straight from the
            // filter — for a merged filter, the deduplicated union of
            // every subscription's rules.
            let rules = filter
                .hw_rules(device.caps, &config.filter_registry)
                .map_err(|e| RuntimeError::HwFilter(e.to_string()))?;
            for rule in rules {
                nic.install_rule(rule)
                    .map_err(|e| RuntimeError::HwFilter(e.to_string()))?;
            }
        }
        let gauges = Arc::new(RuntimeGauges::new(config.cores as usize));
        let modes = vec![DispatchMode::from_callback_mode(config.callback_mode); subs.len()];
        let hub = Arc::new(DispatchHub::new(&vec![0u64; subs.len()]));
        let epochs = Arc::new(EpochState::new(config.cores.max(1) as usize));
        Ok(MultiRuntime {
            config,
            filter: Arc::new(filter),
            subs,
            modes,
            nic,
            gauges,
            shed: Arc::new(ShedState::new()),
            hub,
            epochs,
            filter_warnings: Vec::new(),
            trace_config: None,
            trace_handle: Arc::new(std::sync::RwLock::new(None)),
        })
    }

    /// The swap ledger: one [`crate::SwapEvent`] per completed live
    /// reconfiguration, oldest first.
    pub fn swap_events(&self) -> Vec<crate::SwapEvent> {
        self.epochs.events_snapshot()
    }

    /// Enables (or reconfigures) per-flow tracing for subsequent runs.
    /// Every [`MultiRuntime::run`] / [`MultiRuntime::run_stepped`] then
    /// builds a fresh [`Tracer`] and attaches its [`TraceReport`] to the
    /// returned [`RunReport`].
    pub fn set_trace_config(&mut self, config: TraceConfig) {
        self.trace_config = Some(config);
    }

    /// Shared slot holding the live run's tracer (empty between runs).
    /// Long-lived observers — the governor, the monitor — keep this
    /// handle and fire flight-recorder triggers through whichever tracer
    /// is installed when an anomaly hits.
    pub fn trace_handle(&self) -> TraceHandle {
        Arc::clone(&self.trace_handle)
    }

    /// Sets subscription `i`'s callback execution model (effective at
    /// the next [`MultiRuntime::run`]).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn set_dispatch_mode(&mut self, i: usize, mode: DispatchMode) {
        self.modes[i] = mode;
    }

    /// Current per-subscription dispatch modes, in registration order.
    pub fn dispatch_modes(&self) -> &[DispatchMode] {
        &self.modes
    }

    /// Live per-subscription dispatch stats (queue depth, drops); the
    /// governor samples this as its queue-pressure input.
    pub fn dispatch_hub(&self) -> Arc<DispatchHub> {
        Arc::clone(&self.hub)
    }

    /// Filter-analyzer warnings recorded at build time (also copied into
    /// every [`RunReport`] this runtime produces).
    pub fn filter_warnings(&self) -> &[String] {
        &self.filter_warnings
    }

    /// The virtual NIC (for sink-fraction control and port stats).
    pub fn nic(&self) -> &Arc<VirtualNic> {
        &self.nic
    }

    /// Live gauges for external monitoring.
    pub fn gauges(&self) -> Arc<RuntimeGauges> {
        Arc::clone(&self.gauges)
    }

    /// The runtime's shedding flags (shared with workers; a governor —
    /// or a test — flips them and workers pick the change up on their
    /// next burst).
    pub fn shed_state(&self) -> Arc<ShedState> {
        Arc::clone(&self.shed)
    }

    /// Starts an overload governor against this runtime. Call before
    /// (or during) [`MultiRuntime::run`]; stop it after the run to
    /// collect the decision stream.
    pub fn start_governor(&self, config: GovernorConfig) -> Governor {
        Governor::start_traced(
            Arc::clone(&self.nic),
            Arc::clone(&self.gauges),
            Arc::clone(&self.shed),
            Some(Arc::clone(&self.hub)),
            config,
            Arc::clone(&self.trace_handle),
        )
    }

    /// Runs the pipeline over a traffic source to completion, returning
    /// aggregate statistics.
    pub fn run(&mut self, source: impl TrafficSource + 'static) -> RunReport {
        let ingest_done = Arc::new(AtomicBool::new(false));
        let start = Instant::now();

        // Fresh tracer per run (lanes are sized for this run's core and
        // worker counts). Installed in the shared handle so long-lived
        // observers (governor, monitor) can fire triggers into it.
        let tracer = self.trace_config.clone().map(|tc| {
            let clock: Arc<dyn Fn() -> u64 + Send + Sync> =
                Arc::new(move || start.elapsed().as_nanos() as u64);
            Arc::new(Tracer::new(
                tc,
                self.config.cores.max(1) as usize,
                self.subs.len() + self.config.shared_workers.max(1),
                clock,
            ))
        });
        if let Some(t) = &tracer {
            *self.trace_handle.write().unwrap() = Some(Arc::clone(t));
            self.nic.set_tracer(Arc::clone(t));
        }

        // Ingest thread: the wire feeding the NIC.
        let ingest = {
            let nic = Arc::clone(&self.nic);
            let done = Arc::clone(&ingest_done);
            let paced = self.config.paced_ingest;
            let mut source = source;
            std::thread::spawn(move || {
                let mut batch: Vec<(Bytes, u64)> = Vec::with_capacity(512);
                let mut max_ts = 0u64;
                loop {
                    batch.clear();
                    if !source.next_batch(&mut batch) {
                        break;
                    }
                    for (frame, ts) in batch.drain(..) {
                        max_ts = max_ts.max(ts);
                        if paced {
                            nic.ingest_paced(frame, ts);
                        } else {
                            nic.ingest(frame, ts);
                        }
                    }
                }
                done.store(true, Ordering::Release);
                max_ts
            })
        };

        // Callback execution model (§5.3): per-subscription dispatch —
        // inline on the RX core, a shared worker pool, or a dedicated
        // worker, each fed over per-(core, subscription) SPSC rings.
        let cores = self.config.cores.max(1) as usize;
        let capacities: Vec<u64> = self
            .modes
            .iter()
            .zip(&self.subs)
            .map(|(m, sub)| {
                if sub.has_callback() {
                    (m.depth() * cores) as u64
                } else {
                    0
                }
            })
            .collect();
        self.hub.configure(&capacities);
        let delay: CallbackDelayFn = {
            let nic = Arc::clone(&self.nic);
            Arc::new(move |sub, seq| nic.fault_callback_delay(sub, seq))
        };
        let (per_core_sinks, dispatcher) = channel_dispatcher(
            &self.subs,
            &self.modes,
            cores,
            self.config.shared_workers,
            &self.hub,
            &delay,
            tracer.as_ref(),
        );

        // Which subscriptions take the packet-level fast path (callback
        // straight off the packet filter, no connection state).
        let mut packet_mask = SubscriptionSet::empty();
        for (i, sub) in self.subs.iter().enumerate() {
            if sub.level() == Level::Packet {
                packet_mask.insert(i);
            }
        }

        // Epoch 0: bundle this run's initial configuration and publish
        // it, so workers and any SwapController share one view. The
        // generation counter persists across runs (and swaps), so a
        // second run continues where the last one left off.
        let gen0 = self.epochs.generation.load(Ordering::Acquire);
        let epoch0: Arc<ConfigEpoch<F>> = Arc::new(ConfigEpoch {
            generation: gen0,
            filter: Arc::clone(&self.filter),
            subs: self.subs.clone(),
            remap: Vec::new(),
            packet_mask,
            sinks: Mutex::new(per_core_sinks.into_iter().map(Some).collect()),
            hub: Arc::clone(&self.hub),
            dispatcher: Mutex::new(Some(dispatcher)),
        });
        {
            let _serial = self.epochs.swap_lock.lock().unwrap();
            *self.epochs.current.write().unwrap() = Some(epoch0);
            // Ack slots start at gen0 (not EXITED) so a swap issued
            // before a worker's first poll still waits for it.
            for ack in &self.epochs.acks {
                ack.store(gen0, Ordering::Release);
            }
        }
        self.gauges.note_config_epoch(gen0);

        // Worker threads: one per core, each claiming its own sink set
        // from the epoch (SPSC producers must never be shared between
        // cores).
        let mut workers = Vec::new();
        for core in 0..cores {
            let core_trace = tracer.as_ref().map(|t| (Arc::clone(t), t.rx_lane(core)));
            let core = core as u16;
            let nic = Arc::clone(&self.nic);
            let epochs = Arc::clone(&self.epochs);
            let done = Arc::clone(&ingest_done);
            let gauges = Arc::clone(&self.gauges);
            let shed = Arc::clone(&self.shed);
            let config = self.config.clone();
            workers.push(std::thread::spawn(move || {
                worker_loop::<F>(
                    core,
                    &nic,
                    &epochs,
                    &done,
                    &gauges,
                    &shed,
                    &config,
                    core_trace.as_ref(),
                )
            }));
        }

        let sim_duration_ns = ingest.join().expect("ingest thread panicked");
        let mut cores = CoreStats::default();
        let mut tally_map: BTreeMap<String, SubTally> = BTreeMap::new();
        for w in workers {
            let (stats, named) = w.join().expect("worker thread panicked");
            cores.merge(&stats);
            for (name, t) in named {
                tally_map.entry(name).or_default().merge(&t);
            }
        }
        // Take the final epoch (whatever generation was current when
        // the run drained) under the swap lock, so a racing swap either
        // completed before shutdown or sees NotRunning.
        let final_epoch = {
            let _serial = self.epochs.swap_lock.lock().unwrap();
            self.epochs.current.write().unwrap().take()
        }
        .expect("epoch 0 was published at run start");
        // Unclaimed sink sets keep SPSC producers alive: drop them, then
        // join the final dispatch fabric (workers dropped their claimed
        // sinks on exit, disconnecting the remaining rings).
        {
            let mut sinks = final_epoch.sinks.lock().unwrap();
            for s in sinks.iter_mut() {
                s.take();
            }
        }
        if let Some(d) = final_epoch.dispatcher.lock().unwrap().take() {
            let _ = d.join();
        }
        let dispatch = final_epoch.hub.snapshots();
        // Dispatch counters of subscriptions removed by swaps, folded
        // back in by name (a name removed and re-added reports one
        // whole-run row).
        let retired: Vec<(String, retina_telemetry::DispatchSnapshot)> = self
            .epochs
            .retired
            .lock()
            .unwrap()
            .drain(..)
            .map(|(name, stats)| (name, stats.snapshot()))
            .collect();
        let mut subs: Vec<SubReport> = Vec::with_capacity(final_epoch.subs.len());
        for (i, sub) in final_epoch.subs.iter().enumerate() {
            let name = sub.name().to_string();
            let t = tally_map.remove(&name).unwrap_or_default();
            let d = &dispatch[i];
            let mut report = SubReport {
                name,
                delivered: t.delivered,
                discarded: t.discarded,
                cb_executed: d.executed,
                cb_dropped_full: d.dropped_full,
                cb_dropped_disconnected: d.dropped_disconnected,
                queue_depth_peak: d.depth_peak,
                queue_capacity: d.capacity,
            };
            for (rname, rs) in &retired {
                if *rname == report.name {
                    report.cb_executed += rs.executed;
                    report.cb_dropped_full += rs.dropped_full;
                    report.cb_dropped_disconnected += rs.dropped_disconnected;
                    report.queue_depth_peak = report.queue_depth_peak.max(rs.depth_peak);
                }
            }
            subs.push(report);
        }
        // Subscriptions removed by a swap and never re-added: report
        // their tallies plus banked dispatch counters (sorted by name —
        // BTreeMap iteration order).
        for (name, t) in tally_map {
            let mut report = SubReport {
                name,
                delivered: t.delivered,
                discarded: t.discarded,
                cb_executed: 0,
                cb_dropped_full: 0,
                cb_dropped_disconnected: 0,
                queue_depth_peak: 0,
                queue_capacity: 0,
            };
            for (rname, rs) in &retired {
                if *rname == report.name {
                    report.cb_executed += rs.executed;
                    report.cb_dropped_full += rs.dropped_full;
                    report.cb_dropped_disconnected += rs.dropped_disconnected;
                    report.queue_depth_peak = report.queue_depth_peak.max(rs.depth_peak);
                    report.queue_capacity = report.queue_capacity.max(rs.capacity);
                }
            }
            subs.push(report);
        }
        let mbuf_high_water = self.nic.mempool().high_water();
        self.gauges.note_mbuf_high_water(mbuf_high_water);
        let mut report = RunReport {
            elapsed: start.elapsed(),
            nic: self.nic.stats(),
            cores,
            subs,
            sim_duration_ns,
            mbuf_high_water,
            conn_arena_bytes: self.gauges.conn_arena_bytes(),
            filter_warnings: self.filter_warnings.clone(),
            trace: None,
        };
        if let Some(t) = &tracer {
            if report.check_accounting().is_err() {
                t.trigger(TriggerReason::AccountingFailure, 0);
            }
            report.trace = Some(t.report());
            self.nic.clear_tracer();
            *self.trace_handle.write().unwrap() = None;
        }
        report
    }
}

impl MultiRuntime<CompiledFilter> {
    /// A handle for live-swapping subscriptions while
    /// [`MultiRuntime::run`] is in flight (see [`crate::reconfig`]).
    ///
    /// Obtain it *before* calling `run()` — the controller holds only
    /// shared state, so it works from any thread while `run()` borrows
    /// the runtime. Swapping requires the compiled (interpreted)
    /// filter because the new subscription set's sources are compiled
    /// at swap time.
    pub fn swap_controller(&self) -> SwapController {
        SwapController {
            epochs: Arc::clone(&self.epochs),
            nic: Arc::clone(&self.nic),
            gauges: Arc::clone(&self.gauges),
            config: self.config.clone(),
            trace: Arc::clone(&self.trace_handle),
        }
    }
}

/// The single-subscription runtime from Figure 1: one filter, one
/// callback. A thin wrapper over a one-entry [`MultiRuntime`].
pub struct Runtime<S: Subscribable, F: FilterFns + 'static> {
    inner: MultiRuntime<F>,
    _marker: std::marker::PhantomData<fn(S)>,
}

impl<S: Subscribable, F: FilterFns + 'static> Runtime<S, F> {
    /// Creates a runtime from a configuration, filter, and callback
    /// (Figure 1's `Runtime::new(cfg, filter, callback)`).
    pub fn new(
        config: RuntimeConfig,
        filter: F,
        callback: impl Fn(S) + Send + Sync + 'static,
    ) -> Result<Self, RuntimeError> {
        let sub: Arc<dyn ErasedSubscription> =
            Arc::new(TypedSubscription::<S>::new("sub0", callback));
        Ok(Runtime {
            inner: MultiRuntime::new(config, filter, vec![sub])?,
            _marker: std::marker::PhantomData,
        })
    }

    /// The virtual NIC (for sink-fraction control and port stats).
    pub fn nic(&self) -> &Arc<VirtualNic> {
        self.inner.nic()
    }

    /// Live gauges for external monitoring.
    pub fn gauges(&self) -> Arc<RuntimeGauges> {
        self.inner.gauges()
    }

    /// The runtime's shedding flags (shared with workers).
    pub fn shed_state(&self) -> Arc<ShedState> {
        self.inner.shed_state()
    }

    /// Starts an overload governor against this runtime.
    pub fn start_governor(&self, config: GovernorConfig) -> Governor {
        self.inner.start_governor(config)
    }

    /// Sets the subscription's callback execution model (effective at
    /// the next [`Runtime::run`]).
    pub fn set_dispatch_mode(&mut self, mode: DispatchMode) {
        self.inner.set_dispatch_mode(0, mode);
    }

    /// Live dispatch stats (queue depth, drops by reason).
    pub fn dispatch_hub(&self) -> Arc<DispatchHub> {
        self.inner.dispatch_hub()
    }

    /// Runs the pipeline over a traffic source to completion, returning
    /// aggregate statistics.
    pub fn run(&mut self, source: impl TrafficSource + 'static) -> RunReport {
        self.inner.run(source)
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop<F: FilterFns>(
    core: u16,
    nic: &VirtualNic,
    epochs: &EpochState<F>,
    ingest_done: &AtomicBool,
    gauges: &RuntimeGauges,
    shed: &ShedState,
    config: &RuntimeConfig,
    trace: Option<&(Arc<Tracer>, usize)>,
) -> (CoreStats, Vec<(String, SubTally)>) {
    // Claim the current epoch and this core's sink set. run() publishes
    // epoch 0 before spawning workers, but a swap may already have
    // advanced the generation — claiming whatever is current (and
    // acking it) keeps the grace-period protocol consistent either way.
    let mut epoch = epochs
        .current
        .read()
        .unwrap()
        .clone()
        .expect("run() publishes epoch 0 before spawning workers");
    let mut cur_gen = epoch.generation;
    let mut sinks = epoch.sinks.lock().unwrap()[core as usize]
        .take()
        .expect("each worker claims its sink set exactly once");
    let mut filter = Arc::clone(&epoch.filter);
    let mut packet_mask = epoch.packet_mask;
    // (name, tally) pairs of subscriptions removed by swaps this worker
    // observed, reported alongside the final epoch's tallies.
    let mut removed_tallies: Vec<(String, SubTally)> = Vec::new();
    let mut tracker: ConnTracker<F> = ConnTracker::with_registry(
        Arc::clone(&filter),
        &epoch.subs,
        config.timeouts,
        config.ooo_capacity,
        config.profile_stages,
        config.parsers.clone(),
    );
    if let Some((t, lane)) = trace {
        tracker.set_tracer(Arc::clone(t), *lane);
    }
    epochs.acks[core as usize].store(cur_gen, Ordering::Release);
    let mut burst = Vec::with_capacity(config.burst);
    let mut max_ts = 0u64;
    let mut since_advance = 0usize;
    let profile = config.profile_stages;

    // Shared per-delivery bookkeeping: count the callback and time it.
    macro_rules! deliver {
        ($idx:expr, $tid:expr, $out:expr) => {{
            let tc = profile.then(rdtsc);
            tracker.stats.callbacks.runs += 1;
            sinks[$idx].deliver($out, $tid);
            if let Some(t) = tc {
                tracker
                    .stats
                    .callbacks
                    .record_cycles(rdtsc().wrapping_sub(t));
            }
        }};
    }

    loop {
        // Epoch pickup: one Acquire load per burst. On a generation
        // change, adopt the new configuration at this safe point —
        // drain removed subscriptions (their data still routes through
        // the OLD sinks), rebind surviving per-connection state, claim
        // the new sink set, then acknowledge so the publisher's grace
        // period can end. Swaps are serialized and each waits out its
        // grace period, so the generation is never more than one ahead.
        let published = epochs.generation.load(Ordering::Acquire);
        if published != cur_gen {
            if let Some(delay) = nic.fault_swap_pickup_delay(core) {
                std::thread::sleep(delay);
            }
            let new_epoch = epochs
                .current
                .read()
                .unwrap()
                .clone()
                .expect("a published generation always has an epoch");
            let banked = tracker.rebind(
                Arc::clone(&new_epoch.filter),
                &new_epoch.subs,
                &new_epoch.remap,
            );
            for (idx, tid, out) in tracker.take_outputs() {
                deliver!(idx as usize, tid, out);
            }
            removed_tallies.extend(banked);
            epoch = new_epoch;
            sinks = epoch.sinks.lock().unwrap()[core as usize]
                .take()
                .expect("each worker claims its sink set exactly once");
            filter = Arc::clone(&epoch.filter);
            packet_mask = epoch.packet_mask;
            cur_gen = epoch.generation;
            if let Some(us) = epochs.note_pickup(core as usize, cur_gen) {
                gauges.note_swap_pickup_lag(core as usize, us);
            }
            epochs.acks[core as usize].store(cur_gen, Ordering::Release);
        }
        // Injected worker-core slowdown (fault layer): stall before
        // polling, as a scheduling hiccup would.
        if let Some(delay) = nic.fault_worker_delay(core) {
            std::thread::sleep(delay);
        }
        burst.clear();
        let n = nic.rx_burst(core, &mut burst, config.burst);
        if n == 0 {
            if ingest_done.load(Ordering::Acquire) {
                // Final drain. A single extra poll is not enough: an
                // injected RX-ring stall makes rx_burst return 0 while
                // descriptors still sit in the ring, and a fault layer
                // may hold frames in flight for later redelivery. Exit
                // only once the ring is truly empty and no injected
                // fault still holds frames; until then keep polling.
                if nic.ring_depth(core) == 0 && nic.faults_in_flight() == 0 {
                    break;
                }
                std::thread::yield_now();
                continue;
            } else {
                // On busy hosts (or single-CPU machines) yielding lets the
                // ingest thread and sibling workers make progress.
                std::thread::yield_now();
                continue;
            }
        }
        // Pick up governor decisions once per burst: a relaxed load,
        // so shedding costs nothing on the per-packet path.
        tracker.set_shed_parsing(shed.parsing_shed());
        for mbuf in burst.drain(..) {
            tracker.stats.rx_packets += 1;
            tracker.stats.rx_bytes += mbuf.len() as u64;
            max_ts = max_ts.max(mbuf.timestamp_ns);

            let Ok(pkt) = ParsedPacket::parse(mbuf.data()) else {
                tracker.stats.parse_failures += 1;
                continue;
            };

            // Software packet filter (§4.1) — one walk decides every
            // subscription.
            let tf = profile.then(rdtsc);
            let verdict = filter.packet_filter_set(&pkt);
            tracker.stats.packet_filter.runs += 1;
            if let Some(t) = tf {
                tracker
                    .stats
                    .packet_filter
                    .record_cycles(rdtsc().wrapping_sub(t));
            }
            let tid = match trace {
                Some((t, lane)) => {
                    // The NIC stamped the symmetric RSS hash on the
                    // mbuf; the sampling decision is one finalizer.
                    let tid = t.sample_flow(mbuf.rss_hash);
                    if tid != 0 {
                        t.emit(
                            *lane,
                            tid,
                            TraceKind::PacketVerdict,
                            0,
                            verdict.matched.bits(),
                            verdict.live.bits(),
                        );
                        for f in verdict.frontiers.iter() {
                            t.emit(*lane, tid, TraceKind::FilterNode, 0, u64::from(f), 0);
                        }
                    }
                    tid
                }
                None => 0,
            };
            if verdict.is_no_match() {
                continue;
            }

            // Bypass: packet-level subscriptions whose filter matched
            // terminally get their callback straight off the packet
            // filter, no connection state.
            let bypass = verdict.matched & packet_mask;
            for i in bypass.iter() {
                let tc = profile.then(rdtsc);
                if sinks[i].deliver_from_mbuf(&mbuf, tid) {
                    tracker.stats.callbacks.runs += 1;
                    tracker.sub_tallies[i].delivered += 1;
                    if let Some(t) = tc {
                        tracker
                            .stats
                            .callbacks
                            .record_cycles(rdtsc().wrapping_sub(t));
                    }
                }
            }

            let verdict = PacketVerdict {
                matched: verdict.matched - packet_mask,
                live: verdict.live,
                frontiers: verdict.frontiers,
            };
            if verdict.is_no_match() {
                continue;
            }
            tracker.process(&mbuf, &pkt, verdict);
            for (idx, tid, out) in tracker.take_outputs() {
                deliver!(idx as usize, tid, out);
            }
        }
        since_advance += 1;
        if since_advance >= 64 {
            since_advance = 0;
            tracker.advance(max_ts);
            for (idx, tid, out) in tracker.take_outputs() {
                deliver!(idx as usize, tid, out);
            }
            gauges.worker_update(
                core as usize,
                &tracker.stats,
                tracker.connections(),
                tracker.state_bytes(),
                tracker.arena_bytes(),
                max_ts,
            );
        }
    }

    // Drain still-open connections at end of input.
    tracker.drain();
    for (idx, tid, out) in tracker.take_outputs() {
        deliver!(idx as usize, tid, out);
    }
    gauges.worker_update(
        core as usize,
        &tracker.stats,
        0,
        0,
        tracker.arena_bytes(),
        max_ts,
    );
    // Exited: any in-flight (or future) grace period treats this core
    // as having acknowledged every generation.
    epochs.acks[core as usize].store(EXITED, Ordering::Release);
    let mut named: Vec<(String, SubTally)> = epoch
        .subs
        .iter()
        .zip(&tracker.sub_tallies)
        .map(|(s, t)| (s.name().to_string(), *t))
        .collect();
    named.extend(removed_tallies);
    (tracker.stats, named)
}
