//! The per-core connection tracker: Retina's subscription-specific state
//! machine (Figure 4), generalized to N concurrent subscriptions.
//!
//! Every tracked connection moves through the states
//!
//! ```text
//! PROBE --(protocol identified)--> [conn filter] --> PARSE | TRACK | DEL
//! PARSE --(session parsed)------> [session filter] --> deliver | DEL
//! TRACK --(terminate/expire)----> deliver connection-level data
//! ```
//!
//! with the transitions derived automatically from each subscription's
//! level, the merged filter's layers, and each protocol module's
//! `session_match_state`/`session_nomatch_state`. The tracker is where
//! the paper's lazy-reconstruction wins come from: connections that fail
//! the connection or session filter stop consuming reassembly, parsing,
//! and memory immediately, and subscriptions that are done with a
//! connection (e.g. a delivered TLS handshake) remove it mid-stream.
//!
//! In the multi-subscription design the connection carries two
//! [`SubscriptionSet`]s — `matched` (filter fully satisfied, data being
//! delivered) and `live` (filter still undecided) — and every need
//! (reassembly, probing, parsing, per-packet hooks) is computed as the
//! **union over the still-active subscriptions**. As subscriptions fall
//! off (filter rejection or early completion), their per-connection
//! state is dropped eagerly; the connection itself leaves the table when
//! the last subscription does.

// Narrowing casts in this file are intentional: tick, index, and counter arithmetic narrows to compact fields by design.
#![allow(clippy::cast_possible_truncation)]

use std::collections::HashMap;
use std::sync::Arc;

use retina_conntrack::{
    ConnEntry, ConnKey, ConnTable, Dir, FiveTuple, Reassembled, TcpFlow, TimeoutConfig,
};
use retina_filter::{FilterFns, Frontiers, PacketVerdict, SubscriptionSet};
use retina_nic::Mbuf;
use retina_protocols::{
    ConnParser, Direction, ParseResult, ParserRegistry, ProbeResult, SessionState,
};
use retina_support::hash::FlowHashState;
use retina_telemetry::{trace::TraceConnEnd, TraceKind, Tracer};
use retina_wire::ParsedPacket;

use crate::erased::{ErasedOutput, ErasedSubscription, ErasedTracked, TypedSubscription};
use crate::stats::CoreStats;
use crate::subscription::{Level, Subscribable};
use crate::util::rdtsc;

/// Cap on bytes buffered per direction while probing for the protocol.
const PROBE_BUFFER_CAP: usize = 8 * 1024;

/// Probing state: accumulated stream prefixes plus live parser candidates.
struct ProbeState {
    parsers: Vec<Box<dyn ConnParser>>,
    buf_ts: Vec<u8>,
    buf_tc: Vec<u8>,
}

/// Connection processing phase (Figure 4 states), shared by all
/// subscriptions on the connection: the probe/parse machinery runs once
/// per connection no matter how many subscriptions consume it.
enum Phase {
    /// Probing the stream prefix for the application-layer protocol.
    Probing(ProbeState),
    /// Parsing the identified protocol.
    Parsing {
        parser: Box<dyn ConnParser>,
        service: &'static str,
    },
    /// Tracking without app-layer processing (counters + delivery hooks).
    Tracking,
    /// Every subscription fell off: retained as a tombstone so subsequent
    /// packets do no work; removed by timeout.
    Dropped,
}

/// Per-connection tracker state.
struct Conn {
    flow: TcpFlow,
    /// Per-subscription reconstruction state; `None` once the
    /// subscription fell off the connection (state dropped eagerly).
    tracked: Vec<Option<Box<dyn ErasedTracked>>>,
    phase: Phase,
    /// Packet-filter frontiers (opaque resume points for the conn and
    /// session sub-filters).
    frontiers: Frontiers,
    /// Active subscriptions whose filter fully matched.
    matched: SubscriptionSet,
    /// Active subscriptions whose filter is still undecided.
    live: SubscriptionSet,
    /// Active subscriptions still needing probe/parse progress: the
    /// still-live ones plus matched session-level ones whose protocol
    /// keeps producing sessions.
    want_parse: SubscriptionSet,
    /// Whether any subscription completed early on this connection.
    done_any: bool,
    /// Probed service name (set on protocol identification).
    service: Option<&'static str>,
    /// Flow trace id (0 = unsampled), fixed at insert time and carried
    /// to every tracepoint and delivery this connection produces.
    trace_id: u64,
}

impl Conn {
    fn active(&self) -> SubscriptionSet {
        self.matched | self.live
    }
}

/// Why a connection left the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FinalizeReason {
    Terminated,
    Expired,
    Drained,
}

/// Which filter stage rejected a discarded connection. Every discard is
/// attributed to exactly one cause so `conns_discarded` always equals
/// the sum of the cause counters (the drop-taxonomy invariant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DiscardCause {
    ConnFilter,
    SessionFilter,
}

/// Disposition after handling a unit of stream data.
#[derive(PartialEq, Eq, Clone, Copy, Debug)]
enum Disposition {
    Keep,
    /// Remove the connection now (every subscription finished with it).
    RemoveDone,
}

/// Per-subscription delivery/discard tallies for one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubTally {
    /// Subscription data items delivered.
    pub delivered: u64,
    /// Connections on which the subscription was engaged (matched or
    /// live) and then rejected by a later filter layer.
    pub discarded: u64,
}

impl SubTally {
    /// Merges another core's tally into this one.
    pub fn merge(&mut self, other: &SubTally) {
        self.delivered += other.delivered;
        self.discarded += other.discarded;
    }
}

/// Per-subscription spec resolved against the merged filter.
struct SubSpec {
    erased: Arc<dyn ErasedSubscription>,
    /// Protocols that can resolve this subscription's filter at the
    /// connection layer, plus the parsers its subscribable type needs.
    probe_protos: Vec<String>,
}

/// Disjoint borrows of the tracker shared by the stream-processing
/// helpers, so per-connection state (borrowed from the table) and
/// tracker-level state can be mutated together.
struct Ctx<'a, F: FilterFns> {
    filter: &'a Arc<F>,
    stats: &'a mut CoreStats,
    tallies: &'a mut [SubTally],
    outputs: &'a mut Vec<(u32, u64, ErasedOutput)>,
    session_mask: SubscriptionSet,
    stream_mask: SubscriptionSet,
    post_mask: SubscriptionSet,
    profile: bool,
    shed_parsing: bool,
    tracer: Option<&'a (Arc<Tracer>, usize)>,
}

impl<F: FilterFns> Ctx<'_, F> {
    /// Records a tracepoint for a sampled connection (no-op otherwise).
    fn trace(&self, conn: &Conn, kind: TraceKind, a: u64, b: u64) {
        if conn.trace_id != 0 {
            if let Some((t, lane)) = self.tracer {
                t.emit(*lane, conn.trace_id, kind, 0, a, b);
            }
        }
    }

    /// Delivers `on_match` for subscription `i` and tags its outputs.
    fn emit_match(
        &mut self,
        conn: &mut Conn,
        i: usize,
        service: Option<&str>,
        session: Option<&retina_protocols::Session>,
    ) {
        let mut tmp = Vec::new();
        if let Some(t) = conn.tracked[i].as_mut() {
            t.on_match(service, session, &conn.flow, &mut tmp);
        }
        for o in tmp {
            self.outputs.push((i as u32, conn.trace_id, o));
            self.tallies[i].delivered += 1;
        }
    }

    /// Drops subscription `i` from the connection after a filter
    /// rejection: state released, tally charged.
    fn kill_sub(&mut self, conn: &mut Conn, i: usize) {
        if conn.tracked[i].take().is_some() {
            self.tallies[i].discarded += 1;
        }
        conn.live.remove(i);
        conn.matched.remove(i);
        conn.want_parse.remove(i);
    }

    /// Retires subscription `i` because it is fully served (e.g. its TLS
    /// handshake was delivered and it needs nothing further).
    fn finish_sub(&mut self, conn: &mut Conn, i: usize) {
        conn.tracked[i] = None;
        conn.matched.remove(i);
        conn.want_parse.remove(i);
        conn.done_any = true;
    }

    /// Settles the connection after subscriptions changed state: keeps
    /// it (possibly demoted to plain tracking), removes it early when
    /// every subscription completed, or tombstones it when the last
    /// subscription was rejected (attributed to `cause`).
    fn settle(&mut self, conn: &mut Conn, cause: DiscardCause) -> Disposition {
        if !conn.active().is_empty() {
            if conn.want_parse.is_empty() && !matches!(conn.phase, Phase::Dropped) {
                conn.phase = Phase::Tracking;
            }
            Disposition::Keep
        } else if conn.done_any {
            Disposition::RemoveDone
        } else {
            self.stats.conns_discarded += 1;
            match cause {
                DiscardCause::ConnFilter => self.stats.discard_conn_filter += 1,
                DiscardCause::SessionFilter => self.stats.discard_session_filter += 1,
            }
            conn.phase = Phase::Dropped;
            Disposition::Keep
        }
    }

    /// The connection layer can no longer resolve anything (probe
    /// overflow, every candidate eliminated, or a parse error): all
    /// still-live subscriptions fall off, parsing stops.
    fn conn_layer_failed(&mut self, conn: &mut Conn) -> Disposition {
        for i in conn.live.iter() {
            self.kill_sub(conn, i);
        }
        conn.want_parse = SubscriptionSet::empty();
        self.settle(conn, DiscardCause::ConnFilter)
    }

    /// Applies the connection-filter verdict for a freshly identified
    /// `service`: live subscriptions either match now, stay live for the
    /// session filter, or fall off.
    fn apply_conn_verdict(&mut self, conn: &mut Conn, service: &'static str) {
        let v = self
            .filter
            .conn_filter_set(Some(service), &conn.frontiers, conn.live);
        self.trace(
            conn,
            TraceKind::ConnVerdict,
            v.matched.bits(),
            v.live.bits(),
        );
        let dying = conn.live - (v.matched | v.live);
        for i in dying.iter() {
            self.kill_sub(conn, i);
        }
        conn.live = v.live;
        for i in v.matched.iter() {
            conn.matched.insert(i);
            if !self.session_mask.contains(i) {
                // Connection-level (or packet-level) subscription fully
                // decided: deliver and stop parsing on its behalf.
                conn.want_parse.remove(i);
                self.emit_match(conn, i, Some(service), None);
            }
        }
    }

    /// Feeds in-order payload through probe/parse and the subscriptions'
    /// stream hooks.
    fn stream_data(
        &mut self,
        tuple: &FiveTuple,
        conn: &mut Conn,
        dir: Dir,
        data: &[u8],
    ) -> Disposition {
        let stream_subs = conn.matched & self.stream_mask;
        for i in stream_subs.iter() {
            if let Some(t) = conn.tracked[i].as_mut() {
                t.on_stream(dir, data);
            }
        }
        // Shed tier 1: the stream hooks above still run (packet
        // delivery work), but probe/parse make no progress.
        if self.shed_parsing && matches!(conn.phase, Phase::Probing(_) | Phase::Parsing { .. }) {
            return Disposition::Keep;
        }
        let pdir = match dir {
            Dir::OrigToResp => Direction::ToServer,
            Dir::RespToOrig => Direction::ToClient,
        };
        match &mut conn.phase {
            Phase::Probing(ps) => {
                let buf = match pdir {
                    Direction::ToServer => &mut ps.buf_ts,
                    Direction::ToClient => &mut ps.buf_tc,
                };
                if buf.len() + data.len() > PROBE_BUFFER_CAP {
                    return self.conn_layer_failed(conn);
                }
                buf.extend_from_slice(data);

                // Evaluate candidates against both accumulated prefixes.
                let mut selected = None;
                let mut alive = vec![true; ps.parsers.len()];
                for (i, parser) in ps.parsers.iter().enumerate() {
                    let mut not_for_us = 0;
                    let mut nonempty = 0;
                    for (buf, d) in [
                        (&ps.buf_ts, Direction::ToServer),
                        (&ps.buf_tc, Direction::ToClient),
                    ] {
                        if buf.is_empty() {
                            continue;
                        }
                        nonempty += 1;
                        // A panic while probing eliminates the candidate
                        // (recoverable), never the worker.
                        let probed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            parser.probe(buf, d)
                        }))
                        .unwrap_or_else(|_| {
                            self.stats.parser_panics += 1;
                            ProbeResult::NotForUs
                        });
                        match probed {
                            ProbeResult::Certain => {
                                selected = Some(i);
                                break;
                            }
                            ProbeResult::NotForUs => not_for_us += 1,
                            ProbeResult::Unsure => {}
                        }
                    }
                    if selected.is_some() {
                        break;
                    }
                    if nonempty > 0 && not_for_us == nonempty {
                        alive[i] = false;
                    }
                }
                if let Some(i) = selected {
                    let parser = ps.parsers.swap_remove(i);
                    let service = parser.name();
                    let buf_ts = std::mem::take(&mut ps.buf_ts);
                    let buf_tc = std::mem::take(&mut ps.buf_tc);
                    conn.service = Some(service);

                    // Connection filter (Figure 4's first pseudostate)
                    // over the still-live subscriptions.
                    self.apply_conn_verdict(conn, service);
                    if conn.want_parse.is_empty() {
                        // Nothing needs sessions: track, remove early, or
                        // tombstone depending on what is left.
                        return self.settle(conn, DiscardCause::ConnFilter);
                    }
                    conn.phase = Phase::Parsing { parser, service };
                    // Replay the buffered prefixes through the parser.
                    for (buf, d) in [(buf_ts, Direction::ToServer), (buf_tc, Direction::ToClient)] {
                        if buf.is_empty() {
                            continue;
                        }
                        let disp = self.parse_data(tuple, conn, &buf, d);
                        if disp != Disposition::Keep {
                            return disp;
                        }
                    }
                    Disposition::Keep
                } else {
                    // Drop eliminated candidates; fail when none remain.
                    let mut keep_iter = alive.into_iter();
                    ps.parsers.retain(|_| keep_iter.next().unwrap_or(false));
                    if ps.parsers.is_empty() {
                        return self.conn_layer_failed(conn);
                    }
                    Disposition::Keep
                }
            }
            Phase::Parsing { .. } => self.parse_data(tuple, conn, data, pdir),
            Phase::Tracking | Phase::Dropped => Disposition::Keep,
        }
    }

    fn parse_data(
        &mut self,
        _tuple: &FiveTuple,
        conn: &mut Conn,
        data: &[u8],
        pdir: Direction,
    ) -> Disposition {
        let Phase::Parsing { parser, service } = &mut conn.phase else {
            return Disposition::Keep;
        };
        let service = *service;
        let tp = self.profile.then(rdtsc);
        self.stats.app_parsing.runs += 1;
        // A panicking protocol parser must not take the worker core (and
        // its whole RX queue) down with it: convert the panic into a
        // recoverable parse error and let the filter decide the
        // connection's fate, exactly as for a malformed-input error.
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| parser.parse(data, pdir)))
                .unwrap_or_else(|_| {
                    self.stats.parser_panics += 1;
                    ParseResult::Error
                });
        if let Some(t) = tp {
            self.stats
                .app_parsing
                .record_cycles(rdtsc().wrapping_sub(t));
        }
        match result {
            ParseResult::Continue => Disposition::Keep,
            ParseResult::Done => {
                let sessions = parser.drain_sessions();
                let match_state = parser.session_match_state();
                let nomatch_state = parser.session_nomatch_state();
                if sessions.is_empty() {
                    return Disposition::Keep;
                }
                for session in &sessions {
                    let ts = self.profile.then(rdtsc);
                    self.stats.session_filter.runs += 1;
                    let hits = self
                        .filter
                        .session_filter_set(session, &conn.frontiers, conn.live);
                    if let Some(t) = ts {
                        self.stats
                            .session_filter
                            .record_cycles(rdtsc().wrapping_sub(t));
                    }
                    self.trace(
                        conn,
                        TraceKind::SessionVerdict,
                        hits.bits(),
                        conn.live.bits(),
                    );
                    // Matched session-level subscriptions receive every
                    // session the protocol produces.
                    let sess_matched = conn.matched & self.session_mask;
                    for i in sess_matched.iter() {
                        self.emit_match(conn, i, Some(service), Some(session));
                    }
                    // Still-live subscriptions whose session predicate
                    // passed: first full match.
                    for i in hits.iter() {
                        conn.live.remove(i);
                        conn.matched.insert(i);
                        self.emit_match(conn, i, Some(service), Some(session));
                    }
                }
                // Batch disposition. Subscriptions that matched stop
                // parsing when the protocol is done producing sessions;
                // session-level ones with nothing further to deliver are
                // fully served and retire from the connection.
                if match_state == SessionState::Remove {
                    let stop = conn.matched & conn.want_parse;
                    for i in stop.iter() {
                        conn.want_parse.remove(i);
                        if self.session_mask.contains(i)
                            && !self.post_mask.contains(i)
                            && !self.stream_mask.contains(i)
                        {
                            self.finish_sub(conn, i);
                        }
                    }
                }
                // Still-live subscriptions that passed nothing in a
                // nonempty batch failed the session filter.
                if nomatch_state == SessionState::Remove {
                    for i in conn.live.iter() {
                        self.kill_sub(conn, i);
                    }
                }
                self.settle(conn, DiscardCause::SessionFilter)
            }
            ParseResult::Error => self.conn_layer_failed(conn),
        }
    }
}

/// The per-core connection tracker, serving N subscriptions in one pass.
pub struct ConnTracker<F: FilterFns> {
    table: ConnTable<Conn>,
    filter: Arc<F>,
    registry: ParserRegistry,
    subs: Vec<SubSpec>,
    /// All subscription indices (guards against verdicts wider than the
    /// subscription table).
    all_mask: SubscriptionSet,
    /// Session-level subscriptions.
    session_mask: SubscriptionSet,
    /// Subscriptions whose tracked state wants in-order payload bytes.
    stream_mask: SubscriptionSet,
    /// Subscriptions wanting per-packet delivery after a match.
    post_mask: SubscriptionSet,
    /// Memoized probe-candidate unions, keyed by want-parse bitmap.
    probe_cache: HashMap<u64, Arc<Vec<String>>>,
    ooo_capacity: usize,
    profile: bool,
    /// Load-shedding flag mirrored from the governor: while set, probe
    /// and parse work is skipped (connections hold their phase) so the
    /// core's cycles go to packet delivery instead of session parsing.
    shed_parsing: bool,
    /// Per-stage statistics for this core.
    pub stats: CoreStats,
    /// Per-subscription delivery/discard tallies for this core.
    pub sub_tallies: Vec<SubTally>,
    outputs: Vec<(u32, u64, ErasedOutput)>,
    /// Tracepoint sink plus the lane (RX core) this tracker writes on.
    tracer: Option<(Arc<Tracer>, usize)>,
    /// Recently-closed connections (TIME_WAIT analogue): trailing packets
    /// of a removed connection (e.g. the final ACK after FIN/FIN, or the
    /// encrypted tail after a delivered TLS handshake) must not recreate
    /// state. Seeded in-tree hasher: probed once per packet on the miss
    /// path, and deterministic layout keeps retain order identical
    /// across runs.
    closed: HashMap<ConnKey, u64, FlowHashState>,
}

/// How long a removed connection's key stays in the closed set.
const TIME_WAIT_NS: u64 = 10_000_000_000;

impl<F: FilterFns> ConnTracker<F> {
    /// Creates a tracker for one core with the default protocol modules.
    pub fn new(
        filter: Arc<F>,
        subs: &[Arc<dyn ErasedSubscription>],
        timeouts: TimeoutConfig,
        ooo_capacity: usize,
        profile: bool,
    ) -> Self {
        Self::with_registry(
            filter,
            subs,
            timeouts,
            ooo_capacity,
            profile,
            ParserRegistry::default(),
        )
    }

    /// Creates a single-subscription tracker for subscribable type `S`
    /// (outputs are drained through [`ConnTracker::take_outputs`]).
    pub fn single<S: Subscribable>(
        filter: Arc<F>,
        timeouts: TimeoutConfig,
        ooo_capacity: usize,
        profile: bool,
    ) -> Self {
        let sub: Arc<dyn ErasedSubscription> = Arc::new(TypedSubscription::<S>::spec_only("sub0"));
        Self::new(filter, &[sub], timeouts, ooo_capacity, profile)
    }

    /// [`ConnTracker::single`] with a custom parser registry.
    pub fn single_with_registry<S: Subscribable>(
        filter: Arc<F>,
        timeouts: TimeoutConfig,
        ooo_capacity: usize,
        profile: bool,
        registry: ParserRegistry,
    ) -> Self {
        let sub: Arc<dyn ErasedSubscription> = Arc::new(TypedSubscription::<S>::spec_only("sub0"));
        Self::with_registry(filter, &[sub], timeouts, ooo_capacity, profile, registry)
    }

    /// Creates a tracker with a custom parser registry (§3.3).
    pub fn with_registry(
        filter: Arc<F>,
        subs: &[Arc<dyn ErasedSubscription>],
        timeouts: TimeoutConfig,
        ooo_capacity: usize,
        profile: bool,
        registry: ParserRegistry,
    ) -> Self {
        assert!(
            subs.len() <= SubscriptionSet::MAX,
            "at most {} subscriptions per tracker",
            SubscriptionSet::MAX
        );
        let mut session_mask = SubscriptionSet::empty();
        let mut stream_mask = SubscriptionSet::empty();
        let mut post_mask = SubscriptionSet::empty();
        let mut specs = Vec::with_capacity(subs.len());
        for (i, sub) in subs.iter().enumerate() {
            if sub.level() == Level::Session {
                session_mask.insert(i);
            }
            if sub.needs_stream() {
                stream_mask.insert(i);
            }
            if sub.needs_packets_post_match() {
                post_mask.insert(i);
            }
            let mut probe_protos = filter.conn_protocols_for(i);
            for p in sub.parsers() {
                if !probe_protos.iter().any(|x| x == p) {
                    probe_protos.push(p.to_string());
                }
            }
            specs.push(SubSpec {
                erased: Arc::clone(sub),
                probe_protos,
            });
        }
        ConnTracker {
            table: ConnTable::new(timeouts),
            filter,
            registry,
            all_mask: SubscriptionSet::first_n(specs.len()),
            session_mask,
            stream_mask,
            post_mask,
            probe_cache: HashMap::new(),
            ooo_capacity,
            profile,
            shed_parsing: false,
            stats: CoreStats::default(),
            sub_tallies: vec![SubTally::default(); specs.len()],
            outputs: Vec::new(),
            tracer: None,
            closed: HashMap::with_hasher(FlowHashState::default()),
            subs: specs,
        }
    }

    /// Attaches a tracer; `lane` is the RX lane this tracker's core
    /// writes tracepoints on.
    pub fn set_tracer(&mut self, tracer: Arc<Tracer>, lane: usize) {
        self.tracer = Some((tracer, lane));
    }

    /// Number of connections currently tracked (Figure 8's metric).
    pub fn connections(&self) -> usize {
        self.table.len()
    }

    /// Takes the subscription data produced since the last call, each
    /// tagged with its subscription index and the originating flow's
    /// trace id (0 = unsampled).
    pub fn take_outputs(&mut self) -> Vec<(u32, u64, ErasedOutput)> {
        std::mem::take(&mut self.outputs)
    }

    /// Sets the parsing-shed flag (governor overload response, tier 1).
    /// While shed, probing and parsing connections stop consuming
    /// reassembly and parser cycles — they keep counting-only sequence
    /// tracking and resume where they left off once restored.
    pub fn set_shed_parsing(&mut self, shed: bool) {
        self.shed_parsing = shed;
    }

    /// Whether session-parsing work is currently shed.
    pub fn shed_parsing(&self) -> bool {
        self.shed_parsing
    }

    /// Estimated bytes of connection state in memory (live table
    /// entries plus probe buffers), for the Figure 8 memory series.
    /// This is the *live* series; the retained arena footprint is
    /// [`ConnTracker::arena_bytes`].
    pub fn state_bytes(&self) -> usize {
        let per_conn = std::mem::size_of::<ConnEntry<Conn>>() + 64;
        let mut total = self.table.len() * per_conn;
        for (_, entry) in self.table.iter() {
            if let Phase::Probing(ps) = &entry.value.phase {
                total += ps.buf_ts.capacity() + ps.buf_tc.capacity();
            }
        }
        total
    }

    /// Bytes retained by the connection table's arena and shard
    /// indexes. Capacity never shrinks, so this is the memory
    /// high-water mark the `conn_arena_bytes` gauge reports.
    pub fn arena_bytes(&self) -> usize {
        self.table.bytes_high_water()
    }

    /// The probe-candidate union for a want-parse set: each
    /// subscription's conn-layer filter protocols plus its subscribable
    /// type's parsers, deduplicated in subscription order. Memoized —
    /// distinct want-parse sets are few (bounded by packet-filter
    /// outcomes), connections are many.
    fn probe_protos_for(&mut self, want: SubscriptionSet) -> Arc<Vec<String>> {
        if let Some(cached) = self.probe_cache.get(&want.bits()) {
            return Arc::clone(cached);
        }
        let mut protos: Vec<String> = Vec::new();
        for i in want.iter() {
            for p in &self.subs[i].probe_protos {
                if !protos.contains(p) {
                    protos.push(p.clone());
                }
            }
        }
        let protos = Arc::new(protos);
        self.probe_cache.insert(want.bits(), Arc::clone(&protos));
        protos
    }

    /// Processes one packet that the software packet filter matched for
    /// at least one subscription.
    pub fn process(&mut self, mbuf: &Mbuf, pkt: &ParsedPacket, verdict: PacketVerdict) {
        // Time the whole tracker pass here (not in the body) so early
        // exits — TIME_WAIT trailing packets, key collisions — still
        // land in the stage histogram.
        let t0 = self.profile.then(rdtsc);
        self.stats.conn_tracking.runs += 1;
        self.process_inner(mbuf, pkt, verdict);
        if let Some(t) = t0 {
            self.stats
                .conn_tracking
                .record_cycles(rdtsc().wrapping_sub(t));
        }
    }

    fn process_inner(&mut self, mbuf: &Mbuf, pkt: &ParsedPacket, verdict: PacketVerdict) {
        let now = mbuf.timestamp_ns;
        let key = ConnKey::from_packet(pkt);
        // The table is keyed by the NIC's symmetric RSS hash (both
        // directions stamp the same value), so the lookup re-hashes a
        // u32 instead of SipHashing the 5-tuple; `key` disambiguates
        // hash collisions inside the table.
        let hash = mbuf.rss_hash;

        if self.table.get_mut(hash, &key).is_none() {
            match self.closed.get(&key) {
                Some(&closed_at) if now < closed_at.saturating_add(TIME_WAIT_NS) => {
                    return; // trailing packet of a closed connection
                }
                Some(_) => {
                    self.closed.remove(&key);
                }
                None => {}
            }
            self.stats.conns_created += 1;
            let tuple = FiveTuple::from_packet(pkt);
            let matched = verdict.matched & self.all_mask;
            let mut live = verdict.live & self.all_mask;
            // Parsing is needed by undecided subscriptions and by
            // matched session-level ones (they consume every session).
            let mut want_parse = live | (matched & self.session_mask);
            let engaged = matched | live;
            let mut tracked: Vec<Option<Box<dyn ErasedTracked>>> = Vec::new();
            for i in 0..self.subs.len() {
                tracked.push(
                    engaged
                        .contains(i)
                        .then(|| self.subs[i].erased.new_tracked(&tuple, now)),
                );
            }
            let phase;
            if want_parse.is_empty() {
                phase = if matched.is_empty() {
                    Phase::Dropped
                } else {
                    Phase::Tracking
                };
            } else {
                let protos = self.probe_protos_for(want_parse);
                if protos.is_empty() {
                    // Degraded path: no parser can ever resolve the
                    // still-live filters, so those subscriptions are
                    // born dead; matched ones carry the connection.
                    for i in live.iter() {
                        if tracked[i].take().is_some() {
                            self.sub_tallies[i].discarded += 1;
                        }
                    }
                    live = SubscriptionSet::empty();
                    want_parse = SubscriptionSet::empty();
                    phase = if matched.is_empty() {
                        Phase::Dropped
                    } else {
                        Phase::Tracking
                    };
                } else {
                    phase = Phase::Probing(ProbeState {
                        parsers: self.registry.new_parsers(&protos),
                        buf_ts: Vec::new(),
                        buf_tc: Vec::new(),
                    });
                }
            }
            if matches!(phase, Phase::Dropped) {
                // The filter can never match this connection for anyone:
                // born a tombstone. Attribute it now — finalize() skips
                // dropped connections.
                self.stats.conns_discarded += 1;
                self.stats.discard_conn_filter += 1;
            }
            // The flow trace id is fixed at insert: derived from the
            // symmetric RSS hash on the mbuf, so both directions (and
            // every execution mode) derive the same id.
            let trace_id = self
                .tracer
                .as_ref()
                .map_or(0, |(t, _)| t.sample_flow(mbuf.rss_hash));
            if let Some((t, lane)) = &self.tracer {
                // Lifecycle events are recorded for every flow (the
                // flight recorder wants them), not just sampled ones.
                t.emit(*lane, trace_id, TraceKind::ConnInsert, 0, 0, 0);
            }
            let mut conn = Conn {
                flow: TcpFlow::new(now, self.ooo_capacity),
                tracked,
                phase,
                frontiers: verdict.frontiers,
                matched,
                live,
                want_parse,
                done_any: false,
                service: None,
                trace_id,
            };
            // Filter fully decided at the packet layer for these
            // subscriptions: emit whatever they have ready (Figure 4a's
            // "run callback"). Session-level ones wait for sessions.
            for i in (matched - self.session_mask).iter() {
                let mut tmp = Vec::new();
                if let Some(t) = conn.tracked[i].as_mut() {
                    t.on_match(None, None, &conn.flow, &mut tmp);
                }
                for o in tmp {
                    self.outputs.push((i as u32, trace_id, o));
                    self.sub_tallies[i].delivered += 1;
                }
            }
            self.table
                .get_or_insert_with(hash, key, now, || (tuple, conn));
            self.stats.conns_peak = self.stats.conns_peak.max(self.table.len() as u64);
        }

        let entry = self.table.get_mut(hash, &key).expect("just inserted");
        let Some(dir) = entry.tuple.dir_of(pkt) else {
            return; // key collision across address families: ignore
        };
        entry.last_seen_ns = now;
        let conn = &mut entry.value;
        if conn.trace_id != 0 {
            if let Some((t, lane)) = &self.tracer {
                let d = match dir {
                    Dir::OrigToResp => 0,
                    Dir::RespToOrig => 1,
                };
                t.emit(*lane, conn.trace_id, TraceKind::ConnUpdate, 0, d, 0);
            }
        }
        let mut ctx = Ctx {
            filter: &self.filter,
            stats: &mut self.stats,
            tallies: &mut self.sub_tallies,
            outputs: &mut self.outputs,
            session_mask: self.session_mask,
            stream_mask: self.stream_mask,
            post_mask: self.post_mask,
            profile: self.profile,
            shed_parsing: self.shed_parsing,
            tracer: self.tracer.as_ref(),
        };
        // Decide whether reconstructed bytes are still needed *before*
        // updating the flow: Track/Dropped connections get counting-only
        // sequence tracking, never buffering (§5.2), unless an active
        // subscription wants the stream. Under governor shedding,
        // probe/parse work is skipped too — those connections degrade to
        // counting-only until fidelity is restored.
        let app_needed =
            matches!(conn.phase, Phase::Probing(_) | Phase::Parsing { .. }) && !ctx.shed_parsing;
        let stream_needed = app_needed || !(conn.active() & ctx.stream_mask).is_empty();
        let update = conn.flow.update(pkt, mbuf, dir, now, stream_needed);
        entry.established = conn.flow.established;

        // Subscription packet hooks: matched subscriptions that want
        // post-match packets get them; undecided ones buffer lazily.
        for i in conn.active().iter() {
            if conn.matched.contains(i) {
                if ctx.post_mask.contains(i) {
                    let mut tmp = Vec::new();
                    if let Some(t) = conn.tracked[i].as_mut() {
                        t.post_match(mbuf, pkt, &mut tmp);
                    }
                    for o in tmp {
                        ctx.outputs.push((i as u32, conn.trace_id, o));
                        ctx.tallies[i].delivered += 1;
                    }
                }
            } else if let Some(t) = conn.tracked[i].as_mut() {
                t.pre_match(mbuf, pkt);
            }
        }

        // Stream processing: only while the app layer still needs bytes.
        let mut disposition = Disposition::Keep;
        if stream_needed {
            match update.reassembly {
                Reassembled::InOrder => {
                    let tr = ctx.profile.then(rdtsc);
                    ctx.stats.reassembly.runs += 1;
                    let payload = pkt.payload(mbuf.data());
                    if !payload.is_empty() {
                        disposition = ctx.stream_data(&entry.tuple, conn, dir, payload);
                    }
                    // Flush any buffered successors the hole-fill released.
                    loop {
                        if disposition != Disposition::Keep {
                            break;
                        }
                        let flushed = conn.flow.reassembler(dir).flush();
                        if flushed.is_empty() {
                            break;
                        }
                        for fmbuf in flushed {
                            if disposition != Disposition::Keep {
                                break;
                            }
                            let Ok(fpkt) = ParsedPacket::parse(fmbuf.data()) else {
                                continue;
                            };
                            let fpayload = fpkt.payload(fmbuf.data());
                            if fpayload.is_empty() {
                                continue;
                            }
                            ctx.stats.reassembly.runs += 1;
                            disposition = ctx.stream_data(&entry.tuple, conn, dir, fpayload);
                        }
                    }
                    if let Some(t) = tr {
                        ctx.stats.reassembly.record_cycles(rdtsc().wrapping_sub(t));
                    }
                }
                Reassembled::Buffered => {
                    ctx.stats.reassembly.runs += 1;
                    ctx.stats.ooo_buffered += 1;
                }
                Reassembled::Duplicate | Reassembled::OverCapacity => {}
            }
        } else if update.reassembly == Reassembled::Buffered {
            // Counting-only mode still surfaces out-of-order arrivals.
            ctx.stats.ooo_buffered += 1;
        }

        let terminated = update.terminated;
        if disposition == Disposition::RemoveDone {
            // Every subscription is finished with this connection (e.g.
            // TLS handshake delivered): remove mid-stream (§5.2).
            // Counted within conns_discarded (early removal) but
            // attributed separately — this is a win, not a rejection.
            if let Some(removed) = self.table.remove(hash, &key) {
                if let Some((t, lane)) = &self.tracer {
                    t.emit(
                        *lane,
                        removed.value.trace_id,
                        TraceKind::ConnExpire,
                        0,
                        TraceConnEnd::CompletedEarly as u64,
                        0,
                    );
                }
            }
            self.closed.insert(key, now);
            self.stats.conns_discarded += 1;
            self.stats.conns_completed_early += 1;
        } else if terminated {
            if let Some(entry) = self.table.remove(hash, &key) {
                self.closed.insert(key, now);
                self.finalize(entry, FinalizeReason::Terminated);
            }
        }
    }

    /// Finalizes a connection that terminated, expired, or was drained.
    ///
    /// Discarded tombstones (`Phase::Dropped`) were already attributed
    /// at discard time; counting them again here would double-book the
    /// connection and break the exclusive-outcome invariant.
    fn finalize(&mut self, entry: ConnEntry<Conn>, reason: FinalizeReason) {
        let mut conn = entry.value;
        let was_discarded = matches!(conn.phase, Phase::Dropped);
        // Drain partial sessions (e.g. an unanswered DNS query).
        let drained = if let Phase::Parsing { parser, service } = &mut conn.phase {
            Some((*service, parser.drain_sessions()))
        } else {
            None
        };
        if let Some((service, sessions)) = drained {
            for session in &sessions {
                self.stats.session_filter.runs += 1;
                let hits = self
                    .filter
                    .session_filter_set(session, &conn.frontiers, conn.live);
                if conn.trace_id != 0 {
                    if let Some((t, lane)) = &self.tracer {
                        t.emit(
                            *lane,
                            conn.trace_id,
                            TraceKind::SessionVerdict,
                            0,
                            hits.bits(),
                            conn.live.bits(),
                        );
                    }
                }
                let sess_matched = conn.matched & self.session_mask;
                for i in sess_matched.iter() {
                    self.deliver_match(&mut conn, i, service, session);
                }
                for i in hits.iter() {
                    conn.live.remove(i);
                    conn.matched.insert(i);
                    self.deliver_match(&mut conn, i, service, session);
                }
            }
        }
        for i in conn.matched.iter() {
            let mut tmp = Vec::new();
            if let Some(t) = conn.tracked[i].as_mut() {
                t.on_terminate(&conn.flow, &mut tmp);
            }
            for o in tmp {
                self.outputs.push((i as u32, conn.trace_id, o));
                self.sub_tallies[i].delivered += 1;
            }
        }
        if !was_discarded {
            match reason {
                FinalizeReason::Terminated => self.stats.conns_terminated += 1,
                FinalizeReason::Expired => self.stats.conns_expired += 1,
                FinalizeReason::Drained => self.stats.conns_drained += 1,
            }
        }
        if let Some((t, lane)) = &self.tracer {
            let end = match reason {
                FinalizeReason::Terminated => TraceConnEnd::Terminated,
                FinalizeReason::Expired => TraceConnEnd::Expired,
                FinalizeReason::Drained => TraceConnEnd::Drained,
            };
            t.emit(
                *lane,
                conn.trace_id,
                TraceKind::ConnExpire,
                0,
                end as u64,
                0,
            );
        }
    }

    fn deliver_match(
        &mut self,
        conn: &mut Conn,
        i: usize,
        service: &'static str,
        session: &retina_protocols::Session,
    ) {
        let mut tmp = Vec::new();
        if let Some(t) = conn.tracked[i].as_mut() {
            t.on_match(Some(service), Some(session), &conn.flow, &mut tmp);
        }
        for o in tmp {
            self.outputs.push((i as u32, conn.trace_id, o));
            self.sub_tallies[i].delivered += 1;
        }
    }

    /// Advances simulated time: expires idle connections (§5.2).
    pub fn advance(&mut self, now_ns: u64) {
        let mut expired = Vec::new();
        self.table.advance(now_ns, |_k, entry| expired.push(entry));
        for entry in expired {
            self.finalize(entry, FinalizeReason::Expired);
        }
        self.closed
            .retain(|_, &mut t| now_ns < t.saturating_add(TIME_WAIT_NS));
    }

    /// Flushes every remaining connection (end of a run): delivers
    /// connection-level data for matched connections.
    pub fn drain(&mut self) {
        for (_key, entry) in self.table.drain_all() {
            self.finalize(entry, FinalizeReason::Drained);
        }
    }

    /// Rebinds the tracker to a new configuration epoch at a live-swap
    /// safe point, preserving surviving subscriptions' per-connection
    /// state.
    ///
    /// `remap` maps each current subscription index to its index in
    /// `subs` (`None` = removed). For every tracked connection:
    ///
    /// * removed subscriptions are drained — matched ones deliver their
    ///   `on_terminate` data (queued in the output buffer, indexed by
    ///   the **old** subscription index so the caller routes it through
    ///   the old sinks), undecided ones are charged a discard;
    /// * surviving state is re-indexed to the new subscription order;
    /// * still-undecided survivors get their packet-filter frontiers
    ///   recomputed under the new trie by replaying a synthetic first
    ///   packet of the connection's five-tuple (survivors the new
    ///   filter cannot match are dropped, ones it decides terminally
    ///   are promoted and delivered);
    /// * connections left with no active subscription are removed and
    ///   counted `conns_swapped` (a distinct outcome in the connection
    ///   identity); the rest keep their phase, with probe/parse demoted
    ///   to plain tracking when nobody needs sessions anymore.
    ///
    /// Returns the removed subscriptions' `(name, tally)` pairs —
    /// including the drains just charged — for the caller to bank.
    pub(crate) fn rebind(
        &mut self,
        filter: Arc<F>,
        subs: &[Arc<dyn ErasedSubscription>],
        remap: &[Option<usize>],
    ) -> Vec<(String, SubTally)> {
        assert_eq!(remap.len(), self.subs.len(), "remap covers the old table");
        let new_len = subs.len();
        let new_all = SubscriptionSet::first_n(new_len);
        let mut session_mask = SubscriptionSet::empty();
        let mut stream_mask = SubscriptionSet::empty();
        let mut post_mask = SubscriptionSet::empty();
        let mut specs = Vec::with_capacity(new_len);
        for (j, sub) in subs.iter().enumerate() {
            if sub.level() == Level::Session {
                session_mask.insert(j);
            }
            if sub.needs_stream() {
                stream_mask.insert(j);
            }
            if sub.needs_packets_post_match() {
                post_mask.insert(j);
            }
            let mut probe_protos = filter.conn_protocols_for(j);
            for p in sub.parsers() {
                if !probe_protos.iter().any(|x| x == p) {
                    probe_protos.push(p.to_string());
                }
            }
            specs.push(SubSpec {
                erased: Arc::clone(sub),
                probe_protos,
            });
        }

        // Survivors carry their tallies to their new index; removed
        // subscriptions keep accumulating on the old vector until it is
        // banked below.
        let mut new_tallies = vec![SubTally::default(); new_len];
        for (i, m) in remap.iter().enumerate() {
            if let Some(j) = *m {
                new_tallies[j] = self.sub_tallies[i];
            }
        }

        let mut swapped = 0u64;
        {
            let table = &mut self.table;
            let outputs = &mut self.outputs;
            let old_tallies = &mut self.sub_tallies;
            let closed = &mut self.closed;
            let old_len = remap.len();
            table.retain_mut(
                |_key, entry| {
                    let conn = &mut entry.value;
                    if matches!(conn.phase, Phase::Dropped) {
                        // Tombstones keep suppressing trailing packets;
                        // just resize their (empty) per-sub state.
                        conn.matched = SubscriptionSet::empty();
                        conn.live = SubscriptionSet::empty();
                        conn.want_parse = SubscriptionSet::empty();
                        conn.tracked = (0..new_len).map(|_| None).collect();
                        return true;
                    }
                    // Removed subscriptions drain: matched ones deliver
                    // their connection-level data (old index — routed
                    // through the old sinks), live ones are discarded.
                    for i in 0..old_len {
                        if remap[i].is_some() {
                            continue;
                        }
                        if conn.matched.contains(i) {
                            let mut tmp = Vec::new();
                            if let Some(t) = conn.tracked[i].as_mut() {
                                t.on_terminate(&conn.flow, &mut tmp);
                            }
                            for o in tmp {
                                outputs.push((i as u32, conn.trace_id, o));
                                old_tallies[i].delivered += 1;
                            }
                            conn.tracked[i] = None;
                        } else if conn.live.contains(i) && conn.tracked[i].take().is_some() {
                            old_tallies[i].discarded += 1;
                        }
                    }
                    // Re-index surviving per-subscription state.
                    let mut new_tracked: Vec<Option<Box<dyn ErasedTracked>>> =
                        (0..new_len).map(|_| None).collect();
                    let mut new_matched = SubscriptionSet::empty();
                    let mut new_live = SubscriptionSet::empty();
                    for (i, m) in remap.iter().enumerate() {
                        let Some(j) = *m else { continue };
                        if conn.matched.contains(i) {
                            new_matched.insert(j);
                        }
                        if conn.live.contains(i) {
                            new_live.insert(j);
                        }
                        new_tracked[j] = conn.tracked[i].take();
                    }
                    conn.tracked = new_tracked;
                    conn.matched = new_matched;
                    conn.live = new_live;
                    // Still-undecided survivors hold frontiers minted by
                    // the old trie; replay a synthetic first packet of
                    // this five-tuple through the new one to re-derive
                    // them (and the packet-layer verdict).
                    if !conn.live.is_empty() {
                        match synth_first_packet(&entry.tuple) {
                            Some(frame) => match ParsedPacket::parse(&frame) {
                                Ok(pkt) => {
                                    let verdict = filter.packet_filter_set(&pkt);
                                    conn.frontiers = verdict.frontiers;
                                    let vm = verdict.matched & new_all;
                                    let vl = verdict.live & new_all;
                                    let still_live = conn.live & vl;
                                    let promoted = (conn.live - vl) & vm;
                                    let dead = conn.live - vl - vm;
                                    for j in dead.iter() {
                                        if conn.tracked[j].take().is_some() {
                                            new_tallies[j].discarded += 1;
                                        }
                                    }
                                    for j in promoted.iter() {
                                        conn.matched.insert(j);
                                        if !session_mask.contains(j) {
                                            let mut tmp = Vec::new();
                                            if let Some(t) = conn.tracked[j].as_mut() {
                                                t.on_match(None, None, &conn.flow, &mut tmp);
                                            }
                                            for o in tmp {
                                                outputs.push((j as u32, conn.trace_id, o));
                                                new_tallies[j].delivered += 1;
                                            }
                                        }
                                    }
                                    conn.live = still_live;
                                }
                                Err(_) => {
                                    for j in conn.live.iter() {
                                        if conn.tracked[j].take().is_some() {
                                            new_tallies[j].discarded += 1;
                                        }
                                    }
                                    conn.live = SubscriptionSet::empty();
                                }
                            },
                            None => {
                                // Non-TCP/UDP flow: no synthetic replay;
                                // conservatively drop undecided survivors
                                // (their frontiers cannot be re-derived).
                                for j in conn.live.iter() {
                                    if conn.tracked[j].take().is_some() {
                                        new_tallies[j].discarded += 1;
                                    }
                                }
                                conn.live = SubscriptionSet::empty();
                            }
                        }
                    }
                    conn.want_parse = conn.live | (conn.matched & session_mask);
                    if conn.want_parse.is_empty()
                        && matches!(conn.phase, Phase::Probing(_) | Phase::Parsing { .. })
                    {
                        // Nobody needs sessions anymore. (A kept probe
                        // state would only hold a superset of parser
                        // candidates — harmless, but pointless work.)
                        conn.phase = Phase::Tracking;
                    }
                    !conn.active().is_empty()
                },
                |key, entry| {
                    // No surviving subscription watches this connection:
                    // a swap-time eviction, attributed `conns_swapped`.
                    swapped += 1;
                    closed.insert(key, entry.last_seen_ns);
                },
            );
        }
        self.stats.conns_swapped += swapped;

        let mut banked = Vec::with_capacity(remap.len() - new_len.min(remap.len()));
        for (i, m) in remap.iter().enumerate() {
            if m.is_none() {
                banked.push((self.subs[i].erased.name().to_string(), self.sub_tallies[i]));
            }
        }
        self.subs = specs;
        self.all_mask = new_all;
        self.session_mask = session_mask;
        self.stream_mask = stream_mask;
        self.post_mask = post_mask;
        self.filter = filter;
        self.sub_tallies = new_tallies;
        // Memoized probe unions are keyed by want-parse bitmaps of the
        // old subscription order: all stale now.
        self.probe_cache.clear();
        banked
    }
}

/// Builds a synthetic first packet (SYN / empty datagram) for a tracked
/// five-tuple, used to replay the packet filter when a swap installs a
/// new trie. Only the connection-invariant header fields matter: the
/// packet filter reads addresses, ports, and protocol, never payload or
/// flags-dependent state.
fn synth_first_packet(tuple: &FiveTuple) -> Option<Vec<u8>> {
    match tuple.proto {
        6 => Some(retina_wire::build::build_tcp(
            &retina_wire::build::TcpSpec {
                src: tuple.orig,
                dst: tuple.resp,
                seq: 1,
                ack: 0,
                flags: retina_wire::TcpFlags::SYN,
                window: 65535,
                ttl: 64,
                payload: &[],
            },
        )),
        17 => Some(retina_wire::build::build_udp(
            &retina_wire::build::UdpSpec {
                src: tuple.orig,
                dst: tuple.resp,
                ttl: 64,
                payload: &[],
            },
        )),
        _ => None,
    }
}
