//! Parser-level fault injection.
//!
//! [`ChaosParser`] is a [`ConnParser`] that panics on payloads whose
//! content hash satisfies the armed condition — a stand-in for a buggy
//! protocol module. The runtime must convert those panics into
//! recoverable parse errors (`CoreStats::parser_panics`) instead of
//! taking the worker core down.
//!
//! Panic decisions are **content-based** (a hash of the bytes being
//! probed or parsed), never call-count-based, so they are independent
//! of scheduling and burst boundaries and replay exactly.
//!
//! Parser registries hold plain `fn()` factories, so the panic
//! condition is armed through a process-global: [`arm_parser_panics`] /
//! [`disarm_parser_panics`]. Tests that arm it should disarm on exit.

use std::sync::atomic::{AtomicU64, Ordering};

use retina_protocols::parser::{ConnParser, Direction, ParseResult, ProbeResult};
use retina_protocols::Session;

/// 0 = disarmed; otherwise panic on `content_hash % modulus == 0`.
static PANIC_MODULUS: AtomicU64 = AtomicU64::new(0);

/// Arms injected parser panics: any [`ChaosParser`] panics on data
/// whose content hash is `0 (mod modulus)`. `modulus` is clamped to at
/// least 2 (1 would panic on everything, including the probes that
/// reject the stream).
pub fn arm_parser_panics(modulus: u64) {
    PANIC_MODULUS.store(modulus.max(2), Ordering::SeqCst);
}

/// Disarms injected parser panics.
pub fn disarm_parser_panics() {
    PANIC_MODULUS.store(0, Ordering::SeqCst);
}

/// Currently armed modulus, if any.
pub fn armed_modulus() -> Option<u64> {
    match PANIC_MODULUS.load(Ordering::SeqCst) {
        0 => None,
        m => Some(m),
    }
}

/// FNV-1a over the payload: cheap, stable, and endian-free, so the
/// panic decision depends only on bytes on the wire.
pub fn content_hash(data: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A deliberately unreliable protocol parser. Registry factory:
/// [`chaos_parser_factory`].
///
/// Behavior per payload hash `r = content_hash(data) % modulus`:
/// * `r == 0` — panic (the injected fault),
/// * `r == 1` on probe — claim the stream (`Certain`), so some
///   connections reach the parse path,
/// * otherwise — `NotForUs` / `Error` (a well-behaved rejection).
///
/// Disarmed, it never claims or panics.
#[derive(Debug, Default)]
pub struct ChaosParser;

impl ConnParser for ChaosParser {
    fn name(&self) -> &'static str {
        "chaos"
    }

    fn probe(&self, data: &[u8], _dir: Direction) -> ProbeResult {
        let Some(modulus) = armed_modulus() else {
            return ProbeResult::NotForUs;
        };
        match content_hash(data) % modulus {
            0 => panic!("injected chaos parser panic (probe)"),
            1 => ProbeResult::Certain,
            _ => ProbeResult::NotForUs,
        }
    }

    fn parse(&mut self, data: &[u8], _dir: Direction) -> ParseResult {
        let Some(modulus) = armed_modulus() else {
            return ParseResult::Error;
        };
        if content_hash(data).is_multiple_of(modulus) {
            panic!("injected chaos parser panic (parse)");
        }
        ParseResult::Error
    }

    fn drain_sessions(&mut self) -> Vec<Session> {
        Vec::new()
    }
}

/// Registry factory for [`ChaosParser`] (a plain `fn`, as
/// `ParserRegistry::register` requires).
pub fn chaos_parser_factory() -> Box<dyn ConnParser> {
    Box::new(ChaosParser)
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test drives both the disarmed and armed states: the arming
    // switch is process-global, so separate #[test] functions would
    // race each other under the parallel test harness.
    #[test]
    fn arming_switch_controls_panics() {
        disarm_parser_panics();
        let mut p = ChaosParser;
        assert_eq!(
            p.probe(b"anything", Direction::ToServer),
            ProbeResult::NotForUs
        );
        assert_eq!(
            p.parse(b"anything", Direction::ToServer),
            ParseResult::Error
        );
        assert!(p.drain_sessions().is_empty());

        arm_parser_panics(4);
        // Find one payload per residue class.
        let mut by_class: [Option<u8>; 4] = [None; 4];
        for b in 0u8..=255 {
            by_class[(content_hash(&[b]) % 4) as usize].get_or_insert(b);
        }
        let panicking = by_class[0].expect("some byte hashes to class 0");
        let claiming = by_class[1].expect("some byte hashes to class 1");
        let p = ChaosParser;
        let caught = std::panic::catch_unwind(|| p.probe(&[panicking], Direction::ToServer));
        assert!(caught.is_err(), "class-0 content must panic");
        assert_eq!(
            p.probe(&[claiming], Direction::ToServer),
            ProbeResult::Certain
        );
        // Same content, same decision — every time.
        assert_eq!(
            p.probe(&[claiming], Direction::ToClient),
            ProbeResult::Certain
        );
        disarm_parser_panics();
    }

    #[test]
    fn hash_is_stable() {
        assert_eq!(content_hash(b"retina"), content_hash(b"retina"));
        assert_ne!(content_hash(b"retina"), content_hash(b"retinb"));
        assert_eq!(content_hash(b""), 0xCBF2_9CE4_8422_2325);
    }
}
